"""Ablation C — how many DME candidates per cluster are worth generating.

DESIGN.md calls out the candidate count K as a key design choice: more
candidates give the MWCP selection a wider view (more matched clusters
possible) at higher generation/selection cost.  Sweeps K on S3 and S4.
"""

import pytest

from repro.core import PacorConfig, run_pacor
from repro.designs import design_by_name


@pytest.mark.parametrize("k", [1, 2, 4, 8])
@pytest.mark.parametrize("name", ["S3", "S4"])
def test_candidate_count_sweep(benchmark, name, k):
    design = design_by_name(name)
    result = benchmark.pedantic(
        lambda: run_pacor(design, PacorConfig(k_candidates=k)),
        rounds=1,
        iterations=1,
    )
    assert result.completion_rate == 1.0
    benchmark.extra_info["k"] = k
    benchmark.extra_info["matched"] = result.matched_clusters
    benchmark.extra_info["total_length"] = result.total_length


def test_more_candidates_never_hurt_matching():
    """K=8 should match at least as many clusters as K=1 on S3/S4."""
    for name in ("S3", "S4"):
        design = design_by_name(name)
        low = run_pacor(design, PacorConfig(k_candidates=1))
        high = run_pacor(design, PacorConfig(k_candidates=8))
        assert high.matched_clusters >= low.matched_clusters - 1, name
