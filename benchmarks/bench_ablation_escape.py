"""Ablation D — global min-cost-flow escape vs sequential A* escape.

Section 5's claim: the flow formulation "effectively improves routability
with minimized channel length".  This ablation builds escape instances of
growing contention and measures routed count and total channel length for
both engines.  Expected shape: the flow engine never routes fewer sources
and never pays more total length at equal completion.
"""

import random

import pytest

from repro.escape import EscapeSource, solve_escape, solve_escape_sequential
from repro.geometry import Point
from repro.grid import RoutingGrid


def _instance(n_sources, seed=11, size=40):
    rng = random.Random(seed)
    grid = RoutingGrid(size, size)
    taps = []
    while len(taps) < n_sources:
        p = Point(rng.randrange(8, size - 8), rng.randrange(8, size - 8))
        if p not in taps:
            taps.append(p)
    sources = [EscapeSource(i, (t,)) for i, t in enumerate(taps)]
    pins = [Point(x, 0) for x in range(2, size - 2, 4)]
    return grid, sources, pins


@pytest.mark.parametrize("n_sources", [4, 8, 16])
def test_escape_flow_engine(benchmark, n_sources):
    grid, sources, pins = _instance(n_sources)
    result = benchmark(lambda: solve_escape(grid, sources, pins))
    benchmark.extra_info["routed"] = result.flow_value
    benchmark.extra_info["total_length"] = result.total_cost


@pytest.mark.parametrize("n_sources", [4, 8, 16])
def test_escape_sequential_engine(benchmark, n_sources):
    grid, sources, pins = _instance(n_sources)
    result = benchmark(lambda: solve_escape_sequential(grid, sources, pins))
    benchmark.extra_info["routed"] = result.flow_value
    benchmark.extra_info["total_length"] = result.total_cost


@pytest.mark.parametrize("n_sources", [4, 8, 16])
def test_flow_dominates_sequential(n_sources):
    grid, sources, pins = _instance(n_sources)
    flow = solve_escape(grid, sources, pins)
    sequential = solve_escape_sequential(grid, sources, pins)
    assert flow.flow_value >= sequential.flow_value
    if flow.flow_value == sequential.flow_value:
        assert flow.total_cost <= sequential.total_cost + 1e-9
