"""Table 2 — the paper's main result: three methods on seven designs.

For every design, runs "w/o Sel", "Detour First" and full PACOR and
reports #Matched Clusters, total matched channel length, total channel
length and runtime — the exact columns of Table 2.  Each run is also
verified end to end (non-crossing, connectivity, compatibility, network
-distance length matching).

Shape expectations from the paper (absolute numbers differ — our layouts
are synthetic, see EXPERIMENTS.md):

* 100 % routing completion for every method on every design;
* PACOR matches at least as many clusters as "w/o Sel";
* Chip2 is easy (only 2-valve clusters): all methods identical.
"""

import pytest

from repro.analysis import verify_result
from repro.core import METHODS, run_method
from repro.designs import design_by_name

_SMALL = ["S1", "S2", "S3", "S4", "S5"]
_CHIPS = ["Chip2", "Chip1"]
_METHOD_IDS = {"w/o Sel": "woSel", "Detour First": "detourFirst", "PACOR": "pacor"}


def _run_and_verify(design, method):
    result = run_method(design, method)
    verify_result(design, result)
    return result


def _record(benchmark, result):
    row = result.summary_row()
    row["completion"] = f"{row['completion']:.3f}"
    row["runtime_s"] = f"{row['runtime_s']:.3f}"
    benchmark.extra_info.update(row)


@pytest.mark.parametrize("name", _SMALL)
@pytest.mark.parametrize("method", list(METHODS), ids=list(_METHOD_IDS.values()))
def test_table2_synthetic(benchmark, effort, name, method):
    design = design_by_name(name)
    result = benchmark.pedantic(
        _run_and_verify, args=(design, method), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.completion_rate == 1.0
    assert result.matched_clusters >= 0


@pytest.mark.chips
@pytest.mark.parametrize("name", _CHIPS)
@pytest.mark.parametrize("method", list(METHODS), ids=list(_METHOD_IDS.values()))
def test_table2_chips(benchmark, effort, name, method):
    design = design_by_name(name)
    result = benchmark.pedantic(
        _run_and_verify, args=(design, method), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.completion_rate >= 0.99


def test_table2_shape_small_designs():
    """The paper's qualitative claims, checked per design (S1-S5)."""
    for name in _SMALL:
        design = design_by_name(name)
        results = {m: run_method(design, m) for m in METHODS}
        # 100% completion everywhere (the paper's headline claim).
        for result in results.values():
            assert result.completion_rate == 1.0, (name, result.method)
        # PACOR matches at least as many clusters as w/o Sel.
        assert (
            results["PACOR"].matched_clusters
            >= results["w/o Sel"].matched_clusters
        ), name


def test_table2_chip2_all_methods_identical():
    """Section 7: Chip2's 2-valve clusters make all methods agree."""
    design = design_by_name("Chip2")
    counts = {m: run_method(design, m).matched_clusters for m in METHODS}
    assert len(set(counts.values())) == 1
    assert counts["PACOR"] == 22
