"""Contention study — matched clusters vs valve-packing density.

The paper's real chips are hard because their valves crowd the
functional core.  This benchmark charts, over the stress family's
contention axis, how many clusters stay length-matched and how much
wirelength the matching costs — the calibration study behind the
synthetic suite (see EXPERIMENTS.md, "Reading guidance").
"""

import pytest

from repro.analysis import quality_ratio, verify_result
from repro.core import run_pacor
from repro.designs.stress import CONTENTION_LEVELS, stress_design


@pytest.mark.parametrize("level", list(CONTENTION_LEVELS))
def test_contention_sweep(benchmark, level):
    design = stress_design(level, scale=2)
    result = benchmark.pedantic(lambda: run_pacor(design), rounds=1, iterations=1)
    verify_result(design, result)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["core_fraction"] = CONTENTION_LEVELS[level]
    benchmark.extra_info["matched"] = result.matched_clusters
    benchmark.extra_info["n_clusters"] = result.n_lm_clusters
    benchmark.extra_info["completion"] = f"{result.completion_rate:.3f}"
    benchmark.extra_info["quality_ratio"] = f"{quality_ratio(design, result):.2f}"


def test_open_placement_matches_nearly_everything():
    design = stress_design("open", scale=2)
    result = run_pacor(design)
    assert result.completion_rate == 1.0
    assert result.matched_clusters >= result.n_lm_clusters - 1


def test_extreme_contention_costs_matches_not_completion():
    """Per-instance matching is noisy, but the extremes separate: heavy
    packing loses matches while routing completion holds."""
    mild = run_pacor(stress_design("mild", scale=2))
    extreme = run_pacor(stress_design("extreme", scale=2))
    assert mild.completion_rate == 1.0
    assert extreme.completion_rate == 1.0
    assert extreme.matched_clusters < mild.matched_clusters
