"""Repair study — incremental healing vs. re-routing from scratch.

When a fabricated chip develops a defect after routing, the repair
engine (:mod:`repro.robustness.repair`) rips up only the nets whose
channels intersect the fault and re-routes them through the escalation
ladder.  The alternative is to throw the routing away and run the whole
flow again with the faults mounted up front.  This benchmark pits the
two against each other on the same fault scenarios and records the
search-effort ratio: incremental repair must be strictly cheaper in A*
expansions than a full re-route, and the healed design must still
verify.
"""

import pytest

from repro.analysis import verify_result
from repro.core import run_pacor
from repro.designs import design_by_name, generate_fault_scenario
from repro.observability import Metrics, use
from repro.robustness.faultmap import FaultMap
from repro.robustness.repair import repair_result


def _routed_doc(design):
    result = run_pacor(design)
    assert result.completion_rate == 1.0
    cells = sorted({c for n in result.nets if n.routed for c in n.cells})
    return result.to_json(), cells


def _expansions(registry):
    return registry.counter_values().get("astar.expansions", 0)


@pytest.mark.parametrize("name", ["S2", "S3"])
def test_incremental_repair_beats_full_reroute(benchmark, name):
    design = design_by_name(name)
    doc, routed_cells = _routed_doc(design)
    # Seed 601 yields a scenario every ladder fully heals on both designs;
    # unhealable scenarios (no corridor without ripping healthy nets) are
    # covered by the chaos suite, not this cost comparison.
    scenario = generate_fault_scenario(
        design, n_cell_faults=2, seed=601, target_cells=routed_cells
    ).to_json()

    def heal():
        registry = Metrics()
        with use(metrics=registry):
            outcome = repair_result(design, doc, FaultMap.from_json(scenario))
        return outcome, _expansions(registry)

    outcome, repair_exp = benchmark.pedantic(heal, rounds=3, iterations=1)
    verify_result(design, outcome.result)
    assert outcome.affected, "scenario must actually hit routed nets"
    assert not outcome.degraded_nets

    # The baseline: full flow with the same faults mounted up front.
    registry = Metrics()
    with use(metrics=registry):
        full = run_pacor(design, fault_map=FaultMap.from_json(scenario))
    verify_result(design, full)
    full_exp = _expansions(registry)

    benchmark.extra_info["affected_nets"] = len(outcome.affected)
    benchmark.extra_info["repair_expansions"] = repair_exp
    benchmark.extra_info["full_reroute_expansions"] = full_exp
    benchmark.extra_info["expansion_ratio"] = (
        repair_exp / full_exp if full_exp else None
    )
    assert repair_exp < full_exp, (
        f"incremental repair ({repair_exp} expansions) must beat a full "
        f"re-route ({full_exp} expansions)"
    )


def test_repair_cost_tracks_damage_size(benchmark):
    """Repair effort grows with the number of hit nets, not design size."""
    design = design_by_name("S3")
    doc, routed_cells = _routed_doc(design)
    scenarios = [
        generate_fault_scenario(
            design, n_cell_faults=n, seed=601 + n, target_cells=routed_cells
        ).to_json()
        for n in (1, 2, 4)
    ]

    def sweep():
        points = []
        for scenario in scenarios:
            registry = Metrics()
            with use(metrics=registry):
                outcome = repair_result(
                    design, doc, FaultMap.from_json(scenario)
                )
            points.append(
                {
                    "faults": len(scenario["faulty_cells"]),
                    "affected": len(outcome.affected),
                    "expansions": _expansions(registry),
                }
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["cost_vs_damage"] = points
    assert all(p["affected"] >= 1 for p in points)
