"""Shared fixtures and options for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy chip-scale rows are marked
``chips`` and can be skipped with ``-m 'not chips'`` for a quick pass.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "chips: chip-scale benchmark rows (Chip1/Chip2, slow)"
    )


@pytest.fixture
def effort(benchmark):
    """Install a metrics registry and record its counters per benchmark.

    Routers constructed while the fixture is active pick the registry up
    from the observability context; after the benchmark the counter
    values (A* expansions, MCF augmenting paths, rip-up rounds, ...) land
    in ``benchmark.extra_info["counters"]``, so saved benchmark JSON
    explains *why* a row's runtime moved, not just that it did.
    """
    from repro.observability import Metrics, use

    registry = Metrics()
    with use(metrics=registry):
        yield registry
    benchmark.extra_info["counters"] = registry.counter_values()
