"""Shared fixtures and options for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy chip-scale rows are marked
``chips`` and can be skipped with ``-m 'not chips'`` for a quick pass.
"""

import json
from pathlib import Path

import pytest

_KERNEL_BENCH_FILE = "bench_kernels.py"
_KERNEL_RATES_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
_RATE_KEYS = (
    "expansions_per_sec",
    "expansions_per_sec_peak",
    "states_per_sec",
    "routes_per_sec",
    "speedup_vs_point_kernel",
    "speedup_vs_scalar_engine",
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "chips: chip-scale benchmark rows (Chip1/Chip2, slow)"
    )


def pytest_sessionfinish(session, exitstatus):
    """Persist the kernel-core throughput rates to ``BENCH_kernels.json``.

    The repo root carries the committed baseline; every run of the
    kernel benchmarks rewrites the file with fresh rates, so a perf
    regression shows up as a reviewable diff — and
    ``bench_kernels._check_against_baseline`` fails the run outright
    when the headline rate drops more than its tolerance (the committed
    numbers are read before this rewrite).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    rows = {}
    for bench in bench_session.benchmarks:
        if _KERNEL_BENCH_FILE not in str(bench.fullname):
            continue
        rates = {
            key: bench.extra_info[key]
            for key in _RATE_KEYS
            if key in bench.extra_info
        }
        if rates:
            rows[bench.name] = rates
    if rows:
        _KERNEL_RATES_PATH.write_text(
            json.dumps({"benchmarks": rows}, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture
def effort(benchmark):
    """Install a metrics registry and record its counters per benchmark.

    Routers constructed while the fixture is active pick the registry up
    from the observability context; after the benchmark the counter
    values (A* expansions, MCF augmenting paths, rip-up rounds, ...) land
    in ``benchmark.extra_info["counters"]``, so saved benchmark JSON
    explains *why* a row's runtime moved, not just that it did.
    """
    from repro.observability import Metrics, use

    registry = Metrics()
    with use(metrics=registry):
        yield registry
    benchmark.extra_info["counters"] = registry.counter_values()
