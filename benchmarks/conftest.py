"""Shared fixtures and options for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy chip-scale rows are marked
``chips`` and can be skipped with ``-m 'not chips'`` for a quick pass.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "chips: chip-scale benchmark rows (Chip1/Chip2, slow)"
    )
