"""Kernel-core throughput — the flat cell-id substrate under all kernels.

Measures raw search throughput of :mod:`repro.routing.core` through each
public kernel (A*, Lee, bounded-length, negotiation) on the Table-1
designs.  Every benchmark records effort counters *and* derived rates in
``extra_info``:

* ``expansions_per_sec`` / ``states_per_sec`` — algorithmic work rate,
  the number the cell-id refactor exists to raise;
* ``routes_per_sec`` — end-to-end query throughput including
  ``SearchSpace`` construction and path materialisation;
* ``speedup_vs_point_kernel`` — ratio against the recorded throughput of
  the pre-refactor ``Point``-keyed A* kernel.

Run with ``--benchmark-json`` to archive the numbers (CI does).
"""

import json
from pathlib import Path as FsPath

import pytest

from repro.designs import design_by_name
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.routing.astar import astar_route
from repro.routing.bounded import bounded_length_route
from repro.routing.lee import lee_route
from repro.routing.negotiation import NegotiationRouter, RouteRequest

_SMALL = ["S1", "S2", "S3", "S4", "S5"]

_POINT_KERNEL_EXPANSIONS_PER_SEC = 130_260
"""Expansions/sec of the pre-refactor Point-keyed A* kernel.

Measured on the Table-1 S1-S5 corner-to-corner sweep below, same
harness, at the commit immediately before ``repro.routing.core`` landed.
The refactor's acceptance bar is >= 2x this figure.
"""

_MIN_SPEEDUP = 2.0

_SCALAR_ENGINE_EXPANSIONS_PER_SEC = 647_000
"""Expansions/sec of the scalar heap engine before the wave engine.

Measured on the open-grid wave sweep below (identical workload) at the
commit before the vectorised whole-frontier engine landed; the same
engine measured ~529k/s on the S5 point-to-point sweep, so this is the
*higher* of its two anchors.  The wave engine's acceptance bar is
>= 10x this figure.
"""

_MIN_WAVE_SPEEDUP = 10.0

_BASELINE_PATH = FsPath(__file__).resolve().parents[1] / "BENCH_kernels.json"
_MAX_REGRESSION = 0.20
"""Committed-baseline gate: expansions/sec may not drop more than this."""


def _check_against_baseline(key, field, eps):
    """Fail when ``eps`` regresses >20% vs the committed baseline entry."""
    if not _BASELINE_PATH.exists():  # fresh checkout without a baseline
        return
    baseline = json.loads(_BASELINE_PATH.read_text())
    recorded = baseline.get("benchmarks", {}).get(key, {}).get(field)
    if not recorded:
        return
    floor = (1.0 - _MAX_REGRESSION) * recorded
    assert eps >= floor, (
        f"{key}: {eps:,.0f} expansions/s regressed more than "
        f"{_MAX_REGRESSION:.0%} below the committed baseline "
        f"({recorded:,}/s in {_BASELINE_PATH.name})"
    )


def _corner_runs(grid):
    w, h = grid.width, grid.height
    return [
        ([Point(0, 0)], [Point(w - 1, h - 1)]),
        ([Point(0, h - 1)], [Point(w - 1, 0)]),
    ]


def _rates(benchmark, effort, *, routes, work_counter, work_key):
    """Record per-second rates for one benchmark round into extra_info."""
    mean = benchmark.stats.stats.mean
    rounds = benchmark.stats.stats.rounds
    work = effort.counter_values().get(work_counter, 0) / rounds
    benchmark.extra_info["routes_per_sec"] = round(routes / mean, 1)
    benchmark.extra_info[work_key] = round(work / mean)
    return work / mean


@pytest.mark.parametrize("name", _SMALL)
def test_kernel_astar_throughput(benchmark, effort, name):
    """Corner-to-corner A* sweeps; the headline expansions/sec number."""
    design = design_by_name(name)
    grid = design.grid.copy()
    occupancy = Occupancy(grid)
    runs = _corner_runs(grid)

    def route():
        for sources, targets in runs:
            assert astar_route(grid, sources, targets, occupancy=occupancy)

    benchmark.pedantic(route, rounds=20, iterations=1)
    eps = _rates(
        benchmark,
        effort,
        routes=len(runs),
        work_counter="astar.expansions",
        work_key="expansions_per_sec",
    )
    speedup = eps / _POINT_KERNEL_EXPANSIONS_PER_SEC
    benchmark.extra_info["speedup_vs_point_kernel"] = round(speedup, 2)
    assert speedup >= _MIN_SPEEDUP, (
        f"{name}: {eps:,.0f} expansions/s is below "
        f"{_MIN_SPEEDUP}x the Point-kernel baseline "
        f"({_POINT_KERNEL_EXPANSIONS_PER_SEC:,}/s)"
    )


def test_kernel_wave_throughput(benchmark, effort):
    """Open-grid column sweep; the vectorised wave engine's headline.

    A full west-column to east-column A* on an open 384x384 grid: wide
    unit-cost frontiers are exactly the workload the whole-frontier
    engine batches, so this is the honest ceiling measurement (chip
    grids fragment the wave on obstacles and land lower).  Asserts the
    >= 10x acceptance bar over the scalar heap engine on the identical
    workload, and the <= 20% regression gate against the committed
    ``BENCH_kernels.json`` baseline.
    """
    grid = RoutingGrid(384, 384)
    sources = [Point(0, y) for y in range(grid.height)]
    targets = [Point(grid.width - 1, y) for y in range(grid.height)]

    def route():
        assert astar_route(grid, sources, targets)

    benchmark.pedantic(route, rounds=10, iterations=1)
    eps = _rates(
        benchmark,
        effort,
        routes=1,
        work_counter="astar.expansions",
        work_key="expansions_per_sec",
    )
    # The acceptance bar compares peak throughput (best round): the
    # mean folds in GC pauses and scheduler noise that say nothing
    # about the engine, and a 10x gate needs a stable measurand.
    stats = benchmark.stats.stats
    eps_peak = eps * (stats.mean / stats.min)
    benchmark.extra_info["expansions_per_sec_peak"] = round(eps_peak)
    speedup = eps_peak / _SCALAR_ENGINE_EXPANSIONS_PER_SEC
    benchmark.extra_info["speedup_vs_scalar_engine"] = round(speedup, 2)
    assert speedup >= _MIN_WAVE_SPEEDUP, (
        f"wave sweep: {eps_peak:,.0f} peak expansions/s is below "
        f"{_MIN_WAVE_SPEEDUP}x the scalar-engine baseline "
        f"({_SCALAR_ENGINE_EXPANSIONS_PER_SEC:,}/s)"
    )
    _check_against_baseline(
        "test_kernel_wave_throughput", "expansions_per_sec_peak", eps_peak
    )


def test_kernel_wave_throughput_layered(benchmark, effort):
    """Two-layer wave sweep through a forced via wall.

    The same west-to-east column sweep as the planar wave case, on a
    256x256x2 grid whose layer 0 is split by a full-height obstacle
    wall: every unit of flow must climb to layer 1, cross over and
    come back down, so the 6-neighbour layered engine (via moves and
    the via-permission mask included) is on the measured path end to
    end.  Gated <= 20% regression against ``BENCH_kernels.json``.
    """
    grid = RoutingGrid(256, 256, 2)
    wall_x = grid.width // 2
    grid.add_obstacles(Point(wall_x, y) for y in range(grid.height))
    sources = [Point(0, y) for y in range(grid.height)]
    targets = [Point(grid.width - 1, y) for y in range(grid.height)]

    def route():
        assert astar_route(grid, sources, targets)

    benchmark.pedantic(route, rounds=10, iterations=1)
    eps = _rates(
        benchmark,
        effort,
        routes=1,
        work_counter="astar.expansions",
        work_key="expansions_per_sec",
    )
    stats = benchmark.stats.stats
    eps_peak = eps * (stats.mean / stats.min)
    benchmark.extra_info["expansions_per_sec_peak"] = round(eps_peak)
    _check_against_baseline(
        "test_kernel_wave_throughput_layered",
        "expansions_per_sec_peak",
        eps_peak,
    )


@pytest.mark.parametrize("name", _SMALL)
def test_kernel_lee_throughput(benchmark, effort, name):
    """Lee oracle on the same sweep; cross-checks A* path lengths."""
    design = design_by_name(name)
    grid = design.grid.copy()
    occupancy = Occupancy(grid)
    runs = _corner_runs(grid)
    # Optimal length of an unobstructed corner route is the L1 distance;
    # the designs keep the corners reachable, so Lee must match it.
    expected = (grid.width - 1) + (grid.height - 1)

    def route():
        for sources, targets in runs:
            path = lee_route(grid, sources, targets, occupancy=occupancy)
            assert path is not None and path.length == expected

    benchmark.pedantic(route, rounds=10, iterations=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["routes_per_sec"] = round(len(runs) / mean, 1)


@pytest.mark.parametrize("name", _SMALL)
def test_kernel_bounded_throughput(benchmark, effort, name):
    """Length-stretched corner route exercising the (cell, g) state space."""
    design = design_by_name(name)
    grid = design.grid.copy()
    source = Point(0, 0)
    target = Point(grid.width - 1, grid.height - 1)
    base = (grid.width - 1) + (grid.height - 1)
    min_length, max_length = base + 10, base + 14

    def route():
        assert bounded_length_route(grid, source, target, min_length, max_length)

    benchmark.pedantic(route, rounds=10, iterations=1)
    _rates(
        benchmark,
        effort,
        routes=1,
        work_counter="bounded.states",
        work_key="states_per_sec",
    )


def test_kernel_negotiation_throughput(benchmark, effort):
    """Crossing-edge negotiation: history array + rip-up, all on ids.

    Three mutually crossing edges on an open 16x16 grid; each leaves room
    to detour around the others' endpoints, so the router converges only
    after Eq.-5 history costs steer the re-routes apart.
    """
    grid = RoutingGrid(16, 16)
    requests = [
        RouteRequest(0, 0, (Point(2, 8),), (Point(13, 8),)),
        RouteRequest(1, 1, (Point(8, 2),), (Point(8, 13),)),
        RouteRequest(2, 2, (Point(2, 6),), (Point(13, 10),)),
    ]

    def route():
        occupancy = Occupancy(grid)
        result = NegotiationRouter(grid).route(requests, occupancy)
        assert result.success

    benchmark.pedantic(route, rounds=10, iterations=1)
    _rates(
        benchmark,
        effort,
        routes=len(requests),
        work_counter="astar.expansions",
        work_key="expansions_per_sec",
    )
