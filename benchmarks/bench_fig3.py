"""Fig. 3 — DME candidate Steiner trees for a 4-valve cluster.

The figure shows the merging segments (a) and three distinct candidate
embeddings (b)-(d), all satisfying the length-matching constraint.  The
benchmark regenerates exactly that: a 4-sink cluster, multiple distinct
candidates, every one with balanced sink distances (up to the half-unit
Lemma-1 rounding repaired later by detouring).
"""

import pytest

from repro.dme import (
    balanced_bipartition_topology,
    compute_merging_regions,
    generate_candidates,
)
from repro.geometry import Point
from repro.grid import RoutingGrid

SINKS = [Point(3, 3), Point(13, 4), Point(4, 12), Point(14, 13)]


def test_fig3a_merging_segments(benchmark):
    def build():
        topology = balanced_bipartition_topology(SINKS)
        compute_merging_regions(topology)
        return topology

    topology = benchmark(build)
    internal = [n for n in topology.walk() if not n.is_leaf()]
    assert len(internal) == 3  # m1, m2, m3 of the figure
    for node in internal:
        assert node.merge_region is not None
    benchmark.extra_info["n_merging_segments"] = len(internal)


def test_fig3bcd_candidates(benchmark):
    grid = RoutingGrid(18, 18)
    candidates = benchmark(lambda: generate_candidates(grid, 0, SINKS, k=4))
    assert len(candidates) >= 3  # the figure shows three distinct trees
    signatures = {t.signature() for t in candidates}
    assert len(signatures) == len(candidates)
    for tree in candidates:
        lengths = list(tree.full_path_lengths().values())
        # Balanced up to cumulative half-unit rounding over tree height.
        assert max(lengths) - min(lengths) <= 2
    benchmark.extra_info["n_candidates"] = len(candidates)
    benchmark.extra_info["mismatches"] = [t.mismatch() for t in candidates]


def test_fig3_candidates_with_obstacles(benchmark):
    """Embedding must dodge blockages (Section 4.1's second issue)."""
    grid = RoutingGrid(18, 18)
    for cell in [Point(8, y) for y in range(6, 11)]:
        grid.set_obstacle(cell)
    candidates = benchmark(lambda: generate_candidates(grid, 0, SINKS, k=4))
    assert candidates
    for tree in candidates:
        for node in tree.root.walk():
            if not node.is_leaf():
                assert grid.is_free(node.position)
