"""Ablation F — negotiation parameters (Eq. 5 and γ).

The paper sets base history cost b = 1.0, α = 0.1 and iteration
threshold γ = 10.  This ablation sweeps γ and α on a contention-heavy
instance and records iterations-to-converge and failures, showing
(a) γ = 1 (no negotiation — plain sequential routing) fails where the
negotiated router succeeds, and (b) results are insensitive to α in a
broad band, as the paper's fixed choice suggests.
"""

import pytest

from repro.geometry import Point
from repro.grid import Occupancy, RoutingGrid
from repro.routing import NegotiationRouter, RouteRequest


def _contention_instance():
    """Six nets funnelled through six clustered one-cell wall gaps.

    Capacity equals demand, but the gaps sit far from most nets' rows,
    so early nets' paths along the wall face can strand later ones —
    the order problem Algorithm 1's history costs resolve.
    """
    grid = RoutingGrid(24, 24)
    gaps = {2, 4, 6, 8, 10, 12}
    for y in range(24):
        if y not in gaps:
            grid.set_obstacle(Point(12, y))
    requests = [
        RouteRequest(i, i + 1, (Point(11, 10 + 2 * i),), (Point(22, 10 + 2 * i),))
        for i in range(6)
    ]
    return grid, requests


@pytest.mark.parametrize("gamma", [1, 2, 5, 10])
def test_gamma_sweep(benchmark, gamma):
    grid, requests = _contention_instance()

    def run():
        router = NegotiationRouter(grid, gamma=gamma)
        return router.route(requests, Occupancy(grid))

    result = benchmark(run)
    benchmark.extra_info["gamma"] = gamma
    benchmark.extra_info["success"] = result.success
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["failed_edges"] = len(result.failed_edges)


@pytest.mark.parametrize("alpha", [0.0, 0.1, 0.5, 0.9])
def test_alpha_sweep(benchmark, alpha):
    grid, requests = _contention_instance()

    def run():
        router = NegotiationRouter(grid, alpha=alpha)
        return router.route(requests, Occupancy(grid))

    result = benchmark(run)
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["success"] = result.success
    benchmark.extra_info["iterations"] = result.iterations


def test_negotiation_never_worse_than_single_pass():
    """More iterations never strand more edges, and whatever is routed
    is crossing-free.  (On this deliberately hard funnel even γ = 10 may
    not route everything; the unit suite holds the success cases.)"""
    grid, requests = _contention_instance()
    negotiated = NegotiationRouter(grid, gamma=10).route(requests, Occupancy(grid))
    single = NegotiationRouter(grid, gamma=1).route(requests, Occupancy(grid))
    assert len(negotiated.failed_edges) <= len(single.failed_edges)
    cells_by_net = {}
    for req in requests:
        path = negotiated.paths.get(req.edge_id)
        if path is not None:
            cells_by_net.setdefault(req.net, set()).update(path.cells)
    nets = list(cells_by_net)
    for i, a in enumerate(nets):
        for b in nets[i + 1 :]:
            assert not cells_by_net[a] & cells_by_net[b]


def test_negotiation_resolves_order_conflict():
    """A feasible two-net conflict the single pass cannot always see:
    both nets prefer the same gap; negotiation settles who detours."""
    grid = RoutingGrid(13, 9)
    for y in range(9):
        if y not in (2, 6):
            grid.set_obstacle(Point(6, y))
    requests = [
        RouteRequest(0, 1, (Point(1, 3),), (Point(11, 2),)),
        RouteRequest(1, 2, (Point(1, 2),), (Point(11, 3),)),
    ]
    result = NegotiationRouter(grid, gamma=10).route(requests, Occupancy(grid))
    assert result.success
    assert not (
        set(result.paths[0].cells) & set(result.paths[1].cells)
    )
