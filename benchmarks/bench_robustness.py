"""Robustness study — routing stability under layout perturbation.

A production flow should not be brittle: nudging half the valves by one
cell and sprinkling a few extra obstruction cells must not collapse
completion or matching.  Runs PACOR over a family of perturbed S3/S4
variants and reports the spread of matched clusters and completion.
"""

import pytest

from repro.analysis import verify_result
from repro.core import run_pacor
from repro.designs import design_by_name
from repro.designs.perturb import perturbation_family


@pytest.mark.parametrize("name", ["S3", "S4"])
def test_perturbation_family(benchmark, name):
    base = design_by_name(name)
    variants = perturbation_family(base, count=4, seed=400)

    def run_all():
        return [run_pacor(v) for v in variants]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    matched = []
    for variant, result in zip(variants, results):
        verify_result(variant, result)
        assert result.completion_rate == 1.0
        matched.append(result.matched_clusters)
    benchmark.extra_info["matched_per_variant"] = matched
    benchmark.extra_info["n_clusters"] = results[0].n_lm_clusters
    # Matching never collapses entirely under mild perturbation.
    assert min(matched) >= results[0].n_lm_clusters - 2


def test_baseline_vs_perturbed_matching_close():
    base = design_by_name("S3")
    base_result = run_pacor(base)
    worst = base_result.matched_clusters
    for variant in perturbation_family(base, count=3, seed=900):
        worst = min(worst, run_pacor(variant).matched_clusters)
    assert worst >= base_result.matched_clusters - 2
