"""Robustness study — routing stability under layout perturbation.

A production flow should not be brittle: nudging half the valves by one
cell and sprinkling a few extra obstruction cells must not collapse
completion or matching.  Runs PACOR over a family of perturbed S3/S4
variants and reports the spread of matched clusters and completion.
"""

import pytest

from repro.analysis import verify_result
from repro.core import PacorConfig, run_pacor
from repro.designs import design_by_name
from repro.designs.perturb import perturbation_family


@pytest.mark.parametrize("name", ["S3", "S4"])
def test_perturbation_family(benchmark, name):
    base = design_by_name(name)
    variants = perturbation_family(base, count=4, seed=400)

    def run_all():
        return [run_pacor(v) for v in variants]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    matched = []
    for variant, result in zip(variants, results):
        verify_result(variant, result)
        assert result.completion_rate == 1.0
        matched.append(result.matched_clusters)
    benchmark.extra_info["matched_per_variant"] = matched
    benchmark.extra_info["n_clusters"] = results[0].n_lm_clusters
    # Matching never collapses entirely under mild perturbation.
    assert min(matched) >= results[0].n_lm_clusters - 2


_BUDGETS_S = [None, 1.0, 0.4, 0.15, 0.05]
"""Wall-clock budgets for the completion-vs-budget sweep (None = unlimited)."""


@pytest.mark.parametrize("name", ["S3", "S4"])
def test_wall_clock_budget_sweep(benchmark, name):
    """Graceful degradation: completion as the wall-clock budget shrinks.

    Runs the same design under per-run wall-clock budgets from unlimited
    down to 50 ms and records the (budget, completion, matched) points in
    ``extra_info`` — the degradation curve the robustness docs plot.  The
    flow must stay total: every budgeted run returns a result rather than
    hanging, and an unlimited run completes fully.
    """
    design = design_by_name(name)

    def sweep():
        points = []
        for budget_s in _BUDGETS_S:
            config = PacorConfig(wall_clock_budget_s=budget_s)
            result = run_pacor(design, config)
            points.append(
                {
                    "budget_s": budget_s,
                    "completion": result.completion_rate,
                    "matched": result.matched_clusters,
                    "degraded": result.degraded,
                }
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["completion_vs_budget"] = points
    # Unlimited budget must complete fully; budgeted runs may degrade
    # but must still return sane, bounded numbers.
    assert points[0]["completion"] == 1.0
    assert not points[0]["degraded"]
    for point in points:
        assert 0.0 <= point["completion"] <= 1.0


def test_baseline_vs_perturbed_matching_close():
    base = design_by_name("S3")
    base_result = run_pacor(base)
    worst = base_result.matched_clusters
    for variant in perturbation_family(base, count=3, seed=900):
        worst = min(worst, run_pacor(variant).matched_clusters)
    assert worst >= base_result.matched_clusters - 2
