"""Scaling study — empirical runtime growth of the full flow.

Sections 4-6 argue every stage is polynomial (negotiation O(m·n·|B|·γ),
detouring O(m·n·|PFs|·|Psi|·θ), escape routing one min-cost flow).  This
benchmark measures end-to-end runtime on a family of geometrically
growing designs with proportional cluster counts, so the growth curve
can be inspected in the benchmark report.
"""

import pytest

from repro.core import run_pacor
from repro.designs import ClusterPlan, generate_design


def _design(scale: int):
    side = 24 * scale
    n_clusters = 2 * scale
    sizes = [2 + (i % 2) for i in range(n_clusters)]  # alternate 2s and 3s
    return generate_design(
        f"scale{scale}",
        side,
        side,
        clusters=[ClusterPlan(s) for s in sizes],
        n_singletons=2 * scale,
        n_pins=8 * scale,
        n_obstacles=6 * scale * scale,
        seed=100 + scale,
        core_fraction=0.6,
    )


@pytest.mark.parametrize("scale", [1, 2, 3, 4])
def test_flow_scaling(benchmark, scale):
    design = _design(scale)
    result = benchmark.pedantic(lambda: run_pacor(design), rounds=1, iterations=1)
    assert result.completion_rate == 1.0
    benchmark.extra_info["grid"] = f"{design.grid.width}x{design.grid.height}"
    benchmark.extra_info["valves"] = len(design.valves)
    benchmark.extra_info["matched"] = result.matched_clusters
    benchmark.extra_info["total_length"] = result.total_length
