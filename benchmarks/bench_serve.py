"""Service benchmarks — daemon throughput and cache-hit latency.

Two numbers the service PR promises (see docs/service.md):

* ``jobs_per_sec`` — end-to-end daemon throughput on small designs:
  submit a batch over the HTTP API, drain the worker pool, divide.
* ``cache_hit_latency_s`` — an identical re-submission is answered from
  the result cache without re-routing; the acceptance bar is a mean
  well under 100 ms, HTTP round-trip included.

Every submission in the throughput batch routes a *renamed* copy of the
design: the canonical hash covers the name, so renaming defeats the
result cache and each job pays full routing cost.
"""

import json

import pytest

from repro.designs import design_by_name, design_to_json
from repro.service import PacorService, ServiceAPIServer, ServiceClient

BATCH = 6
WORKERS = 3


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-bench")
    service = PacorService(root, workers=WORKERS)
    server = ServiceAPIServer(service)
    service.start()
    server.start()
    yield service, ServiceClient(server.url, timeout=60.0)
    server.stop()
    service.stop(graceful=False, timeout=10.0)


def _renamed(doc, tag):
    clone = json.loads(json.dumps(doc))
    clone["name"] = f"{clone['name']}-{tag}"
    return clone


def test_daemon_throughput_jobs_per_sec(benchmark, served):
    service, client = served
    base = design_to_json(design_by_name("S1"))
    batches = iter(range(10_000))

    def run_batch():
        tag = next(batches)
        ids = [
            client.submit(_renamed(base, f"b{tag}n{i}"))["job_id"]
            for i in range(BATCH)
        ]
        assert service.drain(timeout=120.0)
        for job_id in ids:
            assert client.job(job_id)["state"] == "succeeded"

    benchmark.pedantic(run_batch, rounds=3, iterations=1, warmup_rounds=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["batch_size"] = BATCH
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["jobs_per_sec"] = BATCH / mean


def test_cache_hit_latency(benchmark, served):
    service, client = served
    doc = design_to_json(design_by_name("S2"))
    # Warm the cache with one real routing run.
    first = client.submit(doc)
    client.wait(first["job_id"], timeout=120.0)

    def resubmit():
        record = client.submit(doc)
        assert record["state"] == "succeeded"
        assert record["cached"] is True
        return record

    benchmark(resubmit)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["cache_hit_latency_s"] = mean
    benchmark.extra_info["cache_hits"] = service.metrics.counter_values()[
        "service.cache_hits"
    ]
    # The acceptance bar: answered from cache, not re-routed — orders of
    # magnitude under routing time, and absolutely under 100 ms.
    assert mean < 0.1
