"""Ablation B — escape-routing flow engine.

The paper solves the escape LP with Gurobi; we solve the equivalent
min-cost max-flow with our successive-shortest-paths engine.  This
ablation checks the substitution on real escape instances: our engine's
objective must equal ``networkx.max_flow_min_cost`` on the same network,
and we time both.
"""

import networkx as nx
import pytest

from repro.escape import EscapeSource, solve_escape
from repro.flownet import MinCostFlow
from repro.geometry import Point
from repro.grid import RoutingGrid


def _escape_instance():
    grid = RoutingGrid(52, 52)
    sources = [EscapeSource(i, (Point(10 + 8 * i, 26),)) for i in range(5)]
    pins = [Point(x, 0) for x in range(2, 50, 6)] + [
        Point(x, 51) for x in range(2, 50, 6)
    ]
    return grid, sources, pins


def test_escape_solve_ours(benchmark):
    grid, sources, pins = _escape_instance()
    result = benchmark(lambda: solve_escape(grid, sources, pins))
    assert result.complete
    benchmark.extra_info["total_cost"] = result.total_cost


def _random_network(seed):
    import random

    rng = random.Random(seed)
    n = 40
    ours = MinCostFlow(n)
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(n))
    used = set()
    for _ in range(240):
        u, v = rng.sample(range(n), 2)
        if (u, v) in used:
            continue
        used.add((u, v))
        cap = rng.randint(1, 5)
        cost = rng.randint(0, 12)
        ours.add_arc(u, v, cap, float(cost))
        theirs.add_edge(u, v, capacity=cap, weight=cost)
    return ours, theirs


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_engines_agree(seed):
    ours, theirs = _random_network(seed)
    flow, cost = ours.max_flow_min_cost(0, 39)
    flow_dict = nx.max_flow_min_cost(theirs, 0, 39)
    nx_flow = sum(flow_dict[0].values()) - sum(
        d.get(0, 0) for d in flow_dict.values()
    )
    nx_cost = nx.cost_of_flow(theirs, flow_dict)
    assert flow == nx_flow
    assert cost == pytest.approx(nx_cost)


def test_engine_ours_speed(benchmark):
    ours, _ = _random_network(7)
    benchmark(lambda: _random_network(7)[0].max_flow_min_cost(0, 39))


def test_engine_networkx_speed(benchmark):
    _, theirs = _random_network(7)

    def run():
        g = theirs.copy()
        return nx.max_flow_min_cost(g, 0, 39)

    benchmark(run)
