"""Ablation A — MWCP solver choice (Section 4.2).

The paper implemented a graph-based method, an ILP (Gurobi) and an
unconstrained-quadratic-programming method and reports the ILP "gives
the best performance".  This ablation times our three counterparts on
selection instances harvested from the S5 benchmark and compares their
objectives: the exact branch-and-bound (ILP stand-in) must dominate.
"""

import pytest

from repro.designs import s5
from repro.dme import generate_candidates
from repro.selection import (
    SelectionInstance,
    solve_exact,
    solve_greedy,
    solve_local_search,
)
from repro.valves import cluster_valves


@pytest.fixture(scope="module")
def instance():
    """A real selection instance: S5's 3-valve clusters, k=6 candidates."""
    design = s5()
    clusters = cluster_valves(design.valves, design.lm_groups)
    valve_cells = {v.position for v in design.valves}
    candidate_sets = []
    for cluster in clusters:
        if cluster.size < 3 or not cluster.length_matching:
            continue
        cands = generate_candidates(
            design.grid,
            cluster.id,
            [v.position for v in cluster.valves],
            k=6,
            blocked=valve_cells,
        )
        if cands:
            candidate_sets.append(cands)
    assert len(candidate_sets) >= 3
    return SelectionInstance(candidate_sets)


def test_solver_exact(benchmark, instance):
    result = benchmark(lambda: solve_exact(instance))
    assert result.optimal
    benchmark.extra_info["objective"] = result.objective
    benchmark.extra_info["nodes"] = result.nodes_explored


def test_solver_greedy(benchmark, instance):
    result = benchmark(lambda: solve_greedy(instance))
    benchmark.extra_info["objective"] = result.objective


def test_solver_local_search(benchmark, instance):
    result = benchmark(lambda: solve_local_search(instance))
    benchmark.extra_info["objective"] = result.objective


def test_solver_quality_ordering(instance):
    """Exact >= local search >= greedy (each refines the previous)."""
    exact = solve_exact(instance)
    local = solve_local_search(instance)
    greedy = solve_greedy(instance)
    assert exact.objective >= local.objective - 1e-9
    assert local.objective >= greedy.objective - 1e-9
