"""Ablation E — zero-skew + detour vs bounded-skew tree construction.

The paper constructs zero-skew trees and spends extra wire detouring to
within δ afterwards.  The natural extension (bounded-skew DME) spends δ
*during* merging instead.  This ablation measures, on random clusters,
how much estimated tree wirelength a skew budget of δ saves relative to
the zero-skew construction — the headroom the paper's final-detour
strategy leaves on the table.
"""

import random

import pytest

from repro.dme import generate_candidates
from repro.geometry import Point
from repro.grid import RoutingGrid


def _clusters(seed, n_clusters=8, size=4, extent=60):
    rng = random.Random(seed)
    out = []
    for _ in range(n_clusters):
        points = set()
        while len(points) < size:
            points.add(
                Point(rng.randrange(2, extent - 2), rng.randrange(2, extent - 2))
            )
        out.append(sorted(points))
    return out


def _total_wirelength(skew_bound_h):
    grid = RoutingGrid(60, 60)
    total = 0
    mismatches = []
    for ci, points in enumerate(_clusters(seed=31)):
        cands = generate_candidates(
            grid, ci, points, k=6, skew_bound_h=skew_bound_h
        )
        assert cands
        # Every candidate honours the budget by construction; the study
        # measures the cheapest wirelength the budget admits.
        best = min(cands, key=lambda t: t.total_estimated_length())
        total += best.total_estimated_length()
        mismatches.append(best.mismatch())
    return total, mismatches


@pytest.mark.parametrize("delta", [0, 1, 2, 4])
def test_bounded_skew_wirelength(benchmark, delta):
    total, mismatches = benchmark(lambda: _total_wirelength(2 * delta))
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["total_wirelength"] = total
    benchmark.extra_info["max_mismatch"] = max(mismatches)
    # The construction must respect its own budget (embedding snaps may
    # add the usual rounding repaired later by detouring).
    assert max(mismatches) <= delta + 2


def test_budget_saves_wire_in_aggregate():
    w0, _ = _total_wirelength(0)
    w2, _ = _total_wirelength(4)
    w4, _ = _total_wirelength(8)
    assert w2 <= w0
    assert w4 <= w2


@pytest.mark.parametrize("bounded", [False, True], ids=["zero-skew", "bounded"])
def test_full_flow_with_bounded_skew(benchmark, bounded):
    """The whole PACOR flow with either tree construction, on S4."""
    from repro.core import PacorConfig, run_pacor
    from repro.designs import design_by_name

    design = design_by_name("S4")
    result = benchmark.pedantic(
        lambda: run_pacor(design, PacorConfig(bounded_skew_dme=bounded)),
        rounds=1,
        iterations=1,
    )
    assert result.completion_rate == 1.0
    benchmark.extra_info["matched"] = result.matched_clusters
    benchmark.extra_info["total_length"] = result.total_length
