"""Table 1 — benchmark design parameters.

Regenerates the paper's Table 1: for each design, Size, #Valves,
#Control pin and #Obs.  The benchmark measures design synthesis time and
asserts that every generated instance carries exactly the published
parameters.
"""

import pytest

from repro.analysis import format_table, table1_rows
from repro.designs import TABLE1_PARAMETERS, design_by_name

_SMALL = ["S1", "S2", "S3", "S4", "S5"]
_CHIPS = ["Chip1", "Chip2"]


def _check(design):
    params = TABLE1_PARAMETERS[design.name]
    assert (design.grid.width, design.grid.height) == params["size"]
    assert len(design.valves) == params["n_valves"]
    assert len(design.control_pins) == params["n_pins"]
    assert design.grid.obstacle_count() == params["n_obs"]
    return design


@pytest.mark.parametrize("name", _SMALL)
def test_table1_synthetic(benchmark, name):
    design = benchmark(lambda: _check(design_by_name(name)))
    benchmark.extra_info.update(design.stats())


@pytest.mark.chips
@pytest.mark.parametrize("name", _CHIPS)
def test_table1_chips(benchmark, name):
    design = benchmark.pedantic(
        lambda: _check(design_by_name(name)), rounds=1, iterations=1
    )
    benchmark.extra_info.update(design.stats())


def test_table1_print(capsys):
    """Print the Table-1 rows (visible with ``-s`` / in the report)."""
    designs = [design_by_name(n) for n in _SMALL]
    headers = ["Design", "Size", "#Valves", "#Control pin", "#Obs"]
    text = format_table(headers, table1_rows(designs))
    print("\n" + text)
    assert "S5" in text
