"""Motivation experiment — switching skew with and without length matching.

Section 1 motivates the length-matching constraint: unequal channel
lengths make synchronised valves switch at different times.  This
benchmark quantifies that on routed solutions with the first-order
pressure-delay model: worst-case modelled skew of matched clusters must
stay bounded by δ (linear model), while disabling the detour stage lets
skew grow with the raw DME/obstacle mismatch.
"""

import pytest

from repro.analysis import DelayModel, cluster_skews, worst_skew
from repro.core import PacorConfig, run_pacor
from repro.designs import design_by_name

_LINEAR = DelayModel(tau0=1.0, alpha=1.0)


@pytest.mark.parametrize("name", ["S3", "S4", "S5"])
def test_matched_skew_bounded(benchmark, name):
    design = design_by_name(name)
    result = benchmark.pedantic(lambda: run_pacor(design), rounds=1, iterations=1)
    matched = worst_skew(design, result, _LINEAR, matched_only=True)
    overall = worst_skew(design, result, _LINEAR)
    assert matched <= design.delta
    benchmark.extra_info["matched_skew"] = matched
    benchmark.extra_info["overall_skew"] = overall


@pytest.mark.parametrize("name", ["S3", "S4"])
def test_detouring_reduces_skew(benchmark, name):
    design = design_by_name(name)

    def run_both():
        with_detour = run_pacor(design)
        without = run_pacor(design, PacorConfig(detour_stage="none"))
        return with_detour, without

    with_detour, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    matched_with = worst_skew(design, with_detour, _LINEAR, matched_only=True)
    benchmark.extra_info["skew_with_detour"] = matched_with
    benchmark.extra_info["skew_without_detour"] = worst_skew(
        design, without, _LINEAR
    )
    assert matched_with <= design.delta


def test_quadratic_model_punishes_mismatch_more():
    design = design_by_name("S3")
    result = run_pacor(design)
    skews = cluster_skews(design, result, DelayModel(tau0=1.0, alpha=2.0))
    linear = cluster_skews(design, result, _LINEAR)
    by_net_q = {s.net_id: s.skew for s in skews}
    by_net_l = {s.net_id: s.skew for s in linear}
    for net_id, lskew in by_net_l.items():
        if lskew > 0:
            assert by_net_q[net_id] >= lskew
