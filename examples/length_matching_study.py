"""Study: how the matching threshold δ shapes the routing outcome.

Sweeps δ on the S3 benchmark and reports matched clusters, total matched
channel length and total channel length.  A tighter δ forces more
detouring (longer matched channels) and eventually makes some clusters
unmatchable — the trade-off at the heart of the length-matching
constraint.

Run with::

    python examples/length_matching_study.py
"""

from repro import PacorConfig, run_pacor, s3
from repro.analysis import format_table, verify_result


def main() -> None:
    rows = []
    for delta in (0, 1, 2, 4, 8, 16):
        design = s3()
        result = run_pacor(design, PacorConfig(delta=delta))
        verify_result(design, result)
        worst = max(
            (n.mismatch for n in result.nets if n.mismatch is not None),
            default=0,
        )
        rows.append(
            [
                delta,
                f"{result.matched_clusters}/{result.n_lm_clusters}",
                result.total_matched_length,
                result.total_length,
                worst,
                f"{result.completion_rate:.0%}",
            ]
        )
    print("PACOR on S3 under varying length-matching threshold δ:\n")
    print(
        format_table(
            ["delta", "matched", "matched len", "total len", "worst dL", "completion"],
            rows,
        )
    )
    print(
        "\nReading: delta=1 is the paper's setting; looser thresholds match "
        "clusters without detouring (shorter channels), tighter ones cost "
        "wirelength or matches."
    )


if __name__ == "__main__":
    main()
