"""Design-space example: synthesize a biochip and compare the three flows.

Generates a custom control layer (3 length-matching clusters plus
singleton valves), runs "w/o Sel", "Detour First" and full PACOR, prints
a Table-2 style comparison, verifies each solution independently, and
exports an SVG rendering of the PACOR result.

Run with::

    python examples/custom_biochip.py
"""

from repro import PacorConfig, run_method
from repro.analysis import format_table, verify_result
from repro.analysis.report import table2_headers, table2_rows
from repro.core import METHODS
from repro.designs import ClusterPlan, generate_design
from repro.viz import render_svg


def main() -> None:
    design = generate_design(
        "demo-chip",
        48,
        48,
        clusters=[ClusterPlan(4), ClusterPlan(3), ClusterPlan(2)],
        n_singletons=5,
        n_pins=40,
        n_obstacles=60,
        seed=20150607,  # DAC'15 started June 7 2015
        core_fraction=0.5,
    )
    print(f"Generated {design!r}")

    results = {}
    for method in METHODS:
        result = run_method(design, method, PacorConfig(k_candidates=6))
        notes = verify_result(design, result)
        results[method] = [result]
        print(
            f"{method:13s}: matched {result.matched_clusters}/"
            f"{result.n_lm_clusters}, total length {result.total_length}, "
            f"completion {result.completion_rate:.0%}, "
            f"verified ({len(notes)} notes)"
        )

    print()
    print(format_table(table2_headers(), table2_rows(results)))

    svg_path = "demo_chip_pacor.svg"
    with open(svg_path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(design, results["PACOR"][0], cell=10))
    print(f"\nWrote {svg_path}")


if __name__ == "__main__":
    main()
