"""Quickstart: route the S1 benchmark and inspect the result.

Run with::

    python examples/quickstart.py
"""

from repro import run_pacor, s1
from repro.analysis import verify_result
from repro.viz import render_ascii


def main() -> None:
    design = s1()
    print(f"Design: {design!r}")

    result = run_pacor(design)

    row = result.summary_row()
    print(
        f"\nPACOR on {row['design']}: "
        f"{row['matched_clusters']}/{row['n_clusters']} clusters matched, "
        f"total channel length {row['total_length']}, "
        f"completion {row['completion']:.0%}, "
        f"runtime {row['runtime_s']:.3f}s"
    )

    print("\nPer-net outcome:")
    for net in result.nets:
        tag = "LM" if net.length_matching else "  "
        matched = {True: "matched", False: "NOT matched", None: "-"}[net.matched]
        print(
            f"  net {net.net_id} {tag} valves={net.valve_ids} "
            f"pin={net.pin} length={net.channel_length} {matched}"
        )

    notes = verify_result(design, result)
    print(f"\nIndependent verification passed ({len(notes)} notes).")

    print("\nRouted chip (V=valve, @=assigned pin, #=obstacle):")
    print(render_ascii(design, result))


if __name__ == "__main__":
    main()
