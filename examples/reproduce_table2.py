"""Reproduce the paper's Table 2 end to end.

Runs the three methods ("w/o Sel", "Detour First", PACOR) on the chosen
designs, verifies every solution independently, prints the paper-style
table plus the normalised "Avg." row, and optionally writes the raw
numbers to JSON.

Run with::

    python examples/reproduce_table2.py              # S1-S5 (fast)
    python examples/reproduce_table2.py --chips      # full suite (minutes)
    python examples/reproduce_table2.py --json out.json
"""

import argparse
import json

from repro.analysis import compare_methods, format_table, verify_result
from repro.analysis.report import table2_headers, table2_rows
from repro.core import METHODS, run_method
from repro.designs import design_by_name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", action="store_true", help="include Chip1/Chip2")
    parser.add_argument("--json", metavar="FILE", help="dump raw rows to JSON")
    args = parser.parse_args()

    names = ["S1", "S2", "S3", "S4", "S5"]
    if args.chips:
        names = ["Chip1", "Chip2"] + names

    results = {m: [] for m in METHODS}
    for name in names:
        design = design_by_name(name)
        for method in METHODS:
            result = run_method(design, method)
            notes = verify_result(design, result)
            results[method].append(result)
            print(
                f"  {name:6s} {method:13s} matched "
                f"{result.matched_clusters}/{result.n_lm_clusters} "
                f"len {result.total_length} "
                f"completion {result.completion_rate:.0%} "
                f"({result.runtime_s:.1f}s, verified, {len(notes)} notes)"
            )

    print()
    print(format_table(table2_headers(), table2_rows(results)))

    print("\nAvg. (normalised to PACOR, as in the paper):")
    for comp in compare_methods(results):
        print(
            f"  {comp.method:13s} matched {comp.matched_ratio:.2f}  "
            f"matched-len {comp.matched_length_ratio:.2f}  "
            f"total-len {comp.total_length_ratio:.2f}  "
            f"runtime {comp.runtime_ratio:.2f}"
        )

    if args.json:
        rows = [
            {**result.summary_row()}
            for method in METHODS
            for result in results[method]
        ]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=1)
        print(f"\nwrote {args.json}")


if __name__ == "__main__":
    main()
