"""Two-layer demo: flow geometry projecting control-layer obstacles.

Draws the flow layer first (rotary mixing ring, reagent comb, guarded
supply channel), derives the control layer's obstacles from it (every
flow cell except the designed valve sites — any other crossing would
form a parasitic valve), then routes the control layer with PACOR and
renders both layers.

Run with::

    python examples/two_layer_chip.py
"""

from repro.analysis import congestion_map, verify_result
from repro.core import run_pacor
from repro.synthesis.flowchip import mixer_chip_design
from repro.viz import render_ascii, render_svg


def main() -> None:
    design, flow = mixer_chip_design()
    print(f"Flow layer: {len(flow.channels)} channels, "
          f"{len(flow.valve_sites)} valve sites")
    print(f"Projected control-layer obstacles: {design.grid.obstacle_count()}")
    print(f"Control layer: {design!r}")

    result = run_pacor(design)
    verify_result(design, result)
    print(
        f"\nPACOR: completion {result.completion_rate:.0%}, "
        f"{result.matched_clusters}/{result.n_lm_clusters} clusters matched, "
        f"total channel length {result.total_length}"
    )
    cmap = congestion_map(design, result, tile=6)
    print(f"routing utilisation {cmap.utilisation:.1%}, "
          f"densest tile {cmap.max_occupancy():.1%}")

    svg_path = "two_layer_chip.svg"
    with open(svg_path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(design, result, cell=12, flow=flow))
    print(f"wrote {svg_path}\n")

    print("Control layer (V=valve site, #=flow channel, @=assigned pin):")
    print(render_ascii(design, result))


if __name__ == "__main__":
    main()
