"""Full-stack demo: from a bioassay schedule to a routed control layer.

Builds a small lab-on-chip — a rotary mixer, a 4-way reagent multiplexer
and a containment guard bank — schedules a mix-and-seal assay on it,
compiles the valve switching table (the input PACOR's problem statement
takes as given), routes the control layer, and reports length matching
and modelled switching skew.

Run with::

    python examples/assay_chip.py
"""

from repro import run_pacor
from repro.analysis import DelayModel, cluster_skews, verify_result
from repro.synthesis import (
    AssaySchedule,
    GuardBank,
    Multiplexer,
    Operation,
    RotaryMixer,
    assay_to_design,
)
from repro.viz import render_ascii


def build_schedule() -> AssaySchedule:
    mixer = RotaryMixer("mixer")
    mux = Multiplexer("mux", 4)
    guard = GuardBank("guard", 4)
    return AssaySchedule(
        components=[mixer, mux, guard],
        operations=[
            Operation("guard", "release", start=0),
            Operation("mux", "select:0", start=0),  # reagent 0 to the mixer
            Operation("mixer", "load", start=1),
            Operation("mux", "select:2", start=3),  # reagent 2 joins
            Operation("mixer", "mix", start=4, repeats=3),
            Operation("mixer", "flush", start=22),
            Operation("guard", "seal", start=24),
        ],
    )


def main() -> None:
    schedule = build_schedule()
    design = assay_to_design(schedule, name="assay-demo", valve_spacing=3)
    print(f"Synthesized {design!r}")
    print(
        f"  components: {[c.name for c in schedule.components]}, "
        f"schedule horizon {len(design.valves[0].sequence)} steps"
    )
    print(f"  length-matching groups: {design.lm_groups}")

    result = run_pacor(design)
    verify_result(design, result)
    print(
        f"\nPACOR: {result.matched_clusters}/{result.n_lm_clusters} LM clusters "
        f"matched, {result.pins_used} control pins, total channel length "
        f"{result.total_length}, completion {result.completion_rate:.0%}"
    )

    print("\nSwitching skew (quadratic pressure model):")
    for skew in cluster_skews(design, result, DelayModel(tau0=1e-4, alpha=2.0)):
        tag = "matched" if skew.matched else "unmatched"
        print(
            f"  net {skew.net_id} ({len(skew.arrival)} valves, {tag}): "
            f"skew {skew.skew * 1e3:.3f} ms"
        )

    print("\nChip (V=valve, @=assigned pin):")
    print(render_ascii(design, result))


if __name__ == "__main__":
    main()
