"""Recreate Fig. 3: DME candidate Steiner trees for a 4-valve cluster.

The DME algorithm first computes *merging segments* bottom-up (Fig. 3a),
then different merging-node choices during the top-down embedding yield
multiple candidate Steiner trees, each with balanced sink distances
(Fig. 3b-d).  This example prints the merging segments and draws each
candidate tree.

Run with::

    python examples/dme_candidates.py
"""

from repro.dme import (
    balanced_bipartition_topology,
    compute_merging_regions,
    generate_candidates,
)
from repro.geometry import Point
from repro.grid import RoutingGrid


SINKS = [Point(3, 3), Point(13, 4), Point(4, 12), Point(14, 13)]


def show_merging_segments() -> None:
    """Fig. 3(a): the merging segments of the BB topology."""
    topology = balanced_bipartition_topology(SINKS)
    compute_merging_regions(topology)
    print("Merging segments (rotated half-unit rectangles):")
    index = 0
    for node in topology.walk():
        if node.is_leaf():
            continue
        index += 1
        region = node.merge_region
        on_grid = list(region.grid_points())
        print(
            f"  m{index}: TRR u=[{region.ulo},{region.uhi}] "
            f"v=[{region.vlo},{region.vhi}], delay {node.delay_h / 2:.1f} "
            f"grid units, {len(on_grid)} on-grid points"
        )


def draw(tree, grid) -> str:
    """ASCII sketch of one embedded candidate."""
    rows = [["."] * grid.width for _ in range(grid.height)]
    for edge in tree.edges():
        # Sketch the L-route between the embedded endpoints.
        a, b = edge.parent, edge.child
        x = a.x
        step = 1 if b.x >= a.x else -1
        for xx in range(a.x, b.x + step, step):
            rows[a.y][xx] = "+"
        step = 1 if b.y >= a.y else -1
        for yy in range(a.y, b.y + step, step):
            rows[yy][b.x] = "+"
    for node in tree.root.walk():
        if not node.is_leaf():
            rows[node.position.y][node.position.x] = "m"
    for sink, pos in tree.sink_positions().items():
        rows[pos.y][pos.x] = str(sink + 1)
    rows[tree.root_position.y][tree.root_position.x] = "R"
    return "\n".join("".join(r) for r in rows)


def main() -> None:
    grid = RoutingGrid(18, 18)
    show_merging_segments()

    candidates = generate_candidates(grid, 0, SINKS, k=4)
    print(f"\n{len(candidates)} distinct candidate trees "
          f"(sorted by estimated mismatch, then wirelength):\n")
    for i, tree in enumerate(candidates):
        lengths = tree.full_path_lengths()
        print(
            f"Candidate {i}: root {tree.root_position}, "
            f"sink path lengths {sorted(lengths.values())}, "
            f"mismatch dL = {tree.mismatch()}, "
            f"wirelength {tree.total_estimated_length()}"
        )
        print(draw(tree, grid))
        print()


if __name__ == "__main__":
    main()
