"""Routing-grid substrate.

The control layer is discretised into a uniform grid whose pitch already
encodes the design rules (minimum channel width plus minimum spacing), as
in Section 4.1 of the paper: two routed paths that occupy distinct cells
automatically satisfy the spacing rule, so the routers only need to keep
paths from *sharing* cells.

* :class:`RoutingGrid` — chip extents plus the static obstacle map.
* :class:`Occupancy` — a dynamic per-net overlay used by the negotiation
  router and the rip-up loop to track which net occupies each cell.
"""

from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy

__all__ = ["RoutingGrid", "Occupancy", "FREE"]
