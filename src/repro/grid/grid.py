"""The routing grid and its static obstacle map."""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.geometry.point import Point, cell_point
from repro.geometry.rect import Rect


class RoutingGrid:
    """A ``layers x width x height`` uniform routing grid with obstacles.

    Cells are addressed by :class:`~repro.geometry.point.Point` with
    ``0 <= x < width`` and ``0 <= y < height`` (layer 0), or by
    :class:`~repro.geometry.point.Point3` ``(x, y, z)`` with ``0 < z <
    layers`` for upper layers.  The obstacle map is the ``ObsMap`` of
    Algorithm 1 in the paper, generalised with a layer axis: a flat
    ``uint8`` array indexed by ``z * width * height + y * width + x``,
    shared with the search kernels as an ndarray so blocked-mask
    composition stays at C speed.  The default single-layer grid is the
    exact degenerate case — ids, masks and every behaviour are
    unchanged from the planar substrate.

    Vertical (via) moves between layer ``z`` and ``z + 1`` are allowed
    only where the planar *via-permission mask* is set (default:
    everywhere); :meth:`set_via_blocked` carves via keep-outs.  A via
    step costs ``via_cost`` in search g-scores and contributes
    ``via_length`` channel units to length accounting.
    """

    def __init__(
        self,
        width: int,
        height: int,
        layers: int = 1,
        *,
        via_cost: int = 1,
        via_length: int = 1,
    ) -> None:
        if width <= 0 or height <= 0 or layers <= 0:
            raise ValueError("grid dimensions must be positive")
        if via_cost < 1 or via_length < 1:
            raise ValueError("via_cost and via_length must be at least 1")
        self.width = width
        self.height = height
        self.layers = layers
        self.plane = width * height
        self.size = width * height * layers
        self.via_cost = via_cost
        self.via_length = via_length
        self._obstacles = np.zeros(self.size, dtype=np.uint8)
        # Planar via-permission mask: 1 = a via stack may pass through
        # column (x, y).  Irrelevant (and all-ones) on 1-layer grids.
        self._via_ok = np.ones(self.plane, dtype=np.uint8)
        # Bumped on every obstacle mutation; SpaceCache compares it to
        # detect a stale fused mask (grids rarely change mid-run, but
        # fault injection does exactly that).
        self._version = 0

    # -- indexing ---------------------------------------------------------

    def index(self, p: Point) -> int:
        """Return the flat array index of cell ``p`` (no bounds check).

        Accepts mixed arities: a plain ``(x, y)`` tuple is a layer-0
        cell, an ``(x, y, z)`` tuple addresses layer ``z``.
        """
        if len(p) == 3:
            return p[2] * self.plane + p[1] * self.width + p[0]
        return p[1] * self.width + p[0]

    def point(self, index: int) -> Point:
        """Return the cell of flat array index ``index``.

        Layer-0 ids materialise as plain :class:`Point`, upper-layer
        ids as :class:`~repro.geometry.point.Point3` — the canonical
        mixed-arity cell rule.
        """
        if index < self.plane:
            return Point(index % self.width, index // self.width)
        z, rem = divmod(index, self.plane)
        return cell_point(rem % self.width, rem // self.width, z)

    def in_bounds(self, p: Point) -> bool:
        """Return True when ``p`` lies on the chip (any layer)."""
        if not (0 <= p[0] < self.width and 0 <= p[1] < self.height):
            return False
        z = p[2] if len(p) == 3 else 0
        return 0 <= z < self.layers

    # -- obstacles --------------------------------------------------------

    def is_obstacle(self, p: Point) -> bool:
        """Return True when cell ``p`` is statically blocked."""
        return bool(self._obstacles[self.index(p)])

    def is_free(self, p: Point) -> bool:
        """Return True when ``p`` is on-chip and not an obstacle."""
        return self.in_bounds(p) and not self._obstacles[self.index(p)]

    def set_obstacle(self, p: Point, blocked: bool = True) -> None:
        """Mark or clear a single obstacle cell."""
        if not self.in_bounds(p):
            raise ValueError(
                f"cell {p} is outside the "
                f"{self.layers}x{self.width}x{self.height} grid"
            )
        self._obstacles[self.index(p)] = 1 if blocked else 0
        self._version += 1

    def add_obstacles(self, cells: Iterable[Point]) -> None:
        """Mark every cell in ``cells`` as blocked."""
        for p in cells:
            self.set_obstacle(p, True)

    def add_rect_obstacle(self, rect: Rect) -> None:
        """Block every cell of ``rect`` (clipped to the chip, layer 0)."""
        clipped = rect.intersect(self.extent())
        if clipped is not None:
            self.add_obstacles(clipped.cells())

    def obstacle_mask(self) -> "np.ndarray":
        """Return the live flat ``uint8`` obstacle mask (``1`` = blocked).

        Indexed by :meth:`index` cell ids.  This is the seed layer of a
        :class:`~repro.routing.core.space.SearchSpace` blocked-mask;
        callers must copy before mutating.
        """
        return self._obstacles

    def obstacle_version(self) -> int:
        """Return a counter that changes whenever the obstacle map does.

        :class:`~repro.routing.core.space.SpaceCache` compares it to
        detect that a cached fused mask went stale because the *static*
        layer moved underneath it (mid-run fault injection does this).
        """
        return self._version

    def obstacle_count(self) -> int:
        """Return the number of blocked cells."""
        return int(self._obstacles.sum())

    def obstacle_cells(self) -> Iterator[Point]:
        """Yield every blocked cell."""
        for i in np.flatnonzero(self._obstacles).tolist():
            yield self.point(i)

    # -- vias -------------------------------------------------------------

    def via_mask(self) -> "np.ndarray":
        """Return the live planar ``uint8`` via-permission mask (``1`` = ok)."""
        return self._via_ok

    def via_allowed(self, p: Point) -> bool:
        """Return True when a via stack may pass through column ``(x, y)``."""
        return bool(self._via_ok[p[1] * self.width + p[0]])

    def set_via_blocked(self, p: Point, blocked: bool = True) -> None:
        """Forbid (or re-allow) vias through the planar column ``(x, y)``."""
        if not (0 <= p[0] < self.width and 0 <= p[1] < self.height):
            raise ValueError(
                f"column {p} is outside the {self.width}x{self.height} plane"
            )
        self._via_ok[p[1] * self.width + p[0]] = 0 if blocked else 1
        self._version += 1

    def blocked_via_sites(self) -> List[Point]:
        """Return the planar columns whose via permission is revoked."""
        width = self.width
        return [
            Point(i % width, i // width)
            for i in np.flatnonzero(self._via_ok == 0).tolist()
        ]

    # -- geometry helpers --------------------------------------------------

    def extent(self) -> Rect:
        """Return the chip extent as an inclusive rectangle (one layer)."""
        return Rect(0, 0, self.width - 1, self.height - 1)

    def free_neighbors(self, p: Point) -> Iterator[Point]:
        """Yield the on-chip, unblocked 4-neighbours of ``p`` (same layer)."""
        for q in p.neighbors4():
            if self.is_free(q):
                yield q

    def boundary_cells(self) -> List[Point]:
        """Return the layer-0 boundary cells in clockwise order from (0, 0)."""
        cells: List[Point] = []
        w, h = self.width, self.height
        cells.extend(Point(x, 0) for x in range(w))
        cells.extend(Point(w - 1, y) for y in range(1, h))
        if h > 1:
            cells.extend(Point(x, h - 1) for x in range(w - 2, -1, -1))
        if w > 1:
            cells.extend(Point(0, y) for y in range(h - 2, 0, -1))
        return cells

    def is_boundary(self, p: Point) -> bool:
        """Return True when ``p`` lies on the chip boundary."""
        return self.in_bounds(p) and (
            p[0] == 0 or p[1] == 0 or p[0] == self.width - 1 or p[1] == self.height - 1
        )

    def plane_grid(self) -> "RoutingGrid":
        """Return the layer-0 planar restriction of this grid.

        Escape routing is a layer-0 subproblem — control pins live on
        the chip surface, so its planar solvers run on this view and
        upper-layer channels never collide with escape paths.  Returns
        ``self`` (no copy) for single-layer grids, so the planar flow
        is untouched.
        """
        if self.layers == 1:
            return self
        g = RoutingGrid(self.width, self.height)
        g._obstacles = self._obstacles[: self.plane].copy()
        g._version = self._version
        return g

    def copy(self) -> "RoutingGrid":
        """Return an independent copy (obstacles, vias and version included).

        The mutation counter travels with the copy: a grid copied at
        version ``n`` must never alias a :class:`SpaceCache` generation
        built for a *different* obstacle map at the same counter value.
        """
        g = RoutingGrid(
            self.width,
            self.height,
            self.layers,
            via_cost=self.via_cost,
            via_length=self.via_length,
        )
        g._obstacles = self._obstacles.copy()
        g._via_ok = self._via_ok.copy()
        g._version = self._version
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.width}x{self.height}"
        if self.layers > 1:
            label = f"{self.layers}x" + label
        return f"RoutingGrid({label}, {self.obstacle_count()} obstacles)"
