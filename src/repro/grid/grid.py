"""The routing grid and its static obstacle map."""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class RoutingGrid:
    """A ``width x height`` uniform routing grid with static obstacles.

    Cells are addressed by :class:`~repro.geometry.point.Point` with
    ``0 <= x < width`` and ``0 <= y < height``.  The obstacle map is the
    ``ObsMap`` of Algorithm 1 in the paper: a flat ``uint8`` array
    indexed by ``y * width + x``, shared with the search kernels as an
    ndarray so blocked-mask composition stays at C speed.
    """

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("grid dimensions must be positive")
        self.width = width
        self.height = height
        self._obstacles = np.zeros(width * height, dtype=np.uint8)
        # Bumped on every obstacle mutation; SpaceCache compares it to
        # detect a stale fused mask (grids rarely change mid-run, but
        # fault injection does exactly that).
        self._version = 0

    # -- indexing ---------------------------------------------------------

    def index(self, p: Point) -> int:
        """Return the flat array index of cell ``p`` (no bounds check)."""
        return p[1] * self.width + p[0]

    def point(self, index: int) -> Point:
        """Return the cell of flat array index ``index``."""
        return Point(index % self.width, index // self.width)

    def in_bounds(self, p: Point) -> bool:
        """Return True when ``p`` lies on the chip."""
        return 0 <= p[0] < self.width and 0 <= p[1] < self.height

    # -- obstacles --------------------------------------------------------

    def is_obstacle(self, p: Point) -> bool:
        """Return True when cell ``p`` is statically blocked."""
        return bool(self._obstacles[p[1] * self.width + p[0]])

    def is_free(self, p: Point) -> bool:
        """Return True when ``p`` is on-chip and not an obstacle."""
        return self.in_bounds(p) and not self._obstacles[p[1] * self.width + p[0]]

    def set_obstacle(self, p: Point, blocked: bool = True) -> None:
        """Mark or clear a single obstacle cell."""
        if not self.in_bounds(p):
            raise ValueError(f"cell {p} is outside the {self.width}x{self.height} grid")
        self._obstacles[p[1] * self.width + p[0]] = 1 if blocked else 0
        self._version += 1

    def add_obstacles(self, cells: Iterable[Point]) -> None:
        """Mark every cell in ``cells`` as blocked."""
        for p in cells:
            self.set_obstacle(p, True)

    def add_rect_obstacle(self, rect: Rect) -> None:
        """Block every cell of ``rect`` (clipped to the chip)."""
        clipped = rect.intersect(self.extent())
        if clipped is not None:
            self.add_obstacles(clipped.cells())

    def obstacle_mask(self) -> "np.ndarray":
        """Return the live flat ``uint8`` obstacle mask (``1`` = blocked).

        Indexed by :meth:`index` cell ids.  This is the seed layer of a
        :class:`~repro.routing.core.space.SearchSpace` blocked-mask;
        callers must copy before mutating.
        """
        return self._obstacles

    def obstacle_version(self) -> int:
        """Return a counter that changes whenever the obstacle map does.

        :class:`~repro.routing.core.space.SpaceCache` compares it to
        detect that a cached fused mask went stale because the *static*
        layer moved underneath it (mid-run fault injection does this).
        """
        return self._version

    def obstacle_count(self) -> int:
        """Return the number of blocked cells."""
        return int(self._obstacles.sum())

    def obstacle_cells(self) -> Iterator[Point]:
        """Yield every blocked cell."""
        for i in np.flatnonzero(self._obstacles).tolist():
            yield self.point(i)

    # -- geometry helpers --------------------------------------------------

    def extent(self) -> Rect:
        """Return the chip extent as an inclusive rectangle."""
        return Rect(0, 0, self.width - 1, self.height - 1)

    def free_neighbors(self, p: Point) -> Iterator[Point]:
        """Yield the on-chip, unblocked 4-neighbours of ``p``."""
        for q in p.neighbors4():
            if self.is_free(q):
                yield q

    def boundary_cells(self) -> List[Point]:
        """Return the chip-boundary cells in clockwise order from (0, 0)."""
        cells: List[Point] = []
        w, h = self.width, self.height
        cells.extend(Point(x, 0) for x in range(w))
        cells.extend(Point(w - 1, y) for y in range(1, h))
        if h > 1:
            cells.extend(Point(x, h - 1) for x in range(w - 2, -1, -1))
        if w > 1:
            cells.extend(Point(0, y) for y in range(h - 2, 0, -1))
        return cells

    def is_boundary(self, p: Point) -> bool:
        """Return True when ``p`` lies on the chip boundary."""
        return self.in_bounds(p) and (
            p[0] == 0 or p[1] == 0 or p[0] == self.width - 1 or p[1] == self.height - 1
        )

    def copy(self) -> "RoutingGrid":
        """Return an independent copy (obstacles included)."""
        g = RoutingGrid(self.width, self.height)
        g._obstacles = self._obstacles.copy()
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingGrid({self.width}x{self.height}, "
            f"{self.obstacle_count()} obstacles)"
        )
