"""Dynamic per-net cell occupancy on top of a routing grid.

Routed control channels become obstacles for every other net; the rip-up
stages additionally need to know *which* net blocks a cell so that the
blocking paths can be ripped up selectively.  ``Occupancy`` therefore maps
every cell to the integer id of the net occupying it (or :data:`FREE`).

The flat owner array (indexed by ``grid.index`` cell ids) is the single
source of truth; the per-net buckets are an inverted index of cell *ids*
kept alongside it so that releasing a net and overlaying the occupancy
onto a :class:`~repro.routing.core.space.SearchSpace` blocked-mask are
O(cells of that net), not O(grid).  A third view, the ``uint8``
*overlay mask* (1 wherever some bucket holds the cell), is maintained in
lock-step with the buckets so blocked-mask fusion is a single vectorised
``static | overlay`` instead of per-cell byte stores.  ``Point``-based
accessors remain the public face; id-based variants (``*_ids``) serve
the kernel core, which never leaves integer-land mid-search.

Every mutation reports the touched cell ids to the attached
:class:`~repro.routing.core.space.SpaceCache` (when one exists), which
is how the persistent fused mask stays correct without O(grid) rebuilds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Set, Tuple

import numpy as np

from repro.geometry.point import Point, cell_point
from repro.grid.grid import RoutingGrid
from repro.robustness import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.core.space import SpaceCache

FREE = -1
"""Sentinel net id for an unoccupied cell."""

FAULT_NET = -2
"""Pseudo-net id owning physically faulty cells.

Faulty cells (see :mod:`repro.robustness.faultmap`) are mounted into the
occupancy under this id, which makes them flow through every existing
blocked-cell composition for free: :class:`SearchSpace` overlays them as
another net's bucket, escape routing's blocked sets include them, and
the rip-up probes never rip them (``FAULT_NET`` is not in the router's
net table).  It is never reported as a net — result collection iterates
the router's real nets only.
"""


class Occupancy:
    """Tracks which net occupies each grid cell.

    The overlay never includes the grid's static obstacles; callers check
    both :meth:`RoutingGrid.is_free` and :meth:`owner` (or build a fused
    :class:`~repro.routing.core.space.SearchSpace` which composes both).
    """

    def __init__(self, grid: RoutingGrid) -> None:
        self.grid = grid
        size = grid.size
        self._owner = np.full(size, FREE, dtype=np.int32)
        self._cells: Dict[int, Set[int]] = {}
        # Bucket-membership indicator: 1 exactly where some net's bucket
        # holds the cell.  Mirrors every bucket mutation so SearchSpace
        # fusion is one vectorised OR (and stays faithful to the buckets
        # even when chaos injection makes them disagree with the owner
        # array — searches consulted the buckets before this rewrite).
        self._overlay = np.zeros(size, dtype=np.uint8)
        self._cache: "SpaceCache | None" = None

    # -- queries -----------------------------------------------------------

    def owner(self, p: Point) -> int:
        """Return the net id occupying ``p`` or :data:`FREE`."""
        return int(self._owner[self.grid.index(p)])

    def owner_id(self, cid: int) -> int:
        """Return the net id occupying cell id ``cid`` or :data:`FREE`."""
        return int(self._owner[cid])

    def is_free(self, p: Point) -> bool:
        """Return True when no net occupies ``p`` (obstacles not checked)."""
        return int(self._owner[self.grid.index(p)]) == FREE

    def is_routable(self, p: Point, net: int = FREE) -> bool:
        """Return True when ``net`` may enter cell ``p``.

        A cell is routable for a net when it is on-chip, not a static
        obstacle, and either unoccupied or already owned by that same net.
        """
        if not self.grid.is_free(p):
            return False
        owner = int(self._owner[self.grid.index(p)])
        return owner == FREE or owner == net

    # -- cache wiring ------------------------------------------------------

    def space_cache(self) -> "SpaceCache":
        """Return the persistent fused-mask cache for this occupancy.

        Created lazily on first use; all mutators feed its dirty set, so
        the cache's checked-out masks are always equivalent to a freshly
        built :class:`~repro.routing.core.space.SearchSpace`.
        """
        if self._cache is None:
            from repro.routing.core.space import SpaceCache

            self._cache = SpaceCache(self.grid, self)
        return self._cache

    def _mark_dirty(self, cids: Iterable[int]) -> None:
        if self._cache is not None:
            self._cache.mark_dirty(cids)

    def _mark_all_dirty(self) -> None:
        if self._cache is not None:
            self._cache.mark_all_dirty()

    # -- mutation ----------------------------------------------------------

    def occupy(self, cells: Iterable[Point], net: int) -> None:
        """Assign every cell in ``cells`` to ``net``.

        Raises :class:`ValueError` when a cell is already owned by a
        different net — the routers must never create crossings.
        """
        self.occupy_ids((self.grid.index(p) for p in cells), net)

    def occupy_ids(self, cids: Iterable[int], net: int) -> None:
        """Assign every cell id in ``cids`` to ``net`` (see :meth:`occupy`)."""
        if net == FREE:
            raise ValueError("cannot occupy cells with the FREE sentinel id")
        cid_list = list(cids)
        width = self.grid.width
        bucket = self._cells.setdefault(net, set())
        if cid_list:
            arr = np.asarray(cid_list, dtype=np.int64)
            current = self._owner[arr]
            conflict = (current != FREE) & (current != net)
            if conflict.any():
                # Mirror the pre-vectorised loop exactly: cells before
                # the first conflicting one (in input order) are already
                # assigned when the error propagates.
                k = int(np.argmax(conflict))
                prefix = arr[:k]
                self._owner[prefix] = net
                self._overlay[prefix] = 1
                bucket.update(cid_list[:k])
                self._mark_dirty(cid_list[:k])
                if not bucket:
                    del self._cells[net]
                bad = cid_list[k]
                raise ValueError(
                    f"cell {self.grid.point(bad)} already occupied by net "
                    f"{int(current[k])}"
                )
            self._owner[arr] = net
            self._overlay[arr] = 1
            bucket.update(cid_list)
            self._mark_dirty(cid_list)
        if bucket and faults.fires("occupancy_corruption"):
            # Chaos-suite hook: orphan one owner entry (owner array says
            # occupied, bucket disagrees) so the between-stage consistency
            # check has something real to detect and repair.  The dropped
            # cell is the (x, y, z)-minimal one, as it was when buckets
            # held Points — keyed, not raw id order (which would be
            # (z, y, x)).
            height = self.grid.height
            plane = self.grid.plane
            dropped = min(
                bucket,
                key=lambda c: (c % width, (c // width) % height, c // plane),
            )
            bucket.discard(dropped)
            self._overlay[dropped] = 0
            self._mark_dirty((dropped,))
        if not bucket:
            del self._cells[net]

    def release(self, net: int) -> Set[Point]:
        """Free every cell of ``net`` and return the released cells."""
        point = self.grid.point
        return {point(cid) for cid in self.release_ids(net)}

    def release_ids(self, net: int) -> Set[int]:
        """Free every cell of ``net`` and return the released cell ids."""
        cids = self._cells.pop(net, set())
        if cids:
            arr = np.fromiter(cids, dtype=np.int64, count=len(cids))
            self._owner[arr] = FREE
            self._overlay[arr] = 0
            self._mark_dirty(cids)
        return cids

    def release_cells(self, cells: Iterable[Point]) -> None:
        """Free specific cells regardless of owner."""
        index = self.grid.index
        self.release_cell_ids(index(p) for p in cells)

    def release_cell_ids(self, cids: Iterable[int]) -> None:
        """Free specific cell ids regardless of owner.

        Buckets that end up empty are dropped entirely — negotiation
        rips thousands of rounds through here, and leaking dead net keys
        would grow every bucket iteration (`export_state`,
        `find_inconsistencies`, `id_buckets`) for the rest of the run.
        """
        cid_list = list(cids)
        if not cid_list:
            return
        cells = self._cells
        arr = np.asarray(cid_list, dtype=np.int64)
        owners = self._owner[arr].tolist()
        touched: List[int] = []
        emptied: Set[int] = set()
        for cid, net in zip(cid_list, owners):
            if net != FREE:
                touched.append(cid)
                bucket = cells.get(net)
                if bucket is not None:
                    bucket.discard(cid)
                    if not bucket:
                        emptied.add(net)
        for net in emptied:
            bucket = cells.get(net)
            if bucket is not None and not bucket:
                del cells[net]
        if touched:
            tarr = np.asarray(touched, dtype=np.int64)
            self._owner[tarr] = FREE
            self._overlay[tarr] = 0
            self._mark_dirty(touched)

    # -- bulk views --------------------------------------------------------

    def cells_of(self, net: int) -> Set[Point]:
        """Return (a copy of) the cells currently owned by ``net``."""
        point = self.grid.point
        return {point(cid) for cid in self._cells.get(net, ())}

    def cells_of_ids(self, net: int) -> Set[int]:
        """Return (a copy of) the cell ids currently owned by ``net``."""
        return set(self._cells.get(net, ()))

    def bucket_ids(self, net: int) -> "Set[int] | None":
        """Return the *live* cell-id bucket of ``net``, or None.

        Zero-copy companion to :meth:`cells_of_ids` for the blocked-mask
        fusion hot path; callers must not mutate the returned set.
        """
        return self._cells.get(net)

    def id_buckets(self) -> Iterator[Tuple[int, Set[int]]]:
        """Yield ``(net, cell-id bucket)`` for every non-empty net.

        The buckets are the live sets — callers must not mutate them.
        This is the sparse overlay source for
        :class:`~repro.routing.core.space.SearchSpace`.
        """
        for net, cids in self._cells.items():
            if cids:
                yield net, cids

    def overlay_mask(self) -> "np.ndarray":
        """Return the live ``uint8`` bucket-membership mask.

        1 exactly where some net's bucket holds the cell.  This is the
        vectorised fusion source for
        :class:`~repro.routing.core.space.SearchSpace`; callers must not
        mutate it.
        """
        return self._overlay

    def owner_array(self) -> "np.ndarray":
        """Return the live ``int32`` owner array (:data:`FREE` = none).

        Read-only companion to :meth:`overlay_mask` for vectorised
        consumers; callers must not mutate it.
        """
        return self._owner

    def nets(self) -> Iterator[int]:
        """Yield the ids of nets that currently own at least one cell."""
        for net, cells in self._cells.items():
            if cells:
                yield net

    def occupied_count(self) -> int:
        """Return the total number of occupied cells."""
        return sum(len(c) for c in self._cells.values())

    # -- snapshots and consistency -----------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Return a JSON-serialisable snapshot of the full overlay state.

        Both views are exported — the per-net buckets *and* the owner
        array (sparsely, as ``[x, y, net]`` triples) — so a snapshot is
        faithful even when the two disagree: restoring a corrupted
        overlay reproduces the same :meth:`find_inconsistencies` report,
        and a snapshot taken after :meth:`repair` restores clean.

        One vectorised pass over the owner array; coordinates come from
        ``divmod`` arithmetic, never from per-cell ``Point``/
        ``grid.index`` round-trips.
        """
        width = self.grid.width
        height = self.grid.height
        plane = self.grid.plane
        occupied = np.flatnonzero(self._owner != FREE)
        xs = (occupied % width).tolist()
        ys = ((occupied // width) % height).tolist()
        zs = (occupied // plane).tolist()
        owners = self._owner[occupied].tolist()

        def _cell_doc(cid: int) -> List[int]:
            # Layer-0 cells export as [x, y], upper layers as [x, y, z]
            # — the canonical mixed-arity rule, so single-layer
            # snapshots are byte-identical to the planar format.
            if cid < plane:
                return [cid % width, cid // width]
            return [cid % width, (cid // width) % height, cid // plane]

        return {
            "nets": {
                str(net): sorted(_cell_doc(cid) for cid in cids)
                for net, cids in self._cells.items()
                if cids
            },
            "owner_cells": [
                [x, y, owner] if z == 0 else [x, y, z, owner]
                for x, y, z, owner in zip(xs, ys, zs, owners)
            ],
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Replaces the whole overlay; cells outside the grid raise
        :class:`ValueError` (the snapshot belongs to a different grid).
        """
        nets = state.get("nets", {})
        owner_cells = state.get("owner_cells", [])
        width = self.grid.width
        height = self.grid.height
        layers = self.grid.layers
        plane = self.grid.plane
        self._owner = np.full(self.grid.size, FREE, dtype=np.int32)
        self._cells = {}

        def _cid(x: int, y: int, z: int) -> int:
            if not (
                0 <= x < width and 0 <= y < height and 0 <= z < layers
            ):
                raise ValueError(
                    f"snapshot cell {cell_point(x, y, z)} is off-grid"
                )
            return z * plane + y * width + x

        for entry in owner_cells:  # type: ignore[union-attr]
            if len(entry) == 4:
                x, y, z, owner = entry
            else:
                (x, y, owner), z = entry, 0
            self._owner[_cid(int(x), int(y), int(z))] = int(owner)
        for net_key, cells in nets.items():  # type: ignore[union-attr]
            bucket: Set[int] = set()
            for cell in cells:
                z = int(cell[2]) if len(cell) == 3 else 0
                bucket.add(_cid(int(cell[0]), int(cell[1]), z))
            self._cells[int(net_key)] = bucket
        self._rebuild_overlay()
        self._mark_all_dirty()

    def _rebuild_overlay(self) -> None:
        """Reconstitute the overlay mask from the buckets (O(occupied))."""
        overlay = np.zeros(self.grid.size, dtype=np.uint8)
        for cids in self._cells.values():
            if cids:
                overlay[np.fromiter(cids, dtype=np.int64, count=len(cids))] = 1
        self._overlay = overlay

    def find_inconsistencies(self) -> List[Point]:
        """Return cells where the owner array and net buckets disagree.

        An empty list means the two views of the occupancy agree; any
        entry is evidence of corrupted bookkeeping (e.g. a net's bucket
        lost a cell the owner array still assigns to it, or vice versa).

        One vectorised owner-array comparison plus one pass over the
        buckets — O(grid + occupied), no per-cell object construction.
        """
        point = self.grid.point
        expected = np.full(self._owner.shape[0], FREE, dtype=np.int32)
        for net, cids in self._cells.items():
            if cids:
                expected[np.fromiter(cids, dtype=np.int64, count=len(cids))] = (
                    net
                )
        bad = np.flatnonzero(expected != self._owner)
        return [point(int(cid)) for cid in bad]

    def repair(self) -> List[Point]:
        """Rebuild the net buckets from the owner array; return fixes.

        The owner array is the source of truth (it is what routability
        checks consult), so repair reconstitutes every net's cell bucket
        from it.  Returns the cells whose bookkeeping changed.
        """
        bad = self.find_inconsistencies()
        if bad:
            rebuilt: Dict[int, Set[int]] = {}
            occupied = np.flatnonzero(self._owner != FREE)
            owners = self._owner[occupied].tolist()
            for cid, owner in zip(occupied.tolist(), owners):
                rebuilt.setdefault(owner, set()).add(cid)
            self._cells = rebuilt
            self._rebuild_overlay()
            self._mark_all_dirty()
        return bad
