"""Dynamic per-net cell occupancy on top of a routing grid.

Routed control channels become obstacles for every other net; the rip-up
stages additionally need to know *which* net blocks a cell so that the
blocking paths can be ripped up selectively.  ``Occupancy`` therefore maps
every cell to the integer id of the net occupying it (or :data:`FREE`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness import faults

FREE = -1
"""Sentinel net id for an unoccupied cell."""


class Occupancy:
    """Tracks which net occupies each grid cell.

    The overlay never includes the grid's static obstacles; callers check
    both :meth:`RoutingGrid.is_free` and :meth:`owner`.
    """

    def __init__(self, grid: RoutingGrid) -> None:
        self.grid = grid
        self._owner: List[int] = [FREE] * (grid.width * grid.height)
        self._cells: Dict[int, Set[Point]] = {}

    def owner(self, p: Point) -> int:
        """Return the net id occupying ``p`` or :data:`FREE`."""
        return self._owner[self.grid.index(p)]

    def is_free(self, p: Point) -> bool:
        """Return True when no net occupies ``p`` (obstacles not checked)."""
        return self._owner[self.grid.index(p)] == FREE

    def is_routable(self, p: Point, net: int = FREE) -> bool:
        """Return True when ``net`` may enter cell ``p``.

        A cell is routable for a net when it is on-chip, not a static
        obstacle, and either unoccupied or already owned by that same net.
        """
        if not self.grid.is_free(p):
            return False
        owner = self._owner[self.grid.index(p)]
        return owner == FREE or owner == net

    def occupy(self, cells: Iterable[Point], net: int) -> None:
        """Assign every cell in ``cells`` to ``net``.

        Raises :class:`ValueError` when a cell is already owned by a
        different net — the routers must never create crossings.
        """
        if net == FREE:
            raise ValueError("cannot occupy cells with the FREE sentinel id")
        bucket = self._cells.setdefault(net, set())
        for p in cells:
            idx = self.grid.index(p)
            current = self._owner[idx]
            if current != FREE and current != net:
                raise ValueError(f"cell {p} already occupied by net {current}")
            self._owner[idx] = net
            bucket.add(p)
        if bucket and faults.fires("occupancy_corruption"):
            # Chaos-suite hook: orphan one owner entry (owner array says
            # occupied, bucket disagrees) so the between-stage consistency
            # check has something real to detect and repair.
            bucket.discard(min(bucket))

    def release(self, net: int) -> Set[Point]:
        """Free every cell of ``net`` and return the released cells."""
        cells = self._cells.pop(net, set())
        for p in cells:
            self._owner[self.grid.index(p)] = FREE
        return cells

    def release_cells(self, cells: Iterable[Point]) -> None:
        """Free specific cells regardless of owner."""
        for p in cells:
            idx = self.grid.index(p)
            owner = self._owner[idx]
            if owner != FREE:
                self._owner[idx] = FREE
                self._cells.get(owner, set()).discard(p)

    def cells_of(self, net: int) -> Set[Point]:
        """Return (a copy of) the cells currently owned by ``net``."""
        return set(self._cells.get(net, set()))

    def nets(self) -> Iterator[int]:
        """Yield the ids of nets that currently own at least one cell."""
        for net, cells in self._cells.items():
            if cells:
                yield net

    def occupied_count(self) -> int:
        """Return the total number of occupied cells."""
        return sum(len(c) for c in self._cells.values())

    def export_state(self) -> Dict[str, object]:
        """Return a JSON-serialisable snapshot of the full overlay state.

        Both views are exported — the per-net buckets *and* the owner
        array (sparsely, as ``[x, y, net]`` triples) — so a snapshot is
        faithful even when the two disagree: restoring a corrupted
        overlay reproduces the same :meth:`find_inconsistencies` report,
        and a snapshot taken after :meth:`repair` restores clean.
        """
        owner_cells: List[List[int]] = []
        for y in range(self.grid.height):
            for x in range(self.grid.width):
                owner = self._owner[self.grid.index(Point(x, y))]
                if owner != FREE:
                    owner_cells.append([x, y, owner])
        return {
            "nets": {
                str(net): sorted([p.x, p.y] for p in cells)
                for net, cells in self._cells.items()
                if cells
            },
            "owner_cells": owner_cells,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Replaces the whole overlay; cells outside the grid raise
        :class:`ValueError` (the snapshot belongs to a different grid).
        """
        nets = state.get("nets", {})
        owner_cells = state.get("owner_cells", [])
        self._owner = [FREE] * (self.grid.width * self.grid.height)
        self._cells = {}
        for x, y, owner in owner_cells:  # type: ignore[misc]
            p = Point(int(x), int(y))
            if not self.grid.in_bounds(p):
                raise ValueError(f"snapshot cell {p} is off-grid")
            self._owner[self.grid.index(p)] = int(owner)
        for net_key, cells in nets.items():  # type: ignore[union-attr]
            bucket: Set[Point] = set()
            for x, y in cells:
                p = Point(int(x), int(y))
                if not self.grid.in_bounds(p):
                    raise ValueError(f"snapshot cell {p} is off-grid")
                bucket.add(p)
            self._cells[int(net_key)] = bucket

    def find_inconsistencies(self) -> List[Point]:
        """Return cells where the owner array and net buckets disagree.

        An empty list means the two views of the occupancy agree; any
        entry is evidence of corrupted bookkeeping (e.g. a net's bucket
        lost a cell the owner array still assigns to it, or vice versa).
        """
        bad: List[Point] = []
        from_buckets: Dict[Point, int] = {}
        for net, cells in self._cells.items():
            for p in cells:
                from_buckets[p] = net
        for y in range(self.grid.height):
            for x in range(self.grid.width):
                p = Point(x, y)
                owner = self._owner[self.grid.index(p)]
                if from_buckets.get(p, FREE) != owner:
                    bad.append(p)
        return bad

    def repair(self) -> List[Point]:
        """Rebuild the net buckets from the owner array; return fixes.

        The owner array is the source of truth (it is what routability
        checks consult), so repair reconstitutes every net's cell bucket
        from it.  Returns the cells whose bookkeeping changed.
        """
        bad = self.find_inconsistencies()
        if bad:
            rebuilt: Dict[int, Set[Point]] = {}
            for y in range(self.grid.height):
                for x in range(self.grid.width):
                    p = Point(x, y)
                    owner = self._owner[self.grid.index(p)]
                    if owner != FREE:
                        rebuilt.setdefault(owner, set()).add(p)
            self._cells = rebuilt
        return bad
