"""Dynamic per-net cell occupancy on top of a routing grid.

Routed control channels become obstacles for every other net; the rip-up
stages additionally need to know *which* net blocks a cell so that the
blocking paths can be ripped up selectively.  ``Occupancy`` therefore maps
every cell to the integer id of the net occupying it (or :data:`FREE`).

The flat owner array (indexed by ``grid.index`` cell ids) is the single
source of truth; the per-net buckets are an inverted index of cell *ids*
kept alongside it so that releasing a net and overlaying the occupancy
onto a :class:`~repro.routing.core.space.SearchSpace` blocked-mask are
O(cells of that net), not O(grid).  ``Point``-based accessors remain the
public face; id-based variants (``*_ids``) serve the kernel core, which
never leaves integer-land mid-search.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness import faults

FREE = -1
"""Sentinel net id for an unoccupied cell."""

FAULT_NET = -2
"""Pseudo-net id owning physically faulty cells.

Faulty cells (see :mod:`repro.robustness.faultmap`) are mounted into the
occupancy under this id, which makes them flow through every existing
blocked-cell composition for free: :class:`SearchSpace` overlays them as
another net's bucket, escape routing's blocked sets include them, and
the rip-up probes never rip them (``FAULT_NET`` is not in the router's
net table).  It is never reported as a net — result collection iterates
the router's real nets only.
"""


class Occupancy:
    """Tracks which net occupies each grid cell.

    The overlay never includes the grid's static obstacles; callers check
    both :meth:`RoutingGrid.is_free` and :meth:`owner` (or build a fused
    :class:`~repro.routing.core.space.SearchSpace` which composes both).
    """

    def __init__(self, grid: RoutingGrid) -> None:
        self.grid = grid
        self._owner: List[int] = [FREE] * (grid.width * grid.height)
        self._cells: Dict[int, Set[int]] = {}

    # -- queries -----------------------------------------------------------

    def owner(self, p: Point) -> int:
        """Return the net id occupying ``p`` or :data:`FREE`."""
        return self._owner[self.grid.index(p)]

    def owner_id(self, cid: int) -> int:
        """Return the net id occupying cell id ``cid`` or :data:`FREE`."""
        return self._owner[cid]

    def is_free(self, p: Point) -> bool:
        """Return True when no net occupies ``p`` (obstacles not checked)."""
        return self._owner[self.grid.index(p)] == FREE

    def is_routable(self, p: Point, net: int = FREE) -> bool:
        """Return True when ``net`` may enter cell ``p``.

        A cell is routable for a net when it is on-chip, not a static
        obstacle, and either unoccupied or already owned by that same net.
        """
        if not self.grid.is_free(p):
            return False
        owner = self._owner[self.grid.index(p)]
        return owner == FREE or owner == net

    # -- mutation ----------------------------------------------------------

    def occupy(self, cells: Iterable[Point], net: int) -> None:
        """Assign every cell in ``cells`` to ``net``.

        Raises :class:`ValueError` when a cell is already owned by a
        different net — the routers must never create crossings.
        """
        self.occupy_ids((self.grid.index(p) for p in cells), net)

    def occupy_ids(self, cids: Iterable[int], net: int) -> None:
        """Assign every cell id in ``cids`` to ``net`` (see :meth:`occupy`)."""
        if net == FREE:
            raise ValueError("cannot occupy cells with the FREE sentinel id")
        owner = self._owner
        width = self.grid.width
        bucket = self._cells.setdefault(net, set())
        for cid in cids:
            current = owner[cid]
            if current != FREE and current != net:
                y, x = divmod(cid, width)
                raise ValueError(
                    f"cell {Point(x, y)} already occupied by net {current}"
                )
            owner[cid] = net
            bucket.add(cid)
        if bucket and faults.fires("occupancy_corruption"):
            # Chaos-suite hook: orphan one owner entry (owner array says
            # occupied, bucket disagrees) so the between-stage consistency
            # check has something real to detect and repair.  The dropped
            # cell is the (x, y)-minimal one, as it was when buckets held
            # Points — keyed, not raw id order (which would be (y, x)).
            bucket.discard(min(bucket, key=lambda c: (c % width, c // width)))

    def release(self, net: int) -> Set[Point]:
        """Free every cell of ``net`` and return the released cells."""
        width = self.grid.width
        return {
            Point(cid % width, cid // width) for cid in self.release_ids(net)
        }

    def release_ids(self, net: int) -> Set[int]:
        """Free every cell of ``net`` and return the released cell ids."""
        cids = self._cells.pop(net, set())
        owner = self._owner
        for cid in cids:
            owner[cid] = FREE
        return cids

    def release_cells(self, cells: Iterable[Point]) -> None:
        """Free specific cells regardless of owner."""
        index = self.grid.index
        self.release_cell_ids(index(p) for p in cells)

    def release_cell_ids(self, cids: Iterable[int]) -> None:
        """Free specific cell ids regardless of owner."""
        owner = self._owner
        for cid in cids:
            net = owner[cid]
            if net != FREE:
                owner[cid] = FREE
                self._cells.get(net, set()).discard(cid)

    # -- bulk views --------------------------------------------------------

    def cells_of(self, net: int) -> Set[Point]:
        """Return (a copy of) the cells currently owned by ``net``."""
        width = self.grid.width
        return {
            Point(cid % width, cid // width)
            for cid in self._cells.get(net, ())
        }

    def cells_of_ids(self, net: int) -> Set[int]:
        """Return (a copy of) the cell ids currently owned by ``net``."""
        return set(self._cells.get(net, ()))

    def id_buckets(self) -> Iterator[Tuple[int, Set[int]]]:
        """Yield ``(net, cell-id bucket)`` for every non-empty net.

        The buckets are the live sets — callers must not mutate them.
        This is the sparse overlay source for
        :class:`~repro.routing.core.space.SearchSpace`.
        """
        for net, cids in self._cells.items():
            if cids:
                yield net, cids

    def nets(self) -> Iterator[int]:
        """Yield the ids of nets that currently own at least one cell."""
        for net, cells in self._cells.items():
            if cells:
                yield net

    def occupied_count(self) -> int:
        """Return the total number of occupied cells."""
        return sum(len(c) for c in self._cells.values())

    # -- snapshots and consistency -----------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Return a JSON-serialisable snapshot of the full overlay state.

        Both views are exported — the per-net buckets *and* the owner
        array (sparsely, as ``[x, y, net]`` triples) — so a snapshot is
        faithful even when the two disagree: restoring a corrupted
        overlay reproduces the same :meth:`find_inconsistencies` report,
        and a snapshot taken after :meth:`repair` restores clean.

        One flat pass over the owner array; coordinates come from
        ``divmod``, never from per-cell ``Point``/``grid.index``
        round-trips.
        """
        width = self.grid.width
        owner_cells: List[List[int]] = []
        for cid, net in enumerate(self._owner):
            if net != FREE:
                y, x = divmod(cid, width)
                owner_cells.append([x, y, net])
        return {
            "nets": {
                str(net): sorted([cid % width, cid // width] for cid in cids)
                for net, cids in self._cells.items()
                if cids
            },
            "owner_cells": owner_cells,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Replaces the whole overlay; cells outside the grid raise
        :class:`ValueError` (the snapshot belongs to a different grid).
        """
        nets = state.get("nets", {})
        owner_cells = state.get("owner_cells", [])
        width = self.grid.width
        height = self.grid.height
        self._owner = [FREE] * (width * height)
        self._cells = {}
        for x, y, owner in owner_cells:  # type: ignore[misc]
            x, y = int(x), int(y)
            if not (0 <= x < width and 0 <= y < height):
                raise ValueError(f"snapshot cell {Point(x, y)} is off-grid")
            self._owner[y * width + x] = int(owner)
        for net_key, cells in nets.items():  # type: ignore[union-attr]
            bucket: Set[int] = set()
            for x, y in cells:
                x, y = int(x), int(y)
                if not (0 <= x < width and 0 <= y < height):
                    raise ValueError(f"snapshot cell {Point(x, y)} is off-grid")
                bucket.add(y * width + x)
            self._cells[int(net_key)] = bucket

    def find_inconsistencies(self) -> List[Point]:
        """Return cells where the owner array and net buckets disagree.

        An empty list means the two views of the occupancy agree; any
        entry is evidence of corrupted bookkeeping (e.g. a net's bucket
        lost a cell the owner array still assigns to it, or vice versa).

        Single flat pass over the owner array plus one pass over the
        buckets — O(grid + occupied), no per-cell object construction.
        """
        width = self.grid.width
        from_buckets: Dict[int, int] = {}
        for net, cids in self._cells.items():
            for cid in cids:
                from_buckets[cid] = net
        bad: List[Point] = []
        for cid, owner in enumerate(self._owner):
            if from_buckets.get(cid, FREE) != owner:
                bad.append(Point(cid % width, cid // width))
        return bad

    def repair(self) -> List[Point]:
        """Rebuild the net buckets from the owner array; return fixes.

        The owner array is the source of truth (it is what routability
        checks consult), so repair reconstitutes every net's cell bucket
        from it.  Returns the cells whose bookkeeping changed.
        """
        bad = self.find_inconsistencies()
        if bad:
            rebuilt: Dict[int, Set[int]] = {}
            for cid, owner in enumerate(self._owner):
                if owner != FREE:
                    rebuilt.setdefault(owner, set()).add(cid)
            self._cells = rebuilt
        return bad
