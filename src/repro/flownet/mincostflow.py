"""Min-cost max-flow via successive shortest paths with potentials.

Designed for the escape-routing networks PACOR builds: sparse, unit-ish
capacities, non-negative arc costs.  With non-negative costs the first
Dijkstra needs no initialisation and node potentials keep all reduced
costs non-negative across augmentations, so every shortest-path search is
a plain Dijkstra with early exit at the sink.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.observability import context as obs

_INF = float("inf")


class MinCostFlow:
    """A directed flow network with integer capacities and costs.

    Arcs are stored as paired forward/residual entries; ``add_arc``
    returns the forward arc id whose flow can be queried after solving.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("network needs at least one node")
        self.n = n_nodes
        self._to: List[int] = []
        self._cap: List[int] = []
        self._cost: List[float] = []
        self._head: List[List[int]] = [[] for _ in range(n_nodes)]

    def add_node(self) -> int:
        """Append a node and return its id."""
        self._head.append([])
        self.n += 1
        return self.n - 1

    def add_arc(self, u: int, v: int, cap: int, cost: float) -> int:
        """Add arc ``u -> v`` and return its id (even ids are forward arcs)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"arc endpoints ({u},{v}) out of range")
        if cap < 0:
            raise ValueError("arc capacity must be non-negative")
        if cost < 0:
            raise ValueError(
                "negative arc costs are not supported by the Dijkstra solver"
            )
        arc_id = len(self._to)
        self._to.append(v)
        self._cap.append(cap)
        self._cost.append(cost)
        self._head[u].append(arc_id)
        # Residual arc.
        self._to.append(u)
        self._cap.append(0)
        self._cost.append(-cost)
        self._head[v].append(arc_id + 1)
        return arc_id

    def flow_on(self, arc_id: int) -> int:
        """Return the flow routed on forward arc ``arc_id``."""
        if arc_id % 2 != 0:
            raise ValueError("flow_on expects a forward arc id")
        return self._cap[arc_id ^ 1]

    def max_flow_min_cost(
        self, source: int, sink: int, max_flow: Optional[int] = None
    ) -> Tuple[int, float]:
        """Send up to ``max_flow`` units from ``source`` to ``sink``.

        Maximises the flow value first and, among maximum flows, minimises
        total cost (each augmentation follows a currently-cheapest path,
        which yields a min-cost flow for every intermediate flow value).

        Returns ``(flow_value, total_cost)``.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        potential = [0.0] * self.n
        flow_value = 0
        total_cost = 0.0
        limit = max_flow if max_flow is not None else float("inf")
        augmentations = 0

        while flow_value < limit:
            dist = [_INF] * self.n
            parent_arc: List[int] = [-1] * self.n
            dist[source] = 0.0
            heap: List[Tuple[float, int]] = [(0.0, source)]
            settled = [False] * self.n
            while heap:
                d, u = heapq.heappop(heap)
                if settled[u]:
                    continue
                settled[u] = True
                if u == sink:
                    break
                for arc_id in self._head[u]:
                    if self._cap[arc_id] <= 0:
                        continue
                    v = self._to[arc_id]
                    if settled[v]:
                        continue
                    nd = d + self._cost[arc_id] + potential[u] - potential[v]
                    if nd < dist[v] - 1e-12:
                        dist[v] = nd
                        parent_arc[v] = arc_id
                        heapq.heappush(heap, (nd, v))
            if not settled[sink]:
                break
            augmentations += 1

            # Update potentials for settled nodes; unsettled keep old ones
            # (standard early-exit variant: use dist[sink] for unreached).
            d_sink = dist[sink]
            for v in range(self.n):
                if dist[v] < _INF:
                    potential[v] += min(dist[v], d_sink)
                else:
                    potential[v] += d_sink

            # Bottleneck along the path.
            bottleneck = limit - flow_value
            v = sink
            while v != source:
                arc_id = parent_arc[v]
                bottleneck = min(bottleneck, self._cap[arc_id])
                v = self._to[arc_id ^ 1]
            # Apply augmentation.
            v = sink
            while v != source:
                arc_id = parent_arc[v]
                self._cap[arc_id] -= bottleneck
                self._cap[arc_id ^ 1] += bottleneck
                total_cost += bottleneck * self._cost[arc_id]
                v = self._to[arc_id ^ 1]
            flow_value += int(bottleneck)
        if augmentations:
            obs.counter("mcf.augmenting_paths").inc(augmentations)
        return flow_value, total_cost
