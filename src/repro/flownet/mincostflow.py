"""Min-cost max-flow via successive shortest paths with potentials.

Designed for the escape-routing networks PACOR builds: sparse, unit-ish
capacities, non-negative arc costs.  With non-negative costs the first
Dijkstra needs no initialisation and node potentials keep all reduced
costs non-negative across augmentations, so every shortest-path search is
a plain Dijkstra with early exit at the sink.

Arcs live in flat numpy arrays (paired forward/residual entries, like a
classic arc-list MCMF) and per-node adjacency is a CSR view built lazily
at solve time: a stable argsort of the arc tail array groups each node's
arcs in insertion order, which keeps relaxation order — and therefore
tie-breaking and the solved flow — identical to the old per-node
adjacency lists.  The per-augmentation potential update is one
vectorised ``minimum`` over the distance array; because ``min(inf,
d_sink) == d_sink`` it reproduces the scalar settled/unsettled split
bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.observability import context as obs

_INF = float("inf")


class MinCostFlow:
    """A directed flow network with integer capacities and costs.

    Arcs are stored as paired forward/residual entries; ``add_arc``
    returns the forward arc id whose flow can be queried after solving.
    ``add_arcs`` appends a whole batch in one shot — network builders
    with hundreds of thousands of arcs should prefer it.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("network needs at least one node")
        self.n = n_nodes
        self._m = 0
        cap0 = 64
        self._to = np.empty(cap0, dtype=np.int64)
        self._tail = np.empty(cap0, dtype=np.int64)
        self._cap = np.empty(cap0, dtype=np.int64)
        self._cost = np.empty(cap0, dtype=np.float64)
        # CSR adjacency, rebuilt on demand when arcs were added.
        self._order: Optional[np.ndarray] = None
        self._indptr: Optional[np.ndarray] = None

    def _reserve(self, extra: int) -> None:
        need = self._m + extra
        if need <= self._to.size:
            return
        new_size = max(need, 2 * self._to.size)
        for name in ("_to", "_tail", "_cap", "_cost"):
            old = getattr(self, name)
            grown = np.empty(new_size, dtype=old.dtype)
            grown[: self._m] = old[: self._m]
            setattr(self, name, grown)

    def add_node(self) -> int:
        """Append a node and return its id."""
        self.n += 1
        self._order = None
        return self.n - 1

    def add_arc(self, u: int, v: int, cap: int, cost: float) -> int:
        """Add arc ``u -> v`` and return its id (even ids are forward arcs)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"arc endpoints ({u},{v}) out of range")
        if cap < 0:
            raise ValueError("arc capacity must be non-negative")
        if cost < 0:
            raise ValueError(
                "negative arc costs are not supported by the Dijkstra solver"
            )
        self._reserve(2)
        m = self._m
        self._to[m] = v
        self._tail[m] = u
        self._cap[m] = cap
        self._cost[m] = cost
        # Residual arc.
        self._to[m + 1] = u
        self._tail[m + 1] = v
        self._cap[m + 1] = 0
        self._cost[m + 1] = -cost
        self._m = m + 2
        self._order = None
        return m

    def add_arcs(
        self,
        us: Sequence[int],
        vs: Sequence[int],
        caps: Sequence[int],
        costs: Sequence[float],
    ) -> np.ndarray:
        """Add a batch of arcs ``us[i] -> vs[i]``; return their forward ids.

        Equivalent to calling :meth:`add_arc` element-wise in order, at
        array speed.  All four sequences must share one length.
        """
        us = np.ascontiguousarray(us, dtype=np.int64)
        vs = np.ascontiguousarray(vs, dtype=np.int64)
        caps = np.ascontiguousarray(caps, dtype=np.int64)
        costs = np.ascontiguousarray(costs, dtype=np.float64)
        k = us.size
        if not (vs.size == caps.size == costs.size == k):
            raise ValueError("add_arcs sequences must share one length")
        if k == 0:
            return np.empty(0, dtype=np.int64)
        for ends in (us, vs):
            if int(ends.min()) < 0 or int(ends.max()) >= self.n:
                raise ValueError("arc endpoints out of range")
        if int(caps.min()) < 0:
            raise ValueError("arc capacity must be non-negative")
        if float(costs.min()) < 0:
            raise ValueError(
                "negative arc costs are not supported by the Dijkstra solver"
            )
        self._reserve(2 * k)
        m = self._m
        fwd = slice(m, m + 2 * k, 2)
        rev = slice(m + 1, m + 2 * k, 2)
        self._to[fwd] = vs
        self._to[rev] = us
        self._tail[fwd] = us
        self._tail[rev] = vs
        self._cap[fwd] = caps
        self._cap[rev] = 0
        self._cost[fwd] = costs
        np.negative(costs, out=self._cost[rev])
        self._m = m + 2 * k
        self._order = None
        return np.arange(m, m + 2 * k, 2, dtype=np.int64)

    def flow_on(self, arc_id: int) -> int:
        """Return the flow routed on forward arc ``arc_id``."""
        if arc_id % 2 != 0:
            raise ValueError("flow_on expects a forward arc id")
        return int(self._cap[arc_id ^ 1])

    def _adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency: ``order[indptr[u]:indptr[u+1]]`` = arcs out of u.

        The stable sort keeps each node's arcs in insertion (arc-id)
        order, matching the relaxation order of per-node append lists.
        """
        if self._order is None or self._indptr is None:
            tails = self._tail[: self._m]
            self._order = np.argsort(tails, kind="stable").astype(np.int64)
            counts = np.bincount(tails, minlength=self.n)
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._indptr = indptr
        return self._order, self._indptr

    def max_flow_min_cost(
        self, source: int, sink: int, max_flow: Optional[int] = None
    ) -> Tuple[int, float]:
        """Send up to ``max_flow`` units from ``source`` to ``sink``.

        Maximises the flow value first and, among maximum flows, minimises
        total cost (each augmentation follows a currently-cheapest path,
        which yields a min-cost flow for every intermediate flow value).

        Returns ``(flow_value, total_cost)``.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        n = self.n
        m = self._m
        order, indptr = self._adjacency()
        # CSR-contiguous plain-list copies: the scalar Dijkstra loop runs
        # fastest on CPython lists, and ``parent`` can store CSR slots
        # directly.  ``cpair[j]`` is the CSR slot of arc j's residual
        # partner, ``ctail[j]`` the arc's tail node (for the path walk).
        indptr_l = indptr.tolist()
        cto = self._to[:m][order].tolist()
        ccost = self._cost[:m][order].tolist()
        ccap = self._cap[:m][order].tolist()
        inv = np.empty(m, dtype=np.int64)
        inv[order] = np.arange(m, dtype=np.int64)
        cpair = inv[order ^ 1].tolist()
        # Per-node arc slices, reused across every augmentation's search.
        arcs_of = list(map(range, indptr_l[:-1], indptr_l[1:]))
        # All-integral arc costs keep every distance and potential an
        # exact small integer (float64 is exact there), which admits a
        # Dial-style bucket queue below.  PACOR's escape networks only
        # use costs 0 and 1; fractional costs fall back to a binary heap.
        int_mode = m == 0 or bool(
            (self._cost[:m] == np.floor(self._cost[:m])).all()
        )

        potential: List[float] = [0.0] * n
        flow_value = 0
        total_cost = 0.0
        limit = max_flow if max_flow is not None else float("inf")
        augmentations = 0
        heappush = heapq.heappush
        heappop = heapq.heappop

        while flow_value < limit:
            dist = [_INF] * n
            parent = [-1] * n
            settled = bytearray(n)
            dist[source] = 0.0
            if int_mode:
                # Dial bucket queue: pop order is ascending integer
                # distance, ties broken by ascending node id — exactly
                # the (distance, node) tuple-heap order, at int-heap
                # cost.  Monotonicity (non-negative reduced costs) means
                # inserts only ever target the current or later buckets.
                buckets: dict = {0: [source]}
                key_heap = [0]
                while key_heap:
                    kb = key_heap[0]
                    bucket = buckets[kb]
                    heapq.heapify(bucket)
                    sink_hit = False
                    while bucket:
                        u = heappop(bucket)
                        if settled[u]:
                            continue
                        settled[u] = 1
                        if u == sink:
                            sink_hit = True
                            break
                        d = dist[u]
                        pot_u = potential[u]
                        for j in arcs_of[u]:
                            if ccap[j] <= 0:
                                continue
                            v = cto[j]
                            if settled[v]:
                                continue
                            # Same association order as the original
                            # loop — float sums are order-sensitive and
                            # results are pinned (exact here, but kept
                            # aligned with the fractional branch; the
                            # 1e-12 slack is dropped because for exact
                            # integers it equals the strict compare).
                            nd = d + ccost[j] + pot_u - potential[v]
                            if nd < dist[v]:
                                dist[v] = nd
                                parent[v] = j
                                key = int(nd)
                                other = buckets.get(key)
                                if other is None:
                                    buckets[key] = [v]
                                    heappush(key_heap, key)
                                elif other is bucket:
                                    heappush(bucket, v)
                                else:
                                    other.append(v)
                    if sink_hit:
                        break
                    del buckets[kb]
                    heappop(key_heap)
            else:
                heap: List[Tuple[float, int]] = [(0.0, source)]
                while heap:
                    d, u = heappop(heap)
                    if settled[u]:
                        continue
                    settled[u] = 1
                    if u == sink:
                        break
                    pot_u = potential[u]
                    for j in arcs_of[u]:
                        if ccap[j] <= 0:
                            continue
                        v = cto[j]
                        if settled[v]:
                            continue
                        nd = d + ccost[j] + pot_u - potential[v]
                        if nd < dist[v] - 1e-12:
                            dist[v] = nd
                            parent[v] = j
                            heappush(heap, (nd, v))
            if not settled[sink]:
                break
            augmentations += 1

            # Update potentials: settled/reached nodes move by their
            # distance, unreached ones by dist[sink] (standard early-exit
            # variant).  ``min(inf, d_sink) == d_sink`` folds both cases
            # into one vectorised minimum.  With exact integer distances
            # a zero d_sink makes every addend +0.0 — a bitwise no-op
            # (no -0.0 can arise from the non-negative sums), so the
            # whole update is skipped.
            d_sink = dist[sink]
            if not int_mode or d_sink != 0.0:
                pot_np = np.asarray(potential, dtype=np.float64)
                pot_np += np.minimum(
                    np.asarray(dist, dtype=np.float64), d_sink
                )
                potential = pot_np.tolist()

            # Bottleneck along the path (``cto[cpair[j]]`` is arc j's
            # tail: the residual partner's head).
            bottleneck = limit - flow_value
            v = sink
            while v != source:
                j = parent[v]
                cap = ccap[j]
                if cap < bottleneck:
                    bottleneck = cap
                v = cto[cpair[j]]
            # Apply augmentation.
            v = sink
            while v != source:
                j = parent[v]
                ccap[j] -= bottleneck
                ccap[cpair[j]] += bottleneck
                total_cost += bottleneck * ccost[j]
                v = cto[cpair[j]]
            flow_value += int(bottleneck)

        # Flow lives in the residual capacities: fold the CSR working
        # copy back into arc-id order so flow_on sees the solved flow.
        self._cap[:m][order] = ccap
        if augmentations:
            obs.counter("mcf.augmenting_paths").inc(augmentations)
        return flow_value, total_cost
