"""Integral min-cost max-flow substrate.

The paper solves its escape-routing LP (constraints (6)-(12)) with
Gurobi.  The constraint matrix is a unit-capacity flow network, hence
totally unimodular, so the LP optimum is integral and equals the
min-cost max-flow optimum — which this package computes directly with
successive shortest paths and Johnson potentials.  ``networkx``'s
``max_flow_min_cost`` is used in tests as an independent cross-check.
"""

from repro.flownet.mincostflow import MinCostFlow

__all__ = ["MinCostFlow"]
