"""Minimum-length bounded routing (Section 6 of the paper).

The detour stage needs paths whose length is *at least* a lower bound
``Lt`` (and at most an upper bound, so the matched cluster stays within
the threshold window ``[maxL - delta, maxL]``).  Two engines are provided:

* :func:`bounded_length_route` — the paper's modified A*: the G value of a
  state records the path length from the source and the F value adds a
  penalty whenever the estimated total length falls below the bound, which
  steers the search towards longer paths.  States are keyed by
  ``(cell, g)`` so a cell may be revisited at a larger G (the paper's
  "G can only be updated when increased").
* :func:`extend_path_with_bumps` — a serpentine fallback: each U-shaped
  bump inserted into an existing path adds exactly 2 grid units, matching
  the parity of achievable rectilinear path lengths.  Bumps may nest, so
  any even extension fits whenever free space exists next to the path.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.point import Point, manhattan
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.observability import context as obs
from repro.robustness.errors import KernelPreconditionError
from repro.routing.path import Path

_PENALTY_WEIGHT = 2.0
"""F-value penalty per missing length unit below the bound."""


class _OwnCells:
    """Immutable cells-on-this-path set, extended in O(1) amortised.

    Each A* state must know its own path's cells to keep every
    reconstructed path simple.  Rebuilding that set per expansion walks
    the whole parent chain (O(path length) each time — quadratic over a
    long detour), so states share a frozen ``base`` set plus a short
    tuple of recent cells; the tuple is folded into a new base once it
    grows past ``_FLATTEN_AT``, keeping both membership tests and
    extension cheap while sibling states still share their prefix.
    """

    __slots__ = ("_base", "_extra")

    _FLATTEN_AT = 16

    def __init__(self, base: frozenset, extra: Tuple[Point, ...]) -> None:
        self._base = base
        self._extra = extra

    @classmethod
    def single(cls, cell: Point) -> "_OwnCells":
        return cls(frozenset((cell,)), ())

    def extended(self, cell: Point) -> "_OwnCells":
        extra = self._extra + (cell,)
        if len(extra) >= self._FLATTEN_AT:
            return _OwnCells(self._base.union(extra), ())
        return _OwnCells(self._base, extra)

    def __contains__(self, cell: Point) -> bool:
        return cell in self._base or cell in self._extra


def bounded_length_route(
    grid: RoutingGrid,
    source: Point,
    target: Point,
    min_length: int,
    max_length: int,
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    max_states: int = 50_000,
) -> Optional[Path]:
    """Find a simple path from ``source`` to ``target`` with bounded length.

    Returns a :class:`Path` whose length lies in ``[min_length,
    max_length]``, or None when the modified A* gives up (state budget
    exhausted or no such simple path found).  Callers should fall back to
    :func:`extend_path_with_bumps` on an existing path.
    """
    if min_length > max_length:
        raise KernelPreconditionError(
            "min_length must not exceed max_length",
            kernel="repro.routing.bounded.bounded_length_route",
        )
    base = manhattan(source, target)
    if base > max_length:
        return None
    # Rectilinear path lengths share the parity of the Manhattan distance;
    # an infeasible parity window can never be satisfied.
    feasible = [
        length
        for length in range(min_length, max_length + 1)
        if (length - base) % 2 == 0
    ]
    if not feasible:
        return None

    def routable(p: Point) -> bool:
        if extra_obstacles is not None and p in extra_obstacles:
            return False
        if occupancy is not None:
            return occupancy.is_routable(p, net)
        return grid.is_free(p)

    if not routable(source) or not routable(target):
        return None

    # States are (cell, g); parents reconstruct one simple path per state.
    # ``own_of`` carries each state's cells-on-path set, built
    # incrementally so expansions stay O(1) amortised instead of
    # re-walking the parent chain.
    start = (source, 0)
    parent: Dict[Tuple[Point, int], Optional[Tuple[Point, int]]] = {start: None}
    own_of: Dict[Tuple[Point, int], _OwnCells] = {start: _OwnCells.single(source)}
    heap: List[Tuple[float, int, Tuple[Point, int]]] = []
    tie = count()

    def f_value(p: Point, g: int) -> float:
        estimate = g + manhattan(p, target)
        f = float(estimate)
        if estimate < min_length:
            f += _PENALTY_WEIGHT * (min_length - estimate)
        return f

    heapq.heappush(heap, (f_value(source, 0), next(tie), start))
    states = 0

    def reconstruct(state: Tuple[Point, int]) -> List[Point]:
        cells: List[Point] = []
        node: Optional[Tuple[Point, int]] = state
        while node is not None:
            cells.append(node[0])
            node = parent[node]
        cells.reverse()
        return cells

    try:
        while heap:
            _, _, state = heapq.heappop(heap)
            p, g = state
            if p == target and min_length <= g <= max_length:
                cells = reconstruct(state)
                path = Path(cells)
                if path.is_simple():
                    return path
                continue
            states += 1
            if states > max_states:
                return None
            if g >= max_length:
                continue
            # Cells already on this state's own path are forbidden so every
            # reconstructed path stays simple.
            own = own_of[state]
            for q in p.neighbors4():
                if not grid.in_bounds(q) or not routable(q) or q in own:
                    continue
                ng = g + 1
                if ng + manhattan(q, target) > max_length:
                    continue
                nstate = (q, ng)
                if nstate in parent:
                    continue
                parent[nstate] = state
                own_of[nstate] = own.extended(q)
                heapq.heappush(heap, (f_value(q, ng), next(tie), nstate))
        return None
    finally:
        if states:
            obs.counter("bounded.states").inc(states)


def _perpendicular(direction: Point) -> List[Point]:
    """Return the two unit vectors perpendicular to ``direction``."""
    if direction[0] != 0:
        return [Point(0, 1), Point(0, -1)]
    return [Point(1, 0), Point(-1, 0)]


def extend_path_with_bumps(
    grid: RoutingGrid,
    path: Path,
    extra: int,
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
) -> Optional[Path]:
    """Lengthen ``path`` by exactly ``extra`` grid units using serpentines.

    Each inserted U-bump replaces one path step ``a -> b`` with
    ``a -> a+n -> b+n -> b`` (``n`` perpendicular to the step), adding 2
    units while keeping endpoints fixed.  Bumps may be placed on cells a
    previous bump introduced, so repeated insertion snakes into free area.

    Returns the extended path, or None when ``extra`` is odd/negative or
    the surrounding free space runs out before the target is reached.
    ``occupancy`` is *not* modified; callers re-commit the new path.
    """
    if extra < 0 or extra % 2 != 0:
        return None
    if extra == 0:
        return path

    def routable(p: Point) -> bool:
        if extra_obstacles is not None and p in extra_obstacles:
            return False
        if occupancy is not None:
            # The current path's own cells are owned by `net`; new bump
            # cells must be claimable by the same net.
            return occupancy.is_routable(p, net)
        return grid.is_free(p)

    cells: List[Point] = list(path.cells)
    used: Set[Point] = set(cells)
    remaining = extra
    while remaining > 0:
        inserted = False
        for i in range(len(cells) - 1):
            a, b = cells[i], cells[i + 1]
            step = Point(b[0] - a[0], b[1] - a[1])
            for n in _perpendicular(step):
                an = Point(a[0] + n[0], a[1] + n[1])
                bn = Point(b[0] + n[0], b[1] + n[1])
                if an in used or bn in used:
                    continue
                if not grid.in_bounds(an) or not grid.in_bounds(bn):
                    continue
                if not routable(an) or not routable(bn):
                    continue
                cells[i + 1 : i + 1] = [an, bn]
                used.update((an, bn))
                remaining -= 2
                inserted = True
                break
            if inserted:
                break
        if not inserted:
            return None
    return Path(cells)
