"""Minimum-length bounded routing (Section 6 of the paper).

The detour stage needs paths whose length is *at least* a lower bound
``Lt`` (and at most an upper bound, so the matched cluster stays within
the threshold window ``[maxL - delta, maxL]``).  Two engines are provided:

* :func:`bounded_length_route` — the paper's modified A*: the G value of a
  state records the path length from the source and the F value adds a
  penalty whenever the estimated total length falls below the bound, which
  steers the search towards longer paths.  States are keyed by
  ``(cell, g)`` so a cell may be revisited at a larger G (the paper's
  "G can only be updated when increased").  The state exploration runs in
  :func:`repro.routing.core.bounded_search` on flat cell ids; this module
  keeps the feasibility pre-checks and the serpentine fallback.
* :func:`extend_path_with_bumps` — a serpentine fallback: each U-shaped
  bump inserted into an existing path adds exactly 2 grid units, matching
  the parity of achievable rectilinear path lengths.  Bumps may nest, so
  any even extension fits whenever free space exists next to the path.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.geometry.point import Point, manhattan
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.robustness.errors import KernelPreconditionError
from repro.routing.core import bounded_search, query_space
from repro.routing.path import Path


def bounded_length_route(
    grid: RoutingGrid,
    source: Point,
    target: Point,
    min_length: int,
    max_length: int,
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    extra_obstacle_ids: Optional[Set[int]] = None,
    max_states: int = 50_000,
) -> Optional[Path]:
    """Find a simple path from ``source`` to ``target`` with bounded length.

    Returns a :class:`Path` whose length lies in ``[min_length,
    max_length]``, or None when the modified A* gives up (state budget
    exhausted or no such simple path found).  Callers should fall back to
    :func:`extend_path_with_bumps` on an existing path.
    """
    if min_length > max_length:
        raise KernelPreconditionError(
            "min_length must not exceed max_length",
            kernel="repro.routing.bounded.bounded_length_route",
        )
    if grid.layers == 1:
        base = manhattan(source, target)
        if base > max_length:
            return None
        # Rectilinear path lengths share the parity of the Manhattan
        # distance; an infeasible parity window can never be satisfied.
        feasible = [
            length
            for length in range(min_length, max_length + 1)
            if (length - base) % 2 == 0
        ]
        if not feasible:
            return None
    else:
        # Weighted lower bound: planar L1 plus via_length per layer the
        # path must cross.  Parity pruning does not survive weighted via
        # steps, so only the bound check applies.
        sz = source[2] if len(source) == 3 else 0
        tz = target[2] if len(target) == 3 else 0
        base = (
            abs(source[0] - target[0])
            + abs(source[1] - target[1])
            + abs(sz - tz) * grid.via_length
        )
        if base > max_length:
            return None

    space = query_space(
        grid,
        net=net,
        occupancy=occupancy,
        extra_obstacles=extra_obstacles,
        extra_obstacle_ids=extra_obstacle_ids,
    )
    if not space.routable(source) or not space.routable(target):
        return None

    ids = bounded_search(
        space, source, target, min_length, max_length, max_states=max_states
    )
    if ids is None:
        return None
    return space.materialize(ids)


def extend_path_with_bumps(
    grid: RoutingGrid,
    path: Path,
    extra: int,
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    extra_obstacle_ids: Optional[Set[int]] = None,
) -> Optional[Path]:
    """Lengthen ``path`` by exactly ``extra`` grid units using serpentines.

    Each inserted U-bump replaces one path step ``a -> b`` with
    ``a -> a+n -> b+n -> b`` (``n`` perpendicular to the step), adding 2
    units while keeping endpoints fixed.  Bumps may be placed on cells a
    previous bump introduced, so repeated insertion snakes into free area.

    Returns the extended path, or None when ``extra`` is odd/negative or
    the surrounding free space runs out before the target is reached.
    ``occupancy`` is *not* modified; callers re-commit the new path.
    """
    if extra < 0 or extra % 2 != 0:
        return None
    if extra == 0:
        return path

    # The current path's own cells are owned by `net`; new bump cells
    # must be claimable by the same net, which the fused mask encodes.
    space = query_space(
        grid,
        net=net,
        occupancy=occupancy,
        extra_obstacles=extra_obstacles,
        extra_obstacle_ids=extra_obstacle_ids,
    )
    width = space.width
    height = space.height
    planar = space.layers == 1
    size = space.size
    blocked = memoryview(space.blocked)

    cells: List[int] = [space.index(p) for p in path.cells]
    used: Set[int] = set(cells)
    remaining = extra
    while remaining > 0:
        inserted = False
        for i in range(len(cells) - 1):
            a, b = cells[i], cells[i + 1]
            # Perpendicular offsets to the step a -> b, in the same
            # probe order the Point-based fallback used: for a
            # horizontal step try South (+width) then North (-width),
            # for a vertical step East (+1) then West (-1).  A None
            # marks an off-chip probe (column edge for East/West; the
            # row bound check below handles South/North).  On multi-
            # layer grids row bounds must be explicit (a raw ±width
            # would wrap across layers) and via steps take no planar
            # bump at all.
            if planar:
                if b == a + 1 or b == a - 1:
                    perps = (width, -width)
                else:
                    xa = a % width
                    perps = (
                        1 if xa + 1 < width else None,
                        -1 if xa else None,
                    )
            else:
                d = b - a
                if d == 1 or d == -1:
                    ya = (a // width) % height
                    perps = (
                        width if ya + 1 < height else None,
                        -width if ya else None,
                    )
                elif d == width or d == -width:
                    xa = a % width
                    perps = (
                        1 if xa + 1 < width else None,
                        -1 if xa else None,
                    )
                else:
                    perps = ()
            for n in perps:
                if n is None:
                    continue
                an = a + n
                bn = b + n
                if not (0 <= an < size and 0 <= bn < size):
                    continue
                if an in used or bn in used:
                    continue
                if blocked[an] or blocked[bn]:
                    continue
                cells[i + 1 : i + 1] = [an, bn]
                used.update((an, bn))
                remaining -= 2
                inserted = True
                break
            if inserted:
                break
        if not inserted:
            return None
    return space.materialize(cells)
