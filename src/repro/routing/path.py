"""Routed paths: contiguous cell sequences on the grid."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.point import Point, cell_point, cell_z, manhattan
from repro.robustness.errors import KernelPreconditionError
from repro.geometry.rect import Rect


class Path:
    """A routed control-channel segment: a sequence of adjacent grid cells.

    The channel *length* is the number of grid steps, i.e. ``len(cells) -
    1``; a single-cell path has length zero.  Paths are immutable after
    construction and validate adjacency (one axis step per move — four
    planar directions plus up/down via moves on multi-layer grids), so a
    constructed ``Path`` is always physically realisable on the grid.
    Cells follow the canonical mixed-arity rule: layer-0 cells are plain
    ``(x, y)`` :class:`Point`, upper-layer cells are ``(x, y, z)``.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Sequence[Point]) -> None:
        if not cells:
            raise KernelPreconditionError("a path must contain at least one cell")
        cells = [
            cell_point(c[0], c[1], c[2]) if len(c) == 3 else Point(c[0], c[1])
            for c in cells
        ]
        for a, b in zip(cells, cells[1:]):
            if manhattan(a, b) != 1:
                raise KernelPreconditionError(
                    f"path cells {a} and {b} are not adjacent"
                )
        self._cells: Tuple[Point, ...] = tuple(cells)

    @property
    def cells(self) -> Tuple[Point, ...]:
        """Return the cell sequence from source to target."""
        return self._cells

    @property
    def source(self) -> Point:
        """Return the first cell."""
        return self._cells[0]

    @property
    def target(self) -> Point:
        """Return the last cell."""
        return self._cells[-1]

    @property
    def length(self) -> int:
        """Return the channel length in grid steps."""
        return len(self._cells) - 1

    @property
    def via_count(self) -> int:
        """Return the number of vertical (via) steps along the path."""
        vias = 0
        for a, b in zip(self._cells, self._cells[1:]):
            if cell_z(a) != cell_z(b):
                vias += 1
        return vias

    def weighted_length(self, via_length: int) -> int:
        """Return the channel length with each via counted as ``via_length``.

        Identical to :attr:`length` for planar paths or ``via_length ==
        1`` — the single-layer flow never diverges.
        """
        if via_length == 1:
            return self.length
        return self.length + self.via_count * (via_length - 1)

    def is_simple(self) -> bool:
        """Return True when no cell repeats (the channel does not self-cross)."""
        return len(set(self._cells)) == len(self._cells)

    def reversed(self) -> "Path":
        """Return the same channel traversed target-to-source."""
        return Path(tuple(reversed(self._cells)))

    def bounding_box(self) -> Rect:
        """Return the bounding box of the path cells."""
        return Rect.from_points(self._cells)

    def concat(self, other: "Path") -> "Path":
        """Join two paths sharing an endpoint cell (``self.target == other.source``)."""
        if self.target != other.source:
            raise KernelPreconditionError(
                f"paths do not share an endpoint: {self.target} != {other.source}"
            )
        return Path(self._cells + other._cells[1:])

    def cell_set(self) -> frozenset:
        """Return the cells as a frozen set (for occupancy bookkeeping)."""
        return frozenset(self._cells)

    def cell_ids(self, width: int, height: int = 0) -> List[int]:
        """Return the flat ``grid.index`` cell ids of a ``width``-wide grid.

        The bridge from materialised paths back into the kernel core's
        integer representation (occupancy buckets, blocked-masks).
        ``height`` is only needed when the path may visit upper layers
        (``z * width * height`` enters the id); planar paths never use
        it.
        """
        plane = width * height
        ids: List[int] = []
        for c in self._cells:
            if len(c) == 3:
                if not height:
                    raise KernelPreconditionError(
                        "cell_ids needs the grid height to address "
                        f"upper-layer cell {c}"
                    )
                ids.append(c[2] * plane + c[1] * width + c[0])
            else:
                ids.append(c[1] * width + c[0])
        return ids

    def __iter__(self) -> Iterator[Point]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self._cells == other._cells

    def __hash__(self) -> int:
        return hash(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Path({self.source}->{self.target}, len={self.length})"


def total_length(paths: Iterable[Path]) -> int:
    """Return the summed channel length of ``paths``."""
    return sum(p.length for p in paths)


def collect_cells(paths: Iterable[Path]) -> List[Point]:
    """Return every cell covered by ``paths`` (duplicates removed, ordered)."""
    seen = set()
    out: List[Point] = []
    for path in paths:
        for cell in path:
            if cell not in seen:
                seen.add(cell)
                out.append(cell)
    return out
