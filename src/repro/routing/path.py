"""Routed paths: contiguous cell sequences on the grid."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.robustness.errors import KernelPreconditionError
from repro.geometry.rect import Rect


class Path:
    """A routed control-channel segment: a sequence of adjacent grid cells.

    The channel *length* is the number of grid steps, i.e. ``len(cells) -
    1``; a single-cell path has length zero.  Paths are immutable after
    construction and validate 4-adjacency, so a constructed ``Path`` is
    always physically realisable on the grid.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Sequence[Point]) -> None:
        if not cells:
            raise KernelPreconditionError("a path must contain at least one cell")
        cells = [Point(c[0], c[1]) for c in cells]
        for a, b in zip(cells, cells[1:]):
            if a.manhattan(b) != 1:
                raise KernelPreconditionError(
                    f"path cells {a} and {b} are not 4-adjacent"
                )
        self._cells: Tuple[Point, ...] = tuple(cells)

    @property
    def cells(self) -> Tuple[Point, ...]:
        """Return the cell sequence from source to target."""
        return self._cells

    @property
    def source(self) -> Point:
        """Return the first cell."""
        return self._cells[0]

    @property
    def target(self) -> Point:
        """Return the last cell."""
        return self._cells[-1]

    @property
    def length(self) -> int:
        """Return the channel length in grid steps."""
        return len(self._cells) - 1

    def is_simple(self) -> bool:
        """Return True when no cell repeats (the channel does not self-cross)."""
        return len(set(self._cells)) == len(self._cells)

    def reversed(self) -> "Path":
        """Return the same channel traversed target-to-source."""
        return Path(tuple(reversed(self._cells)))

    def bounding_box(self) -> Rect:
        """Return the bounding box of the path cells."""
        return Rect.from_points(self._cells)

    def concat(self, other: "Path") -> "Path":
        """Join two paths sharing an endpoint cell (``self.target == other.source``)."""
        if self.target != other.source:
            raise KernelPreconditionError(
                f"paths do not share an endpoint: {self.target} != {other.source}"
            )
        return Path(self._cells + other._cells[1:])

    def cell_set(self) -> frozenset:
        """Return the cells as a frozen set (for occupancy bookkeeping)."""
        return frozenset(self._cells)

    def cell_ids(self, width: int) -> List[int]:
        """Return the flat ``grid.index`` cell ids of a ``width``-wide grid.

        The bridge from materialised paths back into the kernel core's
        integer representation (occupancy buckets, blocked-masks).
        """
        return [c[1] * width + c[0] for c in self._cells]

    def __iter__(self) -> Iterator[Point]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self._cells == other._cells

    def __hash__(self) -> int:
        return hash(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Path({self.source}->{self.target}, len={self.length})"


def total_length(paths: Iterable[Path]) -> int:
    """Return the summed channel length of ``paths``."""
    return sum(p.length for p in paths)


def collect_cells(paths: Iterable[Path]) -> List[Point]:
    """Return every cell covered by ``paths`` (duplicates removed, ordered)."""
    seen = set()
    out: List[Point] = []
    for path in paths:
        for cell in path:
            if cell not in seen:
                seen.add(cell)
                out.append(cell)
    return out
