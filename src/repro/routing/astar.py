"""A* search on the routing grid.

One engine serves the three query shapes the paper uses (Section 3):
point-to-point, point-to-path and path-to-path routing — ``sources`` and
``targets`` are both cell collections.  Step cost is the grid length (1)
plus the negotiation history cost of the cell being entered, which is how
Algorithm 1 plugs in.

The search itself runs in :mod:`repro.routing.core`: this module checks
the query's routability sources out of the occupancy's persistent
:class:`SpaceCache` (or fuses a standalone :class:`SearchSpace`) and
materialises the engine's cell-id path back into a :class:`Path`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.robustness.budget import Budget
from repro.routing.core import astar_search, query_space
from repro.routing.path import Path

ALL_SOURCES_BLOCKED = "all-sources-blocked"
"""Failure reason: every on-chip source cell of the query is blocked.

Distinguishes a query that could never *start* from genuine search
exhaustion — a blocked source that doubles as a target falls in here
too (the trivial path only exists when the shared cell is routable,
matching the pre-kernel-core composition).
"""


def astar_route(
    grid: RoutingGrid,
    sources: Iterable[Point],
    targets: Iterable[Point],
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    history: Optional[Sequence[float]] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    extra_obstacle_ids: Optional[Iterable[int]] = None,
    fault_ids: Optional[Iterable[int]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[Path]:
    """Route from any source cell to any target cell.

    Args:
        grid: the routing grid (static obstacles).
        sources: starting cells; each seeds the search with cost 0.
        targets: goal cells; the search stops at the first one settled.
        net: id of the net being routed; cells owned by the same net in
            ``occupancy`` remain routable (point-to-path queries rely on
            this).
        occupancy: dynamic per-net occupancy; cells owned by other nets
            are blocked.
        history: per-cell negotiation history cost (flat array indexed by
            ``grid.index``); added to the step cost when entering a cell.
        extra_obstacles: additional blocked cells for this query only.
        extra_obstacle_ids: like ``extra_obstacles`` but as flat cell
            ids — the repair engine's bounding-box fences come this way.
        fault_ids: physically faulty cell ids; blocked for every net,
            including the querying net's own cells.
        max_expansions: optional cap on settled cells (safety valve);
            unlike ``budget`` this is per-query and fails soft (None).
        budget: run-wide compute budget; every settled cell is charged
            and exhaustion raises
            :class:`~repro.robustness.errors.BudgetExceeded`.

    Returns:
        The cheapest :class:`Path` from a source to a target, or None when
        no route exists.  Source and target cells themselves must be
        routable.

    Raises:
        BudgetExceeded: the run-wide ``budget`` ran out mid-search.
    """
    path, _ = astar_route_detailed(
        grid,
        sources,
        targets,
        net=net,
        occupancy=occupancy,
        history=history,
        extra_obstacles=extra_obstacles,
        extra_obstacle_ids=extra_obstacle_ids,
        fault_ids=fault_ids,
        max_expansions=max_expansions,
        budget=budget,
    )
    return path


def astar_route_detailed(
    grid: RoutingGrid,
    sources: Iterable[Point],
    targets: Iterable[Point],
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    history: Optional[Sequence[float]] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    extra_obstacle_ids: Optional[Iterable[int]] = None,
    fault_ids: Optional[Iterable[int]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Tuple[Optional[Path], Optional[str]]:
    """Like :func:`astar_route`, plus a failure reason on None.

    Returns ``(path, None)`` on success; on failure the second element
    is :data:`ALL_SOURCES_BLOCKED` when no source cell could even seed
    the search (off-chip, statically blocked, occupied by another net,
    fenced or faulty), or None for ordinary search exhaustion — callers
    surface the distinction per net instead of reporting both as the
    same "unroutable".
    """
    source_list = list(sources)
    target_list = list(targets)
    space = query_space(
        grid,
        net=net,
        occupancy=occupancy,
        extra_obstacles=extra_obstacles,
        extra_obstacle_ids=extra_obstacle_ids,
        fault_ids=fault_ids,
    )
    ids = astar_search(
        space,
        source_list,
        target_list,
        history=history,
        max_expansions=max_expansions,
        budget=budget,
    )
    if ids is not None:
        return space.materialize(ids), None
    if source_list and target_list and not any(
        space.routable(p) for p in source_list
    ):
        return None, ALL_SOURCES_BLOCKED
    return None, None
