"""A* search on the routing grid.

One engine serves the three query shapes the paper uses (Section 3):
point-to-point, point-to-path and path-to-path routing — ``sources`` and
``targets`` are both cell collections.  Step cost is the grid length (1)
plus the negotiation history cost of the cell being entered, which is how
Algorithm 1 plugs in.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.path import Path


def _target_heuristic(targets: Set[Point]):
    """Return an admissible L1 heuristic towards a target set.

    For a single target this is the exact Manhattan distance; for a set we
    use the distance to the bounding box, which never overestimates the
    distance to the nearest member.
    """
    if len(targets) == 1:
        (t,) = targets

        def single(p: Point) -> int:
            return abs(p[0] - t[0]) + abs(p[1] - t[1])

        return single

    box = Rect.from_points(targets)

    def boxed(p: Point) -> int:
        dx = max(box.xlo - p[0], 0, p[0] - box.xhi)
        dy = max(box.ylo - p[1], 0, p[1] - box.yhi)
        return dx + dy

    return boxed


def astar_route(
    grid: RoutingGrid,
    sources: Iterable[Point],
    targets: Iterable[Point],
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    history: Optional[Sequence[float]] = None,
    extra_obstacles: Optional[Set[Point]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[Path]:
    """Route from any source cell to any target cell.

    Args:
        grid: the routing grid (static obstacles).
        sources: starting cells; each seeds the search with cost 0.
        targets: goal cells; the search stops at the first one settled.
        net: id of the net being routed; cells owned by the same net in
            ``occupancy`` remain routable (point-to-path queries rely on
            this).
        occupancy: dynamic per-net occupancy; cells owned by other nets
            are blocked.
        history: per-cell negotiation history cost (flat array indexed by
            ``grid.index``); added to the step cost when entering a cell.
        extra_obstacles: additional blocked cells for this query only.
        max_expansions: optional cap on settled cells (safety valve);
            unlike ``budget`` this is per-query and fails soft (None).
        budget: run-wide compute budget; every settled cell is charged
            and exhaustion raises
            :class:`~repro.robustness.errors.BudgetExceeded`.

    Returns:
        The cheapest :class:`Path` from a source to a target, or None when
        no route exists.  Source and target cells themselves must be
        routable.

    Raises:
        BudgetExceeded: the run-wide ``budget`` ran out mid-search.
    """
    if budget is not None and faults.fires("astar_budget_exhaustion"):
        raise BudgetExceeded(
            "injected search-budget exhaustion",
            kind="astar-expansions",
            limit=budget.expansions_used,
            used=budget.expansions_used,
            stage="astar",
        )
    target_set = {Point(t[0], t[1]) for t in targets}
    source_list = [Point(s[0], s[1]) for s in sources]
    if not target_set or not source_list:
        return None

    def routable(p: Point) -> bool:
        if extra_obstacles is not None and p in extra_obstacles:
            return False
        if occupancy is not None:
            return occupancy.is_routable(p, net)
        return grid.is_free(p)

    heuristic = _target_heuristic(target_set)
    best_g: Dict[Point, float] = {}
    parent: Dict[Point, Optional[Point]] = {}
    heap = []
    tie = count()

    for s in source_list:
        if not routable(s):
            continue
        if s in target_set:
            return Path([s])
        best_g[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (heuristic(s), 0.0, next(tie), s))

    # Expansion accounting is unified: with a budget, the budget's shared
    # counter (registered as ``astar.expansions`` in the metrics registry
    # by the router) is the single tally — ``max_expansions`` reads the
    # per-query delta off it.  Without a budget a local count is kept and
    # flushed to the active registry once per query, so the disabled-
    # metrics hot loop stays free of instrument calls.
    query_start = budget.expansions_used if budget is not None else 0
    expansions = 0
    pushes = len(heap)
    try:
        while heap:
            f, g, _, p = heapq.heappop(heap)
            if g > best_g.get(p, float("inf")):
                continue
            if p in target_set:
                cells = [p]
                back = parent[p]
                while back is not None:
                    cells.append(back)
                    back = parent[back]
                cells.reverse()
                return Path(cells)
            if budget is not None:
                budget.charge_expansions(1)
                if (
                    max_expansions is not None
                    and budget.expansions_used - query_start > max_expansions
                ):
                    return None
            else:
                expansions += 1
                if max_expansions is not None and expansions > max_expansions:
                    return None
            for q in p.neighbors4():
                if not grid.in_bounds(q) or not routable(q):
                    continue
                step = 1.0
                if history is not None:
                    step += history[grid.index(q)]
                ng = g + step
                if ng < best_g.get(q, float("inf")):
                    best_g[q] = ng
                    parent[q] = p
                    heapq.heappush(heap, (ng + heuristic(q), ng, next(tie), q))
                    pushes += 1
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)
