"""Negotiation-based detailed routing (Algorithm 1 of the paper).

Unlike PathFinder's congestion negotiation at global-routing level, the
paper negotiates *detailed* routability directly on the grid: each
iteration routes every edge with routed paths acting as hard obstacles;
when some edge fails, the history cost of every cell used in this
iteration is raised (Eq. 5), all paths are ripped up, and the next
iteration re-routes everything — cells with high history cost are then
avoided unless no alternative exists.

The per-edge search runs directly on the kernel core: one fused
:class:`SearchSpace` per edge query, the flat history array plugged into
:func:`repro.routing.core.astar_search` as the per-cell step surcharge,
and all bookkeeping (claimed cells, history updates, rip-up) on cell ids
— paths are only materialised into :class:`Path` objects for the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.core import astar_search, query_space
from repro.routing.path import Path


@dataclass(frozen=True)
class RouteRequest:
    """One edge to route: any source cell to any target cell, for a net.

    Attributes:
        edge_id: unique id of the edge among the requests.
        net: id of the net (Steiner tree) the edge belongs to; edges of
            the same net may share cells.
        sources: candidate start cells.
        targets: candidate goal cells.
    """

    edge_id: int
    net: int
    sources: Tuple[Point, ...]
    targets: Tuple[Point, ...]


@dataclass
class NegotiationResult:
    """Outcome of a negotiation-routing run.

    Attributes:
        success: True when every requested edge was routed.
        paths: routed path per edge id (only successfully routed edges).
        failed_edges: edge ids that remained unroutable in the final
            iteration.
        iterations: number of rip-up/reroute rounds performed.
        aborted: True when a compute budget ran out mid-negotiation; the
            paths routed so far stay committed and every remaining edge
            is reported failed.
    """

    success: bool
    paths: Dict[int, Path] = field(default_factory=dict)
    failed_edges: List[int] = field(default_factory=list)
    iterations: int = 0
    aborted: bool = False


class NegotiationRouter:
    """Iterative rip-up-all/reroute router with history costs.

    Parameters follow the paper's implementation: base history cost
    ``b = 1.0``, decay/gain factor ``alpha = 0.1`` (Eq. 5), and iteration
    threshold ``gamma = 10``.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        *,
        base_cost: float = 1.0,
        alpha: float = 0.1,
        gamma: int = 10,
        max_expansions: Optional[int] = None,
        exclusive_within_net: bool = True,
    ) -> None:
        self.grid = grid
        self.base_cost = base_cost
        self.alpha = alpha
        self.gamma = gamma
        self.max_expansions = max_expansions
        # Steiner-tree edges of one net must meet only at their shared
        # endpoint nodes; riding along a sibling edge would silently
        # shortcut the channel network and break length matching.
        self.exclusive_within_net = exclusive_within_net
        self.history: List[float] = [0.0] * grid.size

    def route(
        self,
        requests: Sequence[RouteRequest],
        occupancy: Occupancy,
        *,
        budget: Optional[Budget] = None,
    ) -> NegotiationResult:
        """Route every request, negotiating shared cells across iterations.

        On success, all routed cells are left occupied (by each request's
        net id) in ``occupancy``.  On failure — the iteration threshold
        was reached with unroutable edges — the paths of the *final*
        iteration stay occupied and the failed edge ids are reported, so
        the caller can demote the affected clusters (the paper rebuilds
        the DME tree or re-designs valve positions in that case).

        When ``budget`` runs out mid-negotiation the router aborts
        instead of raising: the current iteration's routed paths stay
        committed, every edge not routed in it is reported failed, and
        ``aborted`` is set so the caller can skip further repair work.
        """
        result = NegotiationResult(success=False)
        if not requests:
            result.success = True
            return result

        grid = self.grid
        gindex = grid.index
        exp_counter = (
            budget.expansion_counter
            if budget is not None
            else obs.counter("astar.expansions")
        )
        for iteration in range(1, self.gamma + 1):
            result.iterations = iteration
            # While every history entry is still zero the surcharge is a
            # no-op, so the engine is told there is none at all — which
            # lets unit-cost rounds run on the vectorised wave engine.
            history = self.history if any(self.history) else None
            obs.counter("negotiation.rounds").inc()
            round_span = obs.span(
                "negotiation-round", category="round", iteration=iteration
            )
            id_paths: Dict[int, List[int]] = {}
            failed: List[int] = []
            # Cell ids newly claimed this iteration.  Cells a net owned
            # before this router ran (e.g. pre-occupied valve terminals)
            # must survive the rip-up, so only these are released.
            added_ids: List[int] = []

            with round_span:
                for request in requests:
                    extra_ids = None
                    if self.exclusive_within_net:
                        extra_ids = occupancy.cells_of_ids(request.net)
                        # Endpoint ids only exist for on-chip pins; an
                        # off-chip pin can never match an occupied cell.
                        extra_ids -= {
                            gindex(p)
                            for p in request.sources + request.targets
                            if grid.in_bounds(p)
                        }
                    space = query_space(
                        grid,
                        net=request.net,
                        occupancy=occupancy,
                        extra_obstacle_ids=extra_ids or None,
                    )
                    edge_span = obs.span(
                        "negotiation-edge",
                        category="net",
                        net_id=request.net,
                        edge_id=request.edge_id,
                    )
                    spent_before = exp_counter.value
                    ids: Optional[List[int]] = None
                    with edge_span:
                        try:
                            ids = astar_search(
                                space,
                                request.sources,
                                request.targets,
                                history=history,
                                max_expansions=self.max_expansions,
                                budget=budget,
                            )
                        except BudgetExceeded:
                            result.aborted = True
                            ids = None
                        finally:
                            edge_span.set(
                                astar_expansions=exp_counter.value
                                - spent_before,
                                routed=ids is not None,
                            )
                    if ids is not None and faults.fires(
                        "negotiation_edge_failure"
                    ):
                        ids = None
                    if ids is None:
                        failed.append(request.edge_id)
                        if result.aborted:
                            # Out of budget: every not-yet-routed edge of
                            # this iteration fails without further search.
                            routed = set(id_paths)
                            failed.extend(
                                r.edge_id
                                for r in requests
                                if r.edge_id not in routed
                                and r.edge_id not in failed
                            )
                            break
                        continue
                    id_paths[request.edge_id] = ids
                    new_ids = [
                        cid
                        for cid in ids
                        if occupancy.owner_id(cid) != request.net
                    ]
                    occupancy.occupy_ids(new_ids, request.net)
                    added_ids.extend(new_ids)
                round_span.set(
                    routed=len(id_paths),
                    failed=len(failed),
                    aborted=result.aborted,
                )

            if not failed:
                result.success = True
                result.paths = self._materialize(id_paths)
                result.failed_edges = []
                return result

            if result.aborted or iteration >= self.gamma:
                # Give up: keep the final partial solution for the caller.
                result.paths = self._materialize(id_paths)
                result.failed_edges = failed
                return result

            # Raise history cost along every path used this iteration
            # (Eq. 5), then rip everything up and try again.
            history = self.history
            for ids in id_paths.values():
                for cid in ids:
                    history[cid] = self.base_cost + self.alpha * history[cid]
            occupancy.release_cell_ids(added_ids)

        return result  # pragma: no cover - loop always returns earlier

    def _materialize(self, id_paths: Dict[int, List[int]]) -> Dict[int, Path]:
        """Turn per-edge cell-id paths back into :class:`Path` objects."""
        grid = self.grid
        width = grid.width
        if grid.layers == 1:
            return {
                edge_id: Path([Point(cid % width, cid // width) for cid in ids])
                for edge_id, ids in id_paths.items()
            }
        point = grid.point
        return {
            edge_id: Path([point(cid) for cid in ids])
            for edge_id, ids in id_paths.items()
        }
