"""Negotiation-based detailed routing (Algorithm 1 of the paper).

Unlike PathFinder's congestion negotiation at global-routing level, the
paper negotiates *detailed* routability directly on the grid: each
iteration routes every edge with routed paths acting as hard obstacles;
when some edge fails, the history cost of every cell used in this
iteration is raised (Eq. 5), all paths are ripped up, and the next
iteration re-routes everything — cells with high history cost are then
avoided unless no alternative exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.astar import astar_route
from repro.routing.path import Path


@dataclass(frozen=True)
class RouteRequest:
    """One edge to route: any source cell to any target cell, for a net.

    Attributes:
        edge_id: unique id of the edge among the requests.
        net: id of the net (Steiner tree) the edge belongs to; edges of
            the same net may share cells.
        sources: candidate start cells.
        targets: candidate goal cells.
    """

    edge_id: int
    net: int
    sources: Tuple[Point, ...]
    targets: Tuple[Point, ...]


@dataclass
class NegotiationResult:
    """Outcome of a negotiation-routing run.

    Attributes:
        success: True when every requested edge was routed.
        paths: routed path per edge id (only successfully routed edges).
        failed_edges: edge ids that remained unroutable in the final
            iteration.
        iterations: number of rip-up/reroute rounds performed.
        aborted: True when a compute budget ran out mid-negotiation; the
            paths routed so far stay committed and every remaining edge
            is reported failed.
    """

    success: bool
    paths: Dict[int, Path] = field(default_factory=dict)
    failed_edges: List[int] = field(default_factory=list)
    iterations: int = 0
    aborted: bool = False


class NegotiationRouter:
    """Iterative rip-up-all/reroute router with history costs.

    Parameters follow the paper's implementation: base history cost
    ``b = 1.0``, decay/gain factor ``alpha = 0.1`` (Eq. 5), and iteration
    threshold ``gamma = 10``.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        *,
        base_cost: float = 1.0,
        alpha: float = 0.1,
        gamma: int = 10,
        max_expansions: Optional[int] = None,
        exclusive_within_net: bool = True,
    ) -> None:
        self.grid = grid
        self.base_cost = base_cost
        self.alpha = alpha
        self.gamma = gamma
        self.max_expansions = max_expansions
        # Steiner-tree edges of one net must meet only at their shared
        # endpoint nodes; riding along a sibling edge would silently
        # shortcut the channel network and break length matching.
        self.exclusive_within_net = exclusive_within_net
        self.history: List[float] = [0.0] * (grid.width * grid.height)

    def route(
        self,
        requests: Sequence[RouteRequest],
        occupancy: Occupancy,
        *,
        budget: Optional[Budget] = None,
    ) -> NegotiationResult:
        """Route every request, negotiating shared cells across iterations.

        On success, all routed cells are left occupied (by each request's
        net id) in ``occupancy``.  On failure — the iteration threshold
        was reached with unroutable edges — the paths of the *final*
        iteration stay occupied and the failed edge ids are reported, so
        the caller can demote the affected clusters (the paper rebuilds
        the DME tree or re-designs valve positions in that case).

        When ``budget`` runs out mid-negotiation the router aborts
        instead of raising: the current iteration's routed paths stay
        committed, every edge not routed in it is reported failed, and
        ``aborted`` is set so the caller can skip further repair work.
        """
        result = NegotiationResult(success=False)
        if not requests:
            result.success = True
            return result

        exp_counter = (
            budget.expansion_counter
            if budget is not None
            else obs.counter("astar.expansions")
        )
        for iteration in range(1, self.gamma + 1):
            result.iterations = iteration
            obs.counter("negotiation.rounds").inc()
            round_span = obs.span(
                "negotiation-round", category="round", iteration=iteration
            )
            paths: Dict[int, Path] = {}
            failed: List[int] = []
            # Cells newly claimed this iteration.  Cells a net owned before
            # this router ran (e.g. pre-occupied valve terminals) must
            # survive the rip-up, so only these are released.
            added_cells: List[Point] = []

            with round_span:
                for request in requests:
                    extra = None
                    if self.exclusive_within_net:
                        extra = occupancy.cells_of(request.net)
                        extra -= set(request.sources) | set(request.targets)
                    edge_span = obs.span(
                        "negotiation-edge",
                        category="net",
                        net_id=request.net,
                        edge_id=request.edge_id,
                    )
                    spent_before = exp_counter.value
                    path: Optional[Path] = None
                    with edge_span:
                        try:
                            path = astar_route(
                                self.grid,
                                request.sources,
                                request.targets,
                                net=request.net,
                                occupancy=occupancy,
                                history=self.history,
                                extra_obstacles=extra or None,
                                max_expansions=self.max_expansions,
                                budget=budget,
                            )
                        except BudgetExceeded:
                            result.aborted = True
                            path = None
                        finally:
                            edge_span.set(
                                astar_expansions=exp_counter.value
                                - spent_before,
                                routed=path is not None,
                            )
                    if path is not None and faults.fires(
                        "negotiation_edge_failure"
                    ):
                        path = None
                    if path is None:
                        failed.append(request.edge_id)
                        if result.aborted:
                            # Out of budget: every not-yet-routed edge of
                            # this iteration fails without further search.
                            routed = set(paths)
                            failed.extend(
                                r.edge_id
                                for r in requests
                                if r.edge_id not in routed
                                and r.edge_id not in failed
                            )
                            break
                        continue
                    paths[request.edge_id] = path
                    new_cells = [
                        c for c in path.cells if occupancy.owner(c) != request.net
                    ]
                    occupancy.occupy(new_cells, request.net)
                    added_cells.extend(new_cells)
                round_span.set(
                    routed=len(paths), failed=len(failed), aborted=result.aborted
                )

            if not failed:
                result.success = True
                result.paths = paths
                result.failed_edges = []
                return result

            if result.aborted or iteration >= self.gamma:
                # Give up: keep the final partial solution for the caller.
                result.paths = paths
                result.failed_edges = failed
                return result

            # Raise history cost along every path used this iteration
            # (Eq. 5), then rip everything up and try again.
            for path in paths.values():
                for cell in path:
                    idx = self.grid.index(cell)
                    self.history[idx] = self.base_cost + self.alpha * self.history[idx]
            occupancy.release_cells(added_cells)

        return result  # pragma: no cover - loop always returns earlier
