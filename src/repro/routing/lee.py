"""Lee (wave-propagation) maze router.

The classic BFS maze router: exact shortest paths on unit-cost grids,
no heuristic.  PACOR's production path uses A* (faster), but Lee serves
two purposes here:

* an independent *oracle* — on unit costs both routers must return
  paths of identical length, which the test suite exploits;
* a reference implementation of the algorithm the original detailed
  routers in this literature are built on.

The wave propagation itself is :func:`repro.routing.core.bfs_search` on
the same fused blocked-mask the A* kernel uses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.routing.core import bfs_search, query_space
from repro.routing.path import Path


def lee_route(
    grid: RoutingGrid,
    sources: Iterable[Point],
    targets: Iterable[Point],
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
) -> Optional[Path]:
    """BFS-route from any source to any target (unit step costs).

    Semantics match :func:`repro.routing.astar.astar_route` with no
    history costs: same blocking rules, same multi-source/multi-target
    interface, guaranteed-minimum path length.
    """
    space = query_space(
        grid, net=net, occupancy=occupancy, extra_obstacles=extra_obstacles
    )
    ids = bfs_search(space, sources, targets)
    if ids is None:
        return None
    return space.materialize(ids)
