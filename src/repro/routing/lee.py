"""Lee (wave-propagation) maze router.

The classic BFS maze router: exact shortest paths on unit-cost grids,
no heuristic.  PACOR's production path uses A* (faster), but Lee serves
two purposes here:

* an independent *oracle* — on unit costs both routers must return
  paths of identical length, which the test suite exploits;
* a reference implementation of the algorithm the original detailed
  routers in this literature are built on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.routing.path import Path


def lee_route(
    grid: RoutingGrid,
    sources: Iterable[Point],
    targets: Iterable[Point],
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Set[Point]] = None,
) -> Optional[Path]:
    """BFS-route from any source to any target (unit step costs).

    Semantics match :func:`repro.routing.astar.astar_route` with no
    history costs: same blocking rules, same multi-source/multi-target
    interface, guaranteed-minimum path length.
    """
    target_set = {Point(t[0], t[1]) for t in targets}
    source_list = [Point(s[0], s[1]) for s in sources]
    if not target_set or not source_list:
        return None

    def routable(p: Point) -> bool:
        if extra_obstacles is not None and p in extra_obstacles:
            return False
        if occupancy is not None:
            return occupancy.is_routable(p, net)
        return grid.is_free(p)

    parent: Dict[Point, Optional[Point]] = {}
    queue = deque()
    for s in source_list:
        if not routable(s) or s in parent:
            continue
        parent[s] = None
        if s in target_set:
            return Path([s])
        queue.append(s)

    while queue:
        p = queue.popleft()
        for q in p.neighbors4():
            if not grid.in_bounds(q) or q in parent or not routable(q):
                continue
            parent[q] = p
            if q in target_set:
                cells = [q]
                back: Optional[Point] = p
                while back is not None:
                    cells.append(back)
                    back = parent[back]
                cells.reverse()
                return Path(cells)
            queue.append(q)
    return None
