"""MST-based routing for ordinary (non-length-matching) clusters.

Clusters without the length-matching constraint only need connectivity:
a minimum spanning tree over the valve positions fixes the connection
topology, and each MST attachment is routed with a point-to-path A* query
against the already-routed net so the channel can tap any existing cell
(Section 3).  Valves whose attachment fails are reported so the flow can
*de-cluster* them into separate clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point, manhattan
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.astar import astar_route
from repro.routing.path import Path


def manhattan_mst(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Return MST edges over ``points`` under the Manhattan metric.

    Edges are ``(parent_index, child_index)`` pairs in the order Prim's
    algorithm attaches them, starting from index 0 — which is exactly the
    order in which the router should connect the valves.
    """
    n = len(points)
    if n <= 1:
        return []
    in_tree = [False] * n
    best_dist = [manhattan(points[0], p) for p in points]
    best_parent = [0] * n
    in_tree[0] = True
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        child = min(
            (i for i in range(n) if not in_tree[i]),
            key=lambda i: (best_dist[i], i),
        )
        edges.append((best_parent[child], child))
        in_tree[child] = True
        for i in range(n):
            if not in_tree[i]:
                d = manhattan(points[child], points[i])
                if d < best_dist[i]:
                    best_dist[i] = d
                    best_parent[i] = child
    return edges


@dataclass
class MstRoutingResult:
    """Outcome of routing one cluster with the MST method.

    Attributes:
        success: True when every valve was connected.
        paths: routed attachment paths, in attachment order.
        connected: indices (into the terminal list) that were connected.
        failed: indices that could not be attached (de-cluster these).
        aborted: True when the compute budget ran out mid-cluster; the
            remaining unattached terminals are reported in ``failed``.
    """

    success: bool
    paths: List[Path] = field(default_factory=list)
    connected: List[int] = field(default_factory=list)
    failed: List[int] = field(default_factory=list)
    aborted: bool = False


def route_cluster_mst(
    grid: RoutingGrid,
    occupancy: Occupancy,
    net: int,
    terminals: Sequence[Point],
    *,
    history: Optional[Sequence[float]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> MstRoutingResult:
    """Connect ``terminals`` into one net following the MST attach order.

    The first terminal seeds the net; every further terminal is routed to
    *any* cell of the net routed so far (point-to-path A*).  Successful
    paths are committed to ``occupancy`` under ``net``.  Terminals that
    cannot be attached are reported in ``failed`` and left untouched.
    """
    result = MstRoutingResult(success=True)
    if not terminals:
        return result

    # Seed the component with the first terminal cell.
    first = terminals[0]
    if not occupancy.is_routable(first, net):
        result.success = False
        result.failed = list(range(len(terminals)))
        return result
    if occupancy.owner(first) != net:
        occupancy.occupy([first], net)
    component: Set[Point] = {first}
    result.connected.append(0)

    order = [child for _, child in manhattan_mst(list(terminals))]
    for pos, idx in enumerate(order):
        terminal = terminals[idx]
        try:
            path = astar_route(
                grid,
                [terminal],
                component,
                net=net,
                occupancy=occupancy,
                history=history,
                max_expansions=max_expansions,
                budget=budget,
            )
        except BudgetExceeded:
            # Out of budget: fail this and every remaining attachment
            # softly so the caller can de-cluster and move on.
            result.aborted = True
            result.success = False
            result.failed.extend(order[pos:])
            break
        if path is None:
            result.failed.append(idx)
            result.success = False
            continue
        new_cells = [c for c in path.cells if occupancy.owner(c) != net]
        occupancy.occupy(new_cells, net)
        component.update(path.cells)
        result.paths.append(path)
        result.connected.append(idx)
    return result
