"""The shared search engine under all four routing kernels.

One frontier/parent/cost substrate serves Section 3's point/point,
point/path and path/path A* (and Algorithm 1's inner search, which adds
negotiation history costs), the Lee wave-propagation oracle, and §6's
bounded-length modified A*.  Every search here operates purely on
``int`` cell ids over a :class:`~repro.routing.core.space.SearchSpace`
blocked-mask — neighbours are ``±1`` / ``±width`` arithmetic, routability
is one byte read, and ``Point`` objects only reappear when the caller
materialises the returned id path.

Semantics are pinned to the pre-refactor kernels:

* neighbour order is East, West, South, North (the order
  ``Point.neighbors4`` yielded), so tie-breaks — and therefore the
  returned paths — are bit-identical;
* ``astar.expansions`` charges one per settled non-target cell, through
  :meth:`~repro.robustness.budget.Budget.charge_expansions` when a
  budget is present (the budget's shared counter stays the single
  tally) and flushed to the active metrics registry once per query
  otherwise;
* ``astar.heap_pushes`` counts real heap pushes — initial source seeds
  are *not* pushes (they were miscounted before this engine existed,
  skewing multi-source queries);
* ``bounded.states`` counts states popped past the target check,
  exactly as before.

The id sets used here only feed order-insensitive reductions (bounding
boxes, membership tests, idempotent mask writes), which is why this
package is whitelisted by pacorlint's DET003 set-iteration rule.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.core.space import SearchSpace

_INF = float("inf")

_PENALTY_WEIGHT = 2.0
"""Bounded search: F-value penalty per missing length unit below the bound."""

Cell = Tuple[int, int]
"""An ``(x, y)`` cell at the engine boundary (``Point`` unpacks to one)."""


def astar_search(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
    *,
    history: Optional[Sequence[float]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[List[int]]:
    """A*-route from any source cell to any target cell, on cell ids.

    Args:
        space: the query's fused routability view.
        sources: starting cells; each routable one seeds the search
            with cost 0.
        targets: goal cells; the search stops at the first one settled.
            The admissible L1 heuristic aims at the target bounding box
            (exact for a single target).
        history: per-cell negotiation history cost, flat array indexed
            by cell id; added to the step cost when entering a cell.
        max_expansions: optional per-query cap on settled cells; fails
            soft (returns None).
        budget: run-wide compute budget; every settled cell is charged
            and exhaustion raises :class:`BudgetExceeded`.

    Returns:
        The cheapest source-to-target path as a cell-id list, or None.

    Raises:
        BudgetExceeded: the run-wide ``budget`` ran out mid-search.
    """
    if budget is not None and faults.fires("astar_budget_exhaustion"):
        raise BudgetExceeded(
            "injected search-budget exhaustion",
            kind="astar-expansions",
            limit=budget.expansions_used,
            used=budget.expansions_used,
            stage="astar",
        )
    width = space.width
    height = space.height
    size = space.size
    blocked = space.blocked

    target_xy = {(t[0], t[1]) for t in targets}
    source_list = [(s[0], s[1]) for s in sources]
    if not target_xy or not source_list:
        return None
    # Membership is tested on settled (on-chip) cells only, so off-chip
    # targets never match — but they do stretch the heuristic bounding
    # box, exactly as they did pre-refactor.
    target_ids = {
        y * width + x for x, y in target_xy if 0 <= x < width and 0 <= y < height
    }
    xlo = min(t[0] for t in target_xy)
    xhi = max(t[0] for t in target_xy)
    ylo = min(t[1] for t in target_xy)
    yhi = max(t[1] for t in target_xy)

    best_g: Dict[int, float] = {}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, float, int, int]] = []
    tie = count()

    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < height):
            continue
        s = y * width + x
        if blocked[s]:
            continue
        if (x, y) in target_xy:
            return [s]
        best_g[s] = 0.0
        parent[s] = -1
        h = (
            (xlo - x if x < xlo else (x - xhi if x > xhi else 0))
            + (ylo - y if y < ylo else (y - yhi if y > yhi else 0))
        )
        heapq.heappush(heap, (h, 0.0, next(tie), s))

    # Expansion accounting is unified: with a budget, the budget's shared
    # counter (registered as ``astar.expansions`` in the metrics registry
    # by the router) is the single tally — ``max_expansions`` reads the
    # per-query delta off it.  Without a budget a local count is kept and
    # flushed to the active registry once per query, so the disabled-
    # metrics hot loop stays free of instrument calls.
    query_start = budget.expansions_used if budget is not None else 0
    expansions = 0
    pushes = 0
    push = heapq.heappush
    pop = heapq.heappop
    try:
        while heap:
            f, g, _, p = pop(heap)
            if g > best_g.get(p, _INF):
                continue
            if p in target_ids:
                ids = [p]
                back = parent[p]
                while back >= 0:
                    ids.append(back)
                    back = parent[back]
                ids.reverse()
                return ids
            if budget is not None:
                budget.charge_expansions(1)
                if (
                    max_expansions is not None
                    and budget.expansions_used - query_start > max_expansions
                ):
                    return None
            else:
                expansions += 1
                if max_expansions is not None and expansions > max_expansions:
                    return None
            xp = p % width
            # Neighbour order East, West, South, North (-1 flags an
            # off-chip East/West step; the bounds test below drops it).
            for q in (
                p + 1 if xp + 1 < width else -1,
                p - 1 if xp else -1,
                p + width,
                p - width,
            ):
                if q < 0 or q >= size or blocked[q]:
                    continue
                ng = g + (1.0 if history is None else 1.0 + history[q])
                if ng < best_g.get(q, _INF):
                    best_g[q] = ng
                    parent[q] = p
                    yq, xq = divmod(q, width)
                    h = (
                        (xlo - xq if xq < xlo else (xq - xhi if xq > xhi else 0))
                        + (ylo - yq if yq < ylo else (yq - yhi if yq > yhi else 0))
                    )
                    push(heap, (ng + h, ng, next(tie), q))
                    pushes += 1
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)


def bfs_search(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
) -> Optional[List[int]]:
    """BFS-route (Lee wave propagation) on cell ids, unit step costs.

    Same blocking rules and multi-source/multi-target interface as
    :func:`astar_search` with no history costs; the returned path has
    guaranteed-minimum length.
    """
    width = space.width
    height = space.height
    size = space.size
    blocked = space.blocked

    target_xy = {(t[0], t[1]) for t in targets}
    source_list = [(s[0], s[1]) for s in sources]
    if not target_xy or not source_list:
        return None
    target_ids = {
        y * width + x for x, y in target_xy if 0 <= x < width and 0 <= y < height
    }

    parent: Dict[int, int] = {}
    queue: deque = deque()
    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < height):
            continue
        s = y * width + x
        if blocked[s] or s in parent:
            continue
        parent[s] = -1
        if (x, y) in target_xy:
            return [s]
        queue.append(s)

    while queue:
        p = queue.popleft()
        xp = p % width
        for q in (
            p + 1 if xp + 1 < width else -1,
            p - 1 if xp else -1,
            p + width,
            p - width,
        ):
            if q < 0 or q >= size or q in parent or blocked[q]:
                continue
            parent[q] = p
            if q in target_ids:
                ids = [q]
                back = p
                while back >= 0:
                    ids.append(back)
                    back = parent[back]
                ids.reverse()
                return ids
            queue.append(q)
    return None


class _OwnCells:
    """Immutable cells-on-this-path id set, extended in O(1) amortised.

    Each bounded-search state must know its own path's cells to keep
    every reconstructed path simple.  Rebuilding that set per expansion
    walks the whole parent chain (O(path length) each time — quadratic
    over a long detour), so states share a frozen ``base`` set plus a
    short tuple of recent cell ids; the tuple is folded into a new base
    once it grows past ``_FLATTEN_AT``, keeping both membership tests
    and extension cheap while sibling states still share their prefix.
    """

    __slots__ = ("_base", "_extra")

    _FLATTEN_AT = 16

    def __init__(self, base: frozenset, extra: Tuple[int, ...]) -> None:
        self._base = base
        self._extra = extra

    @classmethod
    def single(cls, cid: int) -> "_OwnCells":
        return cls(frozenset((cid,)), ())

    def extended(self, cid: int) -> "_OwnCells":
        extra = self._extra + (cid,)
        if len(extra) >= self._FLATTEN_AT:
            return _OwnCells(self._base.union(extra), ())
        return _OwnCells(self._base, extra)

    def __contains__(self, cid: int) -> bool:
        return cid in self._base or cid in self._extra


def bounded_search(
    space: SearchSpace,
    source: Cell,
    target: Cell,
    min_length: int,
    max_length: int,
    *,
    max_states: int = 50_000,
) -> Optional[List[int]]:
    """Find a simple path with length in ``[min_length, max_length]``.

    The paper's modified A* (§6) on cell ids: the G value of a state
    records the path length from the source, the F value adds a penalty
    whenever the estimated total length falls below the bound, and
    states are keyed by ``(cell, g)`` so a cell may be revisited at a
    larger G.  Callers pre-check source/target routability and parity
    feasibility; this engine only explores.

    Returns the found cell-id path, or None when the search gives up
    (state budget exhausted or no such simple path exists).
    """
    width = space.width
    size = space.size
    blocked = space.blocked
    sx, sy = source[0], source[1]
    tx, ty = target[0], target[1]
    sid = sy * width + sx
    tid = ty * width + tx

    # States are (cell id, g); parents reconstruct one simple path per
    # state, ``own_of`` carries each state's cells-on-path set.
    start = (sid, 0)
    parent: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {start: None}
    own_of: Dict[Tuple[int, int], _OwnCells] = {start: _OwnCells.single(sid)}
    heap: List[Tuple[float, int, Tuple[int, int]]] = []
    tie = count()

    estimate = abs(sx - tx) + abs(sy - ty)
    f0 = float(estimate)
    if estimate < min_length:
        f0 += _PENALTY_WEIGHT * (min_length - estimate)
    heapq.heappush(heap, (f0, next(tie), start))
    states = 0

    try:
        while heap:
            _, _, state = heapq.heappop(heap)
            p, g = state
            if p == tid and min_length <= g <= max_length:
                ids: List[int] = []
                node: Optional[Tuple[int, int]] = state
                while node is not None:
                    ids.append(node[0])
                    node = parent[node]
                ids.reverse()
                if len(set(ids)) == len(ids):  # simple path only
                    return ids
                continue
            states += 1
            if states > max_states:
                return None
            if g >= max_length:
                continue
            # Cells already on this state's own path are forbidden so
            # every reconstructed path stays simple.
            own = own_of[state]
            ng = g + 1
            xp = p % width
            for q in (
                p + 1 if xp + 1 < width else -1,
                p - 1 if xp else -1,
                p + width,
                p - width,
            ):
                if q < 0 or q >= size or blocked[q] or q in own:
                    continue
                yq, xq = divmod(q, width)
                remaining = abs(xq - tx) + abs(yq - ty)
                if ng + remaining > max_length:
                    continue
                nstate = (q, ng)
                if nstate in parent:
                    continue
                parent[nstate] = state
                own_of[nstate] = own.extended(q)
                estimate = ng + remaining
                f = float(estimate)
                if estimate < min_length:
                    f += _PENALTY_WEIGHT * (min_length - estimate)
                heapq.heappush(heap, (f, next(tie), nstate))
        return None
    finally:
        if states:
            obs.counter("bounded.states").inc(states)
