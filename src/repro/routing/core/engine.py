"""The shared search engine under all four routing kernels.

One frontier/parent/cost substrate serves Section 3's point/point,
point/path and path/path A* (and Algorithm 1's inner search, which adds
negotiation history costs), the Lee wave-propagation oracle, and §6's
bounded-length modified A*.  Every search here operates purely on
``int`` cell ids over a :class:`~repro.routing.core.space.SearchSpace`
blocked-mask — neighbours are ``±1`` / ``±width`` arithmetic, routability
is one mask read, and ``Point`` objects only reappear when the caller
materialises the returned id path.

Two engines back :func:`astar_search`.  Unit-cost queries (no history
surcharge, no budget limit to enforce mid-bucket) run the *vectorised
wave* engine: the open set is a heap of ``(f, g)`` bucket keys, each
bucket holding ndarray chunks of cell ids in push order, and a whole
bucket's frontier is expanded with batched numpy gathers — neighbour
generation, blocking, relaxation and first-arrival dedup are all
C-speed array ops.  History-weighted or budget-limited queries run the
*scalar* heap engine (also the reference implementation the property
tests compare against), which keeps the classic per-cell loop but reads
the mask through a ``memoryview`` and looks heuristics up in a
precomputed ndarray table.  Both engines produce bit-identical paths
and counters: bucket FIFO order equals the scalar heap's
``(f, g, tie)`` order because ties only ever break by push time, and
first-occurrence ``np.unique`` dedup equals scalar first-relax-wins.

Semantics are pinned to the pre-refactor kernels:

* neighbour order is East, West, South, North (the order
  ``Point.neighbors4`` yielded), so tie-breaks — and therefore the
  returned paths — are bit-identical;
* ``astar.expansions`` charges one per settled non-target cell, through
  :meth:`~repro.robustness.budget.Budget.charge_expansions` when a
  budget is present (the budget's shared counter stays the single
  tally) and flushed to the active metrics registry once per query
  otherwise;
* ``astar.heap_pushes`` counts real heap pushes — initial source seeds
  are *not* pushes (they were miscounted before this engine existed,
  skewing multi-source queries);
* ``bounded.states`` counts states popped past the target check,
  exactly as before; ``bounded.reopened`` counts searches that drained
  their ``(cell, g)`` state graph without an answer and re-ran with
  own-set-disambiguated states (the completeness fallback).

The id sets used here only feed order-insensitive reductions (bounding
boxes, membership tests, idempotent mask writes), which is why this
package is whitelisted by pacorlint's DET003 set-iteration rule.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded
from repro.routing.core.space import SearchSpace

_INF = float("inf")

_UNSEEN32 = 2**30
"""Unvisited sentinel in the wave engine's int32 best-g array."""

_SMALL_BUCKET = 12
"""Wave buckets at or below this size run the per-cell sub-loop.

Each vectorised bucket step costs a fixed ~25 numpy dispatches; below
roughly a dozen cells the plain Python loop over the same state arrays
is cheaper.  Both paths settle cells in identical order, so the
threshold is pure tuning."""

_GUARD_NOTE = """Guard-row indexing convention.

Wave-engine state arrays are allocated ``size + width`` long: the last
``width`` slots are a guard zone holding the blocked sentinel.  Every
off-chip neighbour candidate then lands in the guard without a bounds
test: a south step from the last row computes ``p + width`` in
``[size, size + width)`` directly; a north step from row 0 computes a
negative id in ``[-width, -1]``, which numpy fancy indexing (and Python
``memoryview`` indexing) wraps to the guard zone; east/west steps off
the column edges are stored as ``-1`` in the neighbour table, wrapping
to the guard's last slot.  Blocked cells hold the same sentinel, so one
``best_g > g'`` comparison implements bounds + blocked + relaxation."""


_NBR_TABLES: Dict[Tuple[int, int], "np.ndarray"] = {}
"""Per-(width, height) neighbour table: row ``p`` = E/W/S/N candidates.

E/W hold ``-1`` where the step leaves the column range; S/N hold the
raw ``p ± width``, resolved by the guard zone (see ``_GUARD_NOTE``)."""

_NBR3_TABLES: Dict[Tuple[int, int, int, bytes], "np.ndarray"] = {}
"""Multi-layer neighbour tables: row ``p`` = E/W/S/N/U/D candidates.

Unlike the planar table, *every* invalid move is an explicit ``-1``
(S/N included — ``p ± width`` would silently wrap across layers), so
3D state arrays need only a single guard slot at index ``size``.  U/D
are gated by the grid's planar via-permission mask, which is part of
the cache key (as raw bytes) so a carved via keep-out can never alias
a stale table."""

_NBR3_CACHE_MAX = 8

_HTAB_CACHE: Dict[Tuple[int, int, int, int, int, int], "np.ndarray"] = {}
"""Memoised heuristic tables keyed by (width, height, target bbox)."""

_HTAB_CACHE_MAX = 128


def _nbr_table(width: int, height: int) -> "np.ndarray":
    """Return the cached ``(size, 4)`` E/W/S/N neighbour-id table."""
    table = _NBR_TABLES.get((width, height))
    if table is None:
        size = width * height
        ids = np.arange(size, dtype=np.int32)
        table = np.empty((size, 4), dtype=np.int32)
        table[:, 0] = ids + 1
        table[:, 1] = ids - 1
        table[:, 2] = ids + width
        table[:, 3] = ids - width
        xs = ids % width
        table[xs == width - 1, 0] = -1
        table[xs == 0, 1] = -1
        _NBR_TABLES[(width, height)] = table
    return table


def _nbr_table3(
    width: int, height: int, layers: int, via_mask: "np.ndarray"
) -> "np.ndarray":
    """Return the cached ``(size, 6)`` E/W/S/N/U/D neighbour-id table."""
    key = (width, height, layers, via_mask.tobytes())
    table = _NBR3_TABLES.get(key)
    if table is None:
        if len(_NBR3_TABLES) >= _NBR3_CACHE_MAX:
            _NBR3_TABLES.clear()
        plane = width * height
        size = plane * layers
        ids = np.arange(size, dtype=np.int32)
        table = np.empty((size, 6), dtype=np.int32)
        table[:, 0] = ids + 1
        table[:, 1] = ids - 1
        table[:, 2] = ids + width
        table[:, 3] = ids - width
        table[:, 4] = ids + plane
        table[:, 5] = ids - plane
        xs = ids % width
        ys = (ids // width) % height
        zs = ids // plane
        table[xs == width - 1, 0] = -1
        table[xs == 0, 1] = -1
        table[ys == height - 1, 2] = -1
        table[ys == 0, 3] = -1
        no_via = np.tile(via_mask == 0, layers)
        table[(zs == layers - 1) | no_via, 4] = -1
        table[(zs == 0) | no_via, 5] = -1
        _NBR3_TABLES[key] = table
    return table


def _htab_cached(
    width: int, height: int, xlo: int, xhi: int, ylo: int, yhi: int
) -> "np.ndarray":
    """Memoised :func:`_heuristic_table` (negotiation re-queries the same
    edges every rip-up round)."""
    key = (width, height, xlo, xhi, ylo, yhi)
    table = _HTAB_CACHE.get(key)
    if table is None:
        if len(_HTAB_CACHE) >= _HTAB_CACHE_MAX:
            _HTAB_CACHE.clear()
        table = _heuristic_table(width, height, xlo, xhi, ylo, yhi)
        _HTAB_CACHE[key] = table
    return table


def _charge_exact(budget: Budget, n: int) -> None:
    """Charge ``n`` expansions with scalar-exact exhaustion semantics.

    When the batch would cross the expansion limit, charge singly so the
    raised ``BudgetExceeded`` carries ``used == limit + 1`` — the exact
    cell the per-pop reference loop would have died on."""
    limit = budget.astar_expansions
    if limit is not None and budget.expansions_used + n > limit:
        for _ in range(n):
            budget.charge_expansions(1)
        return
    budget.charge_expansions(n)

_PENALTY_WEIGHT = 2.0
"""Bounded search: F-value penalty per missing length unit below the bound."""

Cell = Tuple[int, int]
"""An ``(x, y)`` cell at the engine boundary (``Point`` unpacks to one).

Multi-layer queries may pass ``(x, y, z)`` triples; a 2-tuple is always
layer 0 (the canonical mixed-arity cell rule)."""


def _heuristic_table(
    width: int, height: int, xlo: int, xhi: int, ylo: int, yhi: int
) -> "np.ndarray":
    """Return the per-cell L1 distance to the target bounding box (int32)."""
    xs = np.arange(width, dtype=np.int32)
    hx = np.maximum(xlo - xs, 0) + np.maximum(xs - xhi, 0)
    ys = np.arange(height, dtype=np.int32)
    hy = np.maximum(ylo - ys, 0) + np.maximum(ys - yhi, 0)
    return np.ascontiguousarray((hy[:, None] + hx[None, :]).reshape(-1))


def _heuristic_table3(
    width: int,
    height: int,
    layers: int,
    bbox: Tuple[int, int, int, int, int, int],
    step_z: int,
) -> "np.ndarray":
    """Return the layered heuristic table: planar bbox L1 + weighted z.

    Each search step either shrinks the planar distance by at most 1 (at
    cost 1) or the layer distance by at most 1 (at cost ``step_z``), so
    ``planar_L1 + step_z * z_distance`` is an admissible, consistent
    lower bound whenever ``step_z`` is the true vertical step cost.
    Memoised alongside the planar tables (the key arities differ, so the
    two families never collide).
    """
    xlo, xhi, ylo, yhi, zlo, zhi = bbox
    key = (width, height, layers, xlo, xhi, ylo, yhi, zlo, zhi, step_z)
    table = _HTAB_CACHE.get(key)
    if table is None:
        if len(_HTAB_CACHE) >= _HTAB_CACHE_MAX:
            _HTAB_CACHE.clear()
        hxy = _heuristic_table(width, height, xlo, xhi, ylo, yhi)
        zs = np.arange(layers, dtype=np.int32)
        hz = (np.maximum(zlo - zs, 0) + np.maximum(zs - zhi, 0)) * np.int32(
            step_z
        )
        table = np.ascontiguousarray(
            (hz[:, None] + hxy[None, :]).reshape(-1)
        )
        _HTAB_CACHE[key] = table
    return table


def _cell3(c: Cell) -> Tuple[int, int, int]:
    """Normalise a mixed-arity cell to an ``(x, y, z)`` triple."""
    if len(c) == 3:
        return (c[0], c[1], c[2])
    return (c[0], c[1], 0)


def _target_setup3(
    space: SearchSpace, target_xyz: set
) -> Tuple[set, Tuple[int, int, int, int, int, int]]:
    """Return (on-chip target ids, heuristic bbox) for 3D targets.

    The 3D analogue of :func:`_target_setup`: membership is tested on
    settled cells only, off-chip targets just stretch the bounding box.
    """
    width = space.width
    height = space.height
    layers = space.layers
    plane = space.plane
    target_ids = {
        z * plane + y * width + x
        for x, y, z in target_xyz
        if 0 <= x < width and 0 <= y < height and 0 <= z < layers
    }
    xlo = min(t[0] for t in target_xyz)
    xhi = max(t[0] for t in target_xyz)
    ylo = min(t[1] for t in target_xyz)
    yhi = max(t[1] for t in target_xyz)
    zlo = min(t[2] for t in target_xyz)
    zhi = max(t[2] for t in target_xyz)
    return target_ids, (xlo, xhi, ylo, yhi, zlo, zhi)


def astar_search(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
    *,
    history: Optional[Sequence[float]] = None,
    max_expansions: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[List[int]]:
    """A*-route from any source cell to any target cell, on cell ids.

    Args:
        space: the query's fused routability view.
        sources: starting cells; each routable one seeds the search
            with cost 0.
        targets: goal cells; the search stops at the first one settled.
            The admissible L1 heuristic aims at the target bounding box
            (exact for a single target).
        history: per-cell negotiation history cost, flat array indexed
            by cell id; added to the step cost when entering a cell.
        max_expansions: optional per-query cap on settled cells; fails
            soft (returns None).
        budget: run-wide compute budget; every settled cell is charged
            and exhaustion raises :class:`BudgetExceeded`.

    Returns:
        The cheapest source-to-target path as a cell-id list, or None.

    Raises:
        BudgetExceeded: the run-wide ``budget`` ran out mid-search.
    """
    if budget is not None and faults.fires("astar_budget_exhaustion"):
        raise BudgetExceeded(
            "injected search-budget exhaustion",
            kind="astar-expansions",
            limit=budget.expansions_used,
            used=budget.expansions_used,
            stage="astar",
        )
    if space.layers > 1:
        target_xyz = {_cell3(t) for t in targets}
        source_xyz = [_cell3(s) for s in sources]
        if not target_xyz or not source_xyz:
            return None
        if history is None and space.grid.via_cost == 1:
            # Unit costs in every direction: the (f, g) integer-bucket
            # wave engine applies unchanged to the 6-neighbour topology.
            return _astar_wave3(
                space, source_xyz, target_xyz, max_expansions, budget
            )
        # Weighted via steps (or history floats) break integer
        # bucketing; the scalar heap handles both.
        return _astar_scalar3(
            space, source_xyz, target_xyz, history, max_expansions, budget
        )
    target_xy = {(t[0], t[1]) for t in targets}
    source_list = [(s[0], s[1]) for s in sources]
    if not target_xy or not source_list:
        return None
    if history is None:
        # Unit step costs: the vectorised wave engine settles whole
        # (f, g) buckets per step.  Budget limits keep scalar-exact
        # exhaustion points via _charge_exact.
        return _astar_wave(
            space, source_list, target_xy, max_expansions, budget
        )
    # History surcharges make step costs per-cell floats; (f, g) buckets
    # degenerate to singletons there, so the scalar loop is the engine.
    return _astar_scalar(
        space, source_list, target_xy, history, max_expansions, budget
    )


def _target_setup(
    space: SearchSpace, target_xy: set
) -> Tuple[set, int, int, int, int]:
    """Return (on-chip target ids, heuristic bbox) for a target set.

    Membership is tested on settled (on-chip) cells only, so off-chip
    targets never match — but they do stretch the heuristic bounding
    box, exactly as they did pre-refactor.
    """
    width = space.width
    height = space.height
    target_ids = {
        y * width + x for x, y in target_xy if 0 <= x < width and 0 <= y < height
    }
    xlo = min(t[0] for t in target_xy)
    xhi = max(t[0] for t in target_xy)
    ylo = min(t[1] for t in target_xy)
    yhi = max(t[1] for t in target_xy)
    return target_ids, xlo, xhi, ylo, yhi


def _astar_scalar(
    space: SearchSpace,
    source_list: List[Cell],
    target_xy: set,
    history: Optional[Sequence[float]],
    max_expansions: Optional[int],
    budget: Optional[Budget],
) -> Optional[List[int]]:
    """The reference heap engine: per-cell loop, exact budget semantics."""
    width = space.width
    height = space.height
    size = space.size

    target_ids, xlo, xhi, ylo, yhi = _target_setup(space, target_xy)
    # Heuristic lookups move out of the hot loop into one vectorised
    # table build; the int32 memoryview makes the per-push read a plain
    # C buffer index instead of an ndarray scalar access.
    htab = _heuristic_table(width, height, xlo, xhi, ylo, yhi).data
    nbr_mv = memoryview(_nbr_table(width, height).reshape(-1))

    # Guard-zone best-g array (see _GUARD_NOTE): blocked and off-grid
    # slots hold -inf, so one ``best_g[q]`` read folds the bounds test,
    # the blocked test and the relaxation test into a float compare.
    best_g = np.full(size + width, _INF, dtype=np.float64)
    best_g[size:] = -_INF
    best_g[:size][space.blocked.view(np.bool_)] = -_INF
    bg_mv = best_g.data
    parent = np.empty(size, dtype=np.int32)
    parent_mv = parent.data
    heap: List[Tuple[float, float, int, int]] = []
    tie = 0

    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < height):
            continue
        s = y * width + x
        if bg_mv[s] == -_INF:
            continue
        if (x, y) in target_xy:
            return [s]
        bg_mv[s] = 0.0
        parent_mv[s] = -1
        heapq.heappush(heap, (htab[s], 0.0, tie, s))
        tie += 1

    # Expansion accounting is unified: with a budget, the budget's shared
    # counter (registered as ``astar.expansions`` in the metrics registry
    # by the router) is the single tally — ``max_expansions`` reads the
    # per-query delta off it.  Without a budget a local count is kept and
    # flushed to the active registry once per query, so the disabled-
    # metrics hot loop stays free of instrument calls.
    query_start = budget.expansions_used if budget is not None else 0
    expansions = 0
    pushes = 0
    push = heapq.heappush
    pop = heapq.heappop
    ninf = -_INF
    try:
        while heap:
            f, g, _, p = pop(heap)
            if g > bg_mv[p]:
                continue
            if p in target_ids:
                ids = [p]
                back = parent_mv[p]
                while back >= 0:
                    ids.append(back)
                    back = parent_mv[back]
                ids.reverse()
                return ids
            if budget is not None:
                budget.charge_expansions(1)
                if (
                    max_expansions is not None
                    and budget.expansions_used - query_start > max_expansions
                ):
                    return None
            else:
                expansions += 1
                if max_expansions is not None and expansions > max_expansions:
                    return None
            base = 4 * p
            g1 = g + 1.0
            # Neighbour order East, West, South, North; every off-chip or
            # blocked candidate lands on a -inf best-g slot and is
            # dropped before its history cost is even read.
            for k in range(4):
                q = nbr_mv[base + k]
                bq = bg_mv[q]
                if bq == ninf:
                    continue
                ng = g1 if history is None else g + (1.0 + history[q])
                if ng < bq:
                    bg_mv[q] = ng
                    parent_mv[q] = p
                    push(heap, (ng + htab[q], ng, tie, q))
                    tie += 1
                    pushes += 1
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)


def _astar_wave(
    space: SearchSpace,
    source_list: List[Cell],
    target_xy: set,
    max_expansions: Optional[int],
    budget: Optional[Budget],
) -> Optional[List[int]]:
    """Vectorised unit-cost A*: settle whole (f, g) buckets per step.

    Exactly equivalent to :func:`_astar_scalar` with ``history=None``:

    * the scalar heap orders entries by ``(f, g, push-time)``; here the
      key heap orders ``(f, g)`` buckets and each bucket keeps push
      order, so the settle order is identical (all entries of a bucket
      are pushed before the first is popped — predecessors have
      strictly smaller ``(f, g)`` keys);
    * within one batch, candidates are generated parent-major in
      E/W/S/N order — the scalar push order — and the first-occurrence
      scatter dedup reproduces scalar first-relax-wins;
    * stale heap entries (cell relaxed to a smaller g after the push)
      are dropped by the ``best_g[cells] == g`` liveness filter, which
      is the scalar ``g > best_g`` skip;
    * expansions are charged per settled non-target cell in settle
      order, so budget exhaustion (see :func:`_charge_exact`) and the
      ``max_expansions`` fail-soft point land on exactly the same cell
      as the scalar loop.

    State arrays carry a blocked-sentinel guard zone (``_GUARD_NOTE``),
    which folds the bounds test, the blocked test and the relaxation
    test into a single ``best_g[q] > g + 1`` comparison.  Buckets at or
    below ``_SMALL_BUCKET`` cells run a per-cell Python sub-loop over
    the same arrays instead of paying ~25 fixed numpy dispatches.
    """
    width = space.width
    size = space.size
    blocked = space.blocked

    target_ids, xlo, xhi, ylo, yhi = _target_setup(space, target_xy)
    htab = _htab_cached(width, space.height, xlo, xhi, ylo, yhi)
    htab_mv = htab.data
    nbr = _nbr_table(width, space.height)
    nbr_flat_mv = nbr.reshape(-1).data

    # Target detection: with a handful of targets, a per-bucket Python
    # membership probe (is a target's best_g == g, and its f this f?)
    # beats allocating and gathering a whole target mask.
    target_tuple = tuple(sorted(target_ids))
    tmask: Optional["np.ndarray"] = None
    if len(target_tuple) > 8:
        tmask = np.zeros(size, dtype=np.uint8)
        tmask[_as_ids(target_ids)] = 1

    # best_g with guard zone: UNSEEN on open cells, -1 on blocked cells
    # and the guard, so ``best_g[q] > ng`` is the whole neighbour test.
    best_g = np.empty(size + width, dtype=np.int32)
    best_g[:size] = _UNSEEN32
    best_g[size:] = -1
    best_g[:size][blocked.view(np.bool_)] = -1
    bg_mv = best_g.data
    parent = np.empty(size, dtype=np.int32)
    parent_mv = parent.data
    stamp = np.empty(size, dtype=np.intp)

    # Buckets keyed by (f, g): ndarray chunks plus a Python-list tail
    # (the small-bucket sub-loop appends single ids), both in push
    # order.  A key enters the heap exactly once, at bucket creation.
    buckets: Dict[Tuple[int, int], List["np.ndarray"]] = {}
    tails: Dict[Tuple[int, int], List[int]] = {}
    key_heap: List[Tuple[int, int]] = []
    pop = heapq.heappop
    push = heapq.heappush

    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < space.height):
            continue
        s = y * width + x
        if bg_mv[s] == -1:
            continue
        if (x, y) in target_xy:
            return [s]
        best_g[s] = 0
        parent[s] = -1
        key = (htab_mv[s], 0)
        tail = tails.get(key)
        if tail is None:
            buckets[key] = []
            tails[key] = [s]
            push(key_heap, key)
        else:
            tail.append(s)

    expansions = 0
    pushes = 0
    try:
        while key_heap:
            key = pop(key_heap)
            chunks = buckets.pop(key)
            tail = tails.pop(key, None)
            f, g = key
            ng = g + 1
            if chunks:
                n_raw = int(chunks[0].size) if len(chunks) == 1 else sum(
                    int(c.size) for c in chunks
                )
            else:
                n_raw = 0
            if tail:
                n_raw += len(tail)

            if n_raw <= _SMALL_BUCKET:
                # Per-cell sub-loop: same arrays, same settle order.
                cells_py: List[int] = []
                for chunk in chunks:
                    cells_py.extend(chunk.tolist())
                if tail:
                    cells_py.extend(tail)
                for p in cells_py:
                    if bg_mv[p] != g:
                        continue
                    if p in target_ids:
                        ids = [p]
                        back = parent_mv[p]
                        while back >= 0:
                            ids.append(back)
                            back = parent_mv[back]
                        ids.reverse()
                        return ids
                    expansions += 1
                    if budget is not None:
                        budget.charge_expansions(1)
                    if (
                        max_expansions is not None
                        and expansions > max_expansions
                    ):
                        return None
                    base = 4 * p
                    for k in range(4):
                        q = nbr_flat_mv[base + k]
                        if bg_mv[q] <= ng:
                            continue
                        bg_mv[q] = ng
                        parent_mv[q] = p
                        pushes += 1
                        nkey = (ng + htab_mv[q], ng)
                        ntail = tails.get(nkey)
                        if ntail is None:
                            buckets[nkey] = []
                            tails[nkey] = [q]
                            push(key_heap, nkey)
                        else:
                            ntail.append(q)
                continue

            if tail:
                chunks.append(np.asarray(tail, dtype=np.int32))
            cells = (
                chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            )
            lmask = best_g[cells] == g
            live = cells if lmask.all() else cells[lmask]
            n_live = int(live.size)
            if not n_live:
                continue
            # First settled target, if any: probe the few targets
            # directly (one is in this bucket iff it was relaxed to g
            # and its f-key is this bucket's f), or gather the mask.
            jt: Optional[int] = None
            if tmask is None:
                for t in target_tuple:
                    if bg_mv[t] == g and f == g + htab_mv[t]:
                        pos = int((live == t).argmax())
                        if jt is None or pos < jt:
                            jt = pos
            else:
                hits = tmask[live]
                if hits.any():
                    jt = int(np.argmax(hits))
            # Charge exactly what the scalar loop would have: the cells
            # settled before the first target hit (or before the cap
            # tripped).  ``max_expansions`` fails soft on the same cell.
            allowance = (
                None if max_expansions is None else max_expansions - expansions
            )
            if jt is not None and (allowance is None or jt <= allowance):
                if jt:
                    expansions += jt
                    if budget is not None:
                        _charge_exact(budget, jt)
                t = int(live[jt])
                ids = [t]
                back = parent_mv[t]
                while back >= 0:
                    ids.append(back)
                    back = parent_mv[back]
                ids.reverse()
                return ids
            settled = n_live if jt is None else jt
            if allowance is not None and settled > allowance:
                charge = allowance + 1
                expansions += charge
                if budget is not None:
                    _charge_exact(budget, charge)
                return None
            expansions += settled
            if budget is not None and settled:
                _charge_exact(budget, settled)

            # Expand the whole bucket: one 2D gather yields neighbours
            # parent-major in E/W/S/N order; the guard zone absorbs
            # off-chip candidates (see _GUARD_NOTE).
            flat = nbr[live].reshape(-1)
            keep = (best_g[flat] > ng).nonzero()[0]
            if not keep.size:
                continue
            q = flat[keep]
            # First-occurrence dedup without a sort: reversed scatter
            # makes the earliest write win, then survivors are the
            # positions that read their own index back.
            stamp[q[::-1]] = keep[::-1]
            sel = (stamp[q] == keep).nonzero()[0]
            if sel.size != q.size:
                q = q[sel]
                keep = keep[sel]
            best_g[q] = ng
            parent[q] = live[keep >> 2]
            pushes += int(q.size)
            fq = htab[q] + ng
            fmin = int(fq.min())
            fmax = int(fq.max())
            if fmin == fmax:
                _wave_push(buckets, tails, key_heap, (fmin, ng), q)
            else:
                # The bbox-L1 heuristic moves at most 1 per step, so a
                # bucket spreads over at most f, f+1, f+2.
                for fv in range(fmin, fmax + 1):
                    m2 = fq == fv
                    if m2.any():
                        _wave_push(
                            buckets, tails, key_heap, (fv, ng), q[m2]
                        )
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)


def _wave_push(
    buckets: Dict[Tuple[int, int], List["np.ndarray"]],
    tails: Dict[Tuple[int, int], List[int]],
    key_heap: List[Tuple[int, int]],
    key: Tuple[int, int],
    chunk: "np.ndarray",
) -> None:
    """Append a chunk to a bucket, preserving arrival order.

    Single-id pushes from the small-bucket sub-loop accumulate in the
    bucket's Python-list tail; an array chunk arriving later flushes
    that tail first so the bucket's contents stay in push order.
    """
    tail = tails.get(key)
    if tail is None:
        buckets[key] = [chunk]
        tails[key] = []
        heapq.heappush(key_heap, key)
        return
    bucket = buckets[key]
    if tail:
        bucket.append(np.asarray(tail, dtype=np.int32))
        tail.clear()
    bucket.append(chunk)


def _as_ids(ids: Iterable[int]) -> "np.ndarray":
    """Return an int64 index array over a small id collection."""
    seq = ids if isinstance(ids, (list, tuple, set, frozenset)) else list(ids)
    return np.fromiter(seq, dtype=np.int64, count=len(seq))


def _astar_scalar3(
    space: SearchSpace,
    source_xyz: List[Tuple[int, int, int]],
    target_xyz: set,
    history: Optional[Sequence[float]],
    max_expansions: Optional[int],
    budget: Optional[Budget],
) -> Optional[List[int]]:
    """The scalar heap engine on the 6-neighbour multi-layer topology.

    Mirrors :func:`_astar_scalar` with two differences: the neighbour
    table carries explicit ``-1`` for *every* invalid move (so the
    guard zone is a single sentinel slot at index ``size``), and the
    two vertical moves cost ``grid.via_cost`` instead of 1.  Neighbour
    order is E/W/S/N then Up/Down, so planar tie-breaks match the
    single-layer engine.
    """
    grid = space.grid
    width = space.width
    height = space.height
    layers = space.layers
    plane = space.plane
    size = space.size
    via_cost = float(grid.via_cost)

    target_ids, bbox = _target_setup3(space, target_xyz)
    htab = _heuristic_table3(width, height, layers, bbox, grid.via_cost).data
    nbr_mv = memoryview(
        _nbr_table3(width, height, layers, grid.via_mask()).reshape(-1)
    )

    # Single guard slot: every invalid move is -1, which wraps to index
    # ``size`` under memoryview indexing.
    best_g = np.full(size + 1, _INF, dtype=np.float64)
    best_g[size] = -_INF
    best_g[:size][space.blocked.view(np.bool_)] = -_INF
    bg_mv = best_g.data
    parent = np.empty(size, dtype=np.int32)
    parent_mv = parent.data
    heap: List[Tuple[float, float, int, int]] = []
    tie = 0

    for x, y, z in source_xyz:
        if not (0 <= x < width and 0 <= y < height and 0 <= z < layers):
            continue
        s = z * plane + y * width + x
        if bg_mv[s] == -_INF:
            continue
        if (x, y, z) in target_xyz:
            return [s]
        bg_mv[s] = 0.0
        parent_mv[s] = -1
        heapq.heappush(heap, (float(htab[s]), 0.0, tie, s))
        tie += 1

    query_start = budget.expansions_used if budget is not None else 0
    expansions = 0
    pushes = 0
    push = heapq.heappush
    pop = heapq.heappop
    ninf = -_INF
    try:
        while heap:
            f, g, _, p = pop(heap)
            if g > bg_mv[p]:
                continue
            if p in target_ids:
                ids = [p]
                back = parent_mv[p]
                while back >= 0:
                    ids.append(back)
                    back = parent_mv[back]
                ids.reverse()
                return ids
            if budget is not None:
                budget.charge_expansions(1)
                if (
                    max_expansions is not None
                    and budget.expansions_used - query_start > max_expansions
                ):
                    return None
            else:
                expansions += 1
                if max_expansions is not None and expansions > max_expansions:
                    return None
            base = 6 * p
            for k in range(6):
                q = nbr_mv[base + k]
                bq = bg_mv[q]
                if bq == ninf:
                    continue
                step = 1.0 if k < 4 else via_cost
                ng = g + step if history is None else g + step + history[q]
                if ng < bq:
                    bg_mv[q] = ng
                    parent_mv[q] = p
                    push(heap, (ng + htab[q], ng, tie, q))
                    tie += 1
                    pushes += 1
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)


def _astar_wave3(
    space: SearchSpace,
    source_xyz: List[Tuple[int, int, int]],
    target_xyz: set,
    max_expansions: Optional[int],
    budget: Optional[Budget],
) -> Optional[List[int]]:
    """Vectorised unit-cost A* on the 6-neighbour multi-layer topology.

    Only dispatched when ``grid.via_cost == 1`` — integer (f, g) buckets
    require every step to cost exactly 1.  Mirrors :func:`_astar_wave`
    with a six-column neighbour gather (``parent = live[keep // 6]``)
    and a one-slot guard (all invalid moves are explicit ``-1``).
    """
    grid = space.grid
    width = space.width
    height = space.height
    layers = space.layers
    plane = space.plane
    size = space.size
    blocked = space.blocked

    target_ids, bbox = _target_setup3(space, target_xyz)
    htab = _heuristic_table3(width, height, layers, bbox, 1)
    htab_mv = htab.data
    nbr = _nbr_table3(width, height, layers, grid.via_mask())
    nbr_flat_mv = nbr.reshape(-1).data

    target_tuple = tuple(sorted(target_ids))
    tmask: Optional["np.ndarray"] = None
    if len(target_tuple) > 8:
        tmask = np.zeros(size, dtype=np.uint8)
        tmask[_as_ids(target_ids)] = 1

    best_g = np.empty(size + 1, dtype=np.int32)
    best_g[:size] = _UNSEEN32
    best_g[size] = -1
    best_g[:size][blocked.view(np.bool_)] = -1
    bg_mv = best_g.data
    parent = np.empty(size, dtype=np.int32)
    parent_mv = parent.data
    stamp = np.empty(size, dtype=np.intp)

    buckets: Dict[Tuple[int, int], List["np.ndarray"]] = {}
    tails: Dict[Tuple[int, int], List[int]] = {}
    key_heap: List[Tuple[int, int]] = []
    pop = heapq.heappop
    push = heapq.heappush

    for x, y, z in source_xyz:
        if not (0 <= x < width and 0 <= y < height and 0 <= z < layers):
            continue
        s = z * plane + y * width + x
        if bg_mv[s] == -1:
            continue
        if (x, y, z) in target_xyz:
            return [s]
        best_g[s] = 0
        parent[s] = -1
        key = (htab_mv[s], 0)
        tail = tails.get(key)
        if tail is None:
            buckets[key] = []
            tails[key] = [s]
            push(key_heap, key)
        else:
            tail.append(s)

    expansions = 0
    pushes = 0
    try:
        while key_heap:
            key = pop(key_heap)
            chunks = buckets.pop(key)
            tail = tails.pop(key, None)
            f, g = key
            ng = g + 1
            if chunks:
                n_raw = int(chunks[0].size) if len(chunks) == 1 else sum(
                    int(c.size) for c in chunks
                )
            else:
                n_raw = 0
            if tail:
                n_raw += len(tail)

            if n_raw <= _SMALL_BUCKET:
                cells_py: List[int] = []
                for chunk in chunks:
                    cells_py.extend(chunk.tolist())
                if tail:
                    cells_py.extend(tail)
                for p in cells_py:
                    if bg_mv[p] != g:
                        continue
                    if p in target_ids:
                        ids = [p]
                        back = parent_mv[p]
                        while back >= 0:
                            ids.append(back)
                            back = parent_mv[back]
                        ids.reverse()
                        return ids
                    expansions += 1
                    if budget is not None:
                        budget.charge_expansions(1)
                    if (
                        max_expansions is not None
                        and expansions > max_expansions
                    ):
                        return None
                    base = 6 * p
                    for k in range(6):
                        q = nbr_flat_mv[base + k]
                        if bg_mv[q] <= ng:
                            continue
                        bg_mv[q] = ng
                        parent_mv[q] = p
                        pushes += 1
                        nkey = (ng + htab_mv[q], ng)
                        ntail = tails.get(nkey)
                        if ntail is None:
                            buckets[nkey] = []
                            tails[nkey] = [q]
                            push(key_heap, nkey)
                        else:
                            ntail.append(q)
                continue

            if tail:
                chunks.append(np.asarray(tail, dtype=np.int32))
            cells = (
                chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            )
            lmask = best_g[cells] == g
            live = cells if lmask.all() else cells[lmask]
            n_live = int(live.size)
            if not n_live:
                continue
            jt: Optional[int] = None
            if tmask is None:
                for t in target_tuple:
                    if bg_mv[t] == g and f == g + htab_mv[t]:
                        pos = int((live == t).argmax())
                        if jt is None or pos < jt:
                            jt = pos
            else:
                hits = tmask[live]
                if hits.any():
                    jt = int(np.argmax(hits))
            allowance = (
                None if max_expansions is None else max_expansions - expansions
            )
            if jt is not None and (allowance is None or jt <= allowance):
                if jt:
                    expansions += jt
                    if budget is not None:
                        _charge_exact(budget, jt)
                t = int(live[jt])
                ids = [t]
                back = parent_mv[t]
                while back >= 0:
                    ids.append(back)
                    back = parent_mv[back]
                ids.reverse()
                return ids
            settled = n_live if jt is None else jt
            if allowance is not None and settled > allowance:
                charge = allowance + 1
                expansions += charge
                if budget is not None:
                    _charge_exact(budget, charge)
                return None
            expansions += settled
            if budget is not None and settled:
                _charge_exact(budget, settled)

            flat = nbr[live].reshape(-1)
            keep = (best_g[flat] > ng).nonzero()[0]
            if not keep.size:
                continue
            q = flat[keep]
            stamp[q[::-1]] = keep[::-1]
            sel = (stamp[q] == keep).nonzero()[0]
            if sel.size != q.size:
                q = q[sel]
                keep = keep[sel]
            best_g[q] = ng
            parent[q] = live[keep // 6]
            pushes += int(q.size)
            fq = htab[q] + ng
            fmin = int(fq.min())
            fmax = int(fq.max())
            if fmin == fmax:
                _wave_push(buckets, tails, key_heap, (fmin, ng), q)
            else:
                for fv in range(fmin, fmax + 1):
                    m2 = fq == fv
                    if m2.any():
                        _wave_push(
                            buckets, tails, key_heap, (fv, ng), q[m2]
                        )
        return None
    finally:
        if budget is None and expansions:
            obs.counter("astar.expansions").inc(expansions)
        if pushes:
            obs.counter("astar.heap_pushes").inc(pushes)


def bfs_search(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
) -> Optional[List[int]]:
    """BFS-route (Lee wave propagation) on cell ids, unit step costs.

    Same blocking rules and multi-source/multi-target interface as
    :func:`astar_search` with no history costs; the returned path has
    guaranteed-minimum length.  Propagation is whole-frontier: each BFS
    level expands as one batch of ndarray gathers, with first-occurrence
    dedup standing in for the scalar visited check (see
    :func:`_bfs_scalar`, the reference implementation the property
    tests compare against).
    """
    if space.layers > 1:
        return _bfs3(space, sources, targets)
    width = space.width
    height = space.height
    size = space.size
    blocked = space.blocked
    blocked_mv = memoryview(blocked)

    target_xy = {(t[0], t[1]) for t in targets}
    source_list = [(s[0], s[1]) for s in sources]
    if not target_xy or not source_list:
        return None
    target_ids = {
        y * width + x for x, y in target_xy if 0 <= x < width and 0 <= y < height
    }
    tmask = np.zeros(size, dtype=np.uint8)
    if target_ids:
        tmask[_as_ids(target_ids)] = 1

    # parent: -2 unvisited, -1 source root, else predecessor cell id.
    parent = np.full(size, -2, dtype=np.int32)
    seeds: List[int] = []
    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < height):
            continue
        s = y * width + x
        if blocked_mv[s] or parent[s] != -2:
            continue
        parent[s] = -1
        if (x, y) in target_xy:
            return [s]
        seeds.append(s)
    frontier = np.asarray(seeds, dtype=np.int32)

    while frontier.size:
        n = int(frontier.size)
        xs = frontier % width
        cand = np.empty((n, 4), dtype=np.int32)
        cand[:, 0] = frontier + 1
        cand[:, 1] = frontier - 1
        cand[:, 2] = frontier + width
        cand[:, 3] = frontier - width
        cand[xs + 1 == width, 0] = -1
        cand[xs == 0, 1] = -1
        flat = cand.reshape(-1)
        idx = np.flatnonzero((flat >= 0) & (flat < size))
        q = flat[idx]
        keep = np.flatnonzero((parent[q] == -2) & (blocked[q] == 0))
        q = q[keep]
        idx = idx[keep]
        if not q.size:
            return None
        uq, first = np.unique(q, return_index=True)
        if uq.size != q.size:
            order = np.sort(first)
            q = q[order]
            idx = idx[order]
        parent[q] = frontier[idx >> 2]
        hits = tmask[q]
        if hits.any():
            t = int(q[int(np.argmax(hits))])
            ids = [t]
            back = int(parent[t])
            while back >= 0:
                ids.append(back)
                back = int(parent[back])
            ids.reverse()
            return ids
        frontier = q
    return None


def _bfs3(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
) -> Optional[List[int]]:
    """Whole-frontier BFS over the 6-neighbour multi-layer topology.

    Via steps count as one BFS level (Lee's oracle is unweighted); the
    6-column neighbour table replaces the inline planar candidate
    build, and invalid moves are explicit ``-1`` entries filtered with
    the same in-range mask the planar engine uses.
    """
    grid = space.grid
    width = space.width
    height = space.height
    layers = space.layers
    plane = space.plane
    size = space.size
    blocked = space.blocked
    blocked_mv = memoryview(blocked)

    target_xyz = {_cell3(t) for t in targets}
    source_xyz = [_cell3(s) for s in sources]
    if not target_xyz or not source_xyz:
        return None
    target_ids = {
        z * plane + y * width + x
        for x, y, z in target_xyz
        if 0 <= x < width and 0 <= y < height and 0 <= z < layers
    }
    tmask = np.zeros(size, dtype=np.uint8)
    if target_ids:
        tmask[_as_ids(target_ids)] = 1
    nbr = _nbr_table3(width, height, layers, grid.via_mask())

    parent = np.full(size, -2, dtype=np.int32)
    seeds: List[int] = []
    for x, y, z in source_xyz:
        if not (0 <= x < width and 0 <= y < height and 0 <= z < layers):
            continue
        s = z * plane + y * width + x
        if blocked_mv[s] or parent[s] != -2:
            continue
        parent[s] = -1
        if (x, y, z) in target_xyz:
            return [s]
        seeds.append(s)
    frontier = np.asarray(seeds, dtype=np.int32)

    while frontier.size:
        flat = nbr[frontier].reshape(-1)
        idx = np.flatnonzero(flat >= 0)
        q = flat[idx]
        keep = np.flatnonzero((parent[q] == -2) & (blocked[q] == 0))
        q = q[keep]
        idx = idx[keep]
        if not q.size:
            return None
        uq, first = np.unique(q, return_index=True)
        if uq.size != q.size:
            order = np.sort(first)
            q = q[order]
            idx = idx[order]
        parent[q] = frontier[idx // 6]
        hits = tmask[q]
        if hits.any():
            t = int(q[int(np.argmax(hits))])
            ids = [t]
            back = int(parent[t])
            while back >= 0:
                ids.append(back)
                back = int(parent[back])
            ids.reverse()
            return ids
        frontier = q
    return None


def _bfs_scalar(
    space: SearchSpace,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
) -> Optional[List[int]]:
    """Reference scalar BFS (the pre-vectorisation implementation).

    Kept for the property tests, which pin :func:`bfs_search` to it
    path-for-path.
    """
    from collections import deque

    width = space.width
    height = space.height
    size = space.size
    blocked = memoryview(space.blocked)

    target_xy = {(t[0], t[1]) for t in targets}
    source_list = [(s[0], s[1]) for s in sources]
    if not target_xy or not source_list:
        return None
    target_ids = {
        y * width + x for x, y in target_xy if 0 <= x < width and 0 <= y < height
    }

    parent: Dict[int, int] = {}
    queue: deque = deque()
    for x, y in source_list:
        if not (0 <= x < width and 0 <= y < height):
            continue
        s = y * width + x
        if blocked[s] or s in parent:
            continue
        parent[s] = -1
        if (x, y) in target_xy:
            return [s]
        queue.append(s)

    while queue:
        p = queue.popleft()
        xp = p % width
        for q in (
            p + 1 if xp + 1 < width else -1,
            p - 1 if xp else -1,
            p + width,
            p - width,
        ):
            if q < 0 or q >= size or q in parent or blocked[q]:
                continue
            parent[q] = p
            if q in target_ids:
                ids = [q]
                back = p
                while back >= 0:
                    ids.append(back)
                    back = parent[back]
                ids.reverse()
                return ids
            queue.append(q)
    return None


class _OwnCells:
    """Immutable cells-on-this-path id set, extended in O(1) amortised.

    Each bounded-search state must know its own path's cells to keep
    every reconstructed path simple.  Rebuilding that set per expansion
    walks the whole parent chain (O(path length) each time — quadratic
    over a long detour), so states share a frozen ``base`` set plus a
    short tuple of recent cell ids; the tuple is folded into a new base
    once it grows past ``_FLATTEN_AT``, keeping both membership tests
    and extension cheap while sibling states still share their prefix.
    """

    __slots__ = ("_base", "_extra")

    _FLATTEN_AT = 16

    def __init__(self, base: frozenset, extra: Tuple[int, ...]) -> None:
        self._base = base
        self._extra = extra

    @classmethod
    def single(cls, cid: int) -> "_OwnCells":
        return cls(frozenset((cid,)), ())

    def extended(self, cid: int) -> "_OwnCells":
        extra = self._extra + (cid,)
        if len(extra) >= self._FLATTEN_AT:
            return _OwnCells(self._base.union(extra), ())
        return _OwnCells(self._base, extra)

    def __contains__(self, cid: int) -> bool:
        return cid in self._base or cid in self._extra


def bounded_search(
    space: SearchSpace,
    source: Cell,
    target: Cell,
    min_length: int,
    max_length: int,
    *,
    max_states: int = 50_000,
) -> Optional[List[int]]:
    """Find a simple path with length in ``[min_length, max_length]``.

    The paper's modified A* (§6) on cell ids: the G value of a state
    records the path length from the source, the F value adds a penalty
    whenever the estimated total length falls below the bound, and
    states are keyed by ``(cell, g)`` so a cell may be revisited at a
    larger G.  Callers pre-check source/target routability and parity
    feasibility; this engine only explores.

    The ``(cell, g)`` keying collapses distinct simple prefixes that
    reach the same cell at the same length — if the first-popped one's
    own-set blocks the only continuation, a feasible path would be
    missed.  When the first pass *drains* its state graph without an
    answer (rather than giving up on the state budget), the search
    therefore re-runs with states disambiguated by an order-insensitive
    hash of each path's own cell set, which admits those alternate
    prefixes.  Successful first passes are untouched, so found paths
    are bit-identical to the historical engine's.

    Returns the found cell-id path, or None when the search gives up
    (state budget exhausted or no such simple path exists).
    """
    core = _bounded_core3 if space.layers > 1 else _bounded_core
    ids, drained = core(
        space, source, target, min_length, max_length, max_states, False
    )
    if ids is not None or not drained:
        return ids
    obs.counter("bounded.reopened").inc()
    ids, _ = core(
        space, source, target, min_length, max_length, max_states, True
    )
    return ids


def _bounded_core(
    space: SearchSpace,
    source: Cell,
    target: Cell,
    min_length: int,
    max_length: int,
    max_states: int,
    split_by_own: bool,
) -> Tuple[Optional[List[int]], bool]:
    """One bounded-search pass; returns ``(path, drained)``.

    ``drained`` is True when the heap emptied (the state graph was fully
    explored under the current keying) — as opposed to hitting the
    ``max_states`` budget, where re-running with finer keys could only
    burn another budget.  With ``split_by_own`` the state key gains an
    XOR-fold of the path's own cell ids: order-insensitive, so permuted
    prefixes over the same cells still dedup, but genuinely different
    cell sets coexist.
    """
    width = space.width
    height = space.height
    size = space.size
    blocked = memoryview(space.blocked)
    sx, sy = source[0], source[1]
    tx, ty = target[0], target[1]
    sid = sy * width + sx
    tid = ty * width + tx

    # Remaining-L1 lookups move out of the hot loop into one vectorised
    # table (distance to the single target cell).
    rem = _heuristic_table(width, height, tx, tx, ty, ty).data

    # States are (cell id, g[, own-hash]); parents reconstruct one
    # simple path per state, ``own_of`` carries each state's
    # cells-on-path set.
    start = (sid, 0, sid) if split_by_own else (sid, 0)
    parent: Dict[Tuple[int, ...], Optional[Tuple[int, ...]]] = {start: None}
    own_of: Dict[Tuple[int, ...], _OwnCells] = {start: _OwnCells.single(sid)}
    heap: List[Tuple[float, int, Tuple[int, ...]]] = []
    tie = count()

    estimate = abs(sx - tx) + abs(sy - ty)
    f0 = float(estimate)
    if estimate < min_length:
        f0 += _PENALTY_WEIGHT * (min_length - estimate)
    heapq.heappush(heap, (f0, next(tie), start))
    states = 0

    try:
        while heap:
            _, _, state = heapq.heappop(heap)
            p = state[0]
            g = state[1]
            if p == tid and min_length <= g <= max_length:
                ids: List[int] = []
                node: Optional[Tuple[int, ...]] = state
                while node is not None:
                    ids.append(node[0])
                    node = parent[node]
                ids.reverse()
                if len(set(ids)) == len(ids):  # simple path only
                    return ids, False
                continue
            states += 1
            if states > max_states:
                return None, False
            if g >= max_length:
                continue
            # Cells already on this state's own path are forbidden so
            # every reconstructed path stays simple.
            own = own_of[state]
            ng = g + 1
            xp = p % width
            for q in (
                p + 1 if xp + 1 < width else -1,
                p - 1 if xp else -1,
                p + width,
                p - width,
            ):
                if q < 0 or q >= size or blocked[q] or q in own:
                    continue
                if ng + rem[q] > max_length:
                    continue
                nstate = (
                    (q, ng, state[2] ^ q) if split_by_own else (q, ng)
                )
                if nstate in parent:
                    continue
                parent[nstate] = state
                own_of[nstate] = own.extended(q)
                estimate = ng + rem[q]
                f = float(estimate)
                if estimate < min_length:
                    f += _PENALTY_WEIGHT * (min_length - estimate)
                heapq.heappush(heap, (f, next(tie), nstate))
        return None, True
    finally:
        if states:
            obs.counter("bounded.states").inc(states)


def _bounded_core3(
    space: SearchSpace,
    source: Cell,
    target: Cell,
    min_length: int,
    max_length: int,
    max_states: int,
    split_by_own: bool,
) -> Tuple[Optional[List[int]], bool]:
    """One bounded-search pass on the multi-layer topology.

    The G value is the *weighted* channel length: planar steps add 1,
    via steps add ``grid.via_length`` (vias consume channel budget in
    the length-matching constraint).  The remaining-length table is the
    admissible ``planar_L1 + via_length * z_distance`` bound, so the
    ``g + rem > max_length`` prune stays safe.
    """
    grid = space.grid
    width = space.width
    height = space.height
    layers = space.layers
    plane = space.plane
    via_length = grid.via_length
    blocked = memoryview(space.blocked)
    sx, sy, sz = _cell3(source)
    tx, ty, tz = _cell3(target)
    sid = sz * plane + sy * width + sx
    tid = tz * plane + ty * width + tx

    rem = _heuristic_table3(
        width, height, layers, (tx, tx, ty, ty, tz, tz), via_length
    ).data
    nbr_mv = memoryview(
        _nbr_table3(width, height, layers, grid.via_mask()).reshape(-1)
    )

    start = (sid, 0, sid) if split_by_own else (sid, 0)
    parent: Dict[Tuple[int, ...], Optional[Tuple[int, ...]]] = {start: None}
    own_of: Dict[Tuple[int, ...], _OwnCells] = {start: _OwnCells.single(sid)}
    heap: List[Tuple[float, int, Tuple[int, ...]]] = []
    tie = count()

    estimate = int(rem[sid])
    f0 = float(estimate)
    if estimate < min_length:
        f0 += _PENALTY_WEIGHT * (min_length - estimate)
    heapq.heappush(heap, (f0, next(tie), start))
    states = 0

    try:
        while heap:
            _, _, state = heapq.heappop(heap)
            p = state[0]
            g = state[1]
            if p == tid and min_length <= g <= max_length:
                ids: List[int] = []
                node: Optional[Tuple[int, ...]] = state
                while node is not None:
                    ids.append(node[0])
                    node = parent[node]
                ids.reverse()
                if len(set(ids)) == len(ids):  # simple path only
                    return ids, False
                continue
            states += 1
            if states > max_states:
                return None, False
            if g >= max_length:
                continue
            own = own_of[state]
            base = 6 * p
            for k in range(6):
                q = nbr_mv[base + k]
                if q < 0 or blocked[q] or q in own:
                    continue
                ng = g + (1 if k < 4 else via_length)
                if ng + rem[q] > max_length:
                    continue
                nstate = (
                    (q, ng, state[2] ^ q) if split_by_own else (q, ng)
                )
                if nstate in parent:
                    continue
                parent[nstate] = state
                own_of[nstate] = own.extended(q)
                estimate = ng + rem[q]
                f = float(estimate)
                if estimate < min_length:
                    f += _PENALTY_WEIGHT * (min_length - estimate)
                heapq.heappush(heap, (f, next(tie), nstate))
        return None, True
    finally:
        if states:
            obs.counter("bounded.states").inc(states)
