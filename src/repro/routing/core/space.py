"""The fused routability view every search kernel runs on.

All four search kernels (A*, Lee, bounded-length, and the negotiation
loop's inner A*) answer the same per-cell question in their hot loops:
*may this net enter this cell?*  Before the kernel core existed, each
kernel re-composed the answer per visited cell from three sources —
static obstacles (:class:`~repro.grid.grid.RoutingGrid`), the dynamic
per-net overlay (:class:`~repro.grid.occupancy.Occupancy`) and the
query's extra obstacles — through a chain of `Point` allocations, dict
lookups and method calls.

:class:`SearchSpace` fuses the sources into a flat ``uint8`` ndarray
blocked-mask indexed by ``grid.index`` cell ids (``cid = y * width +
x``).  Fusion is vectorised end to end: one C-speed ``static | overlay``
OR (the occupancy maintains a live bucket-membership mask), then
fancy-indexed writes for the querying net's own cells (which stay
routable — point-to-path queries rely on this), the query's extra
obstacles, and physically faulty cells
(:mod:`repro.robustness.faultmap`), so fresh routes avoid declared
faults by construction.  The kernels in
:mod:`repro.routing.core.engine` then test routability with a single
``blocked[cid]`` read — or whole-frontier ndarray gathers — and never
touch a ``Point`` until the found path is materialised.

:class:`SpaceCache` makes the fused mask *persistent*: one cached
ndarray per ``(grid, occupancy)`` pair, kept correct between queries by
the dirty cell-id sets every ``Occupancy`` mutator reports, so the
hundreds of re-queries per negotiation round stop paying an O(grid)
rebuild.  A checked-out view stays valid until the next checkout; call
:meth:`SearchSpace.snapshot` where true isolation is needed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

import numpy as np

from repro.geometry.point import Point, cell_point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.observability import context as obs
from repro.routing.path import Path

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _id_array(ids: Iterable[int]) -> "np.ndarray":
    """Return an int64 ndarray of the cell ids in ``ids``."""
    if isinstance(ids, np.ndarray):
        return ids.astype(np.int64, copy=False)
    seq = ids if isinstance(ids, (list, tuple, set, frozenset)) else list(ids)
    n = len(seq)
    if not n:
        return _EMPTY_IDS
    return np.fromiter(seq, dtype=np.int64, count=n)


def _on_chip_ids(grid: RoutingGrid, points: Iterable[Point]) -> List[int]:
    """Return the cell ids of the on-chip points (off-chip ones skipped).

    Off-chip extra obstacles were no-ops before the fused mask (no
    on-chip cell ever compared equal to them); skipping keeps negative
    or over-range coordinates from wrapping into valid ids.  Mixed-arity
    cells follow the canonical rule (2-tuples are layer 0).
    """
    width = grid.width
    height = grid.height
    layers = grid.layers
    plane = grid.plane
    on_chip: List[int] = []
    for p in points:
        z = p[2] if len(p) == 3 else 0
        if 0 <= p[0] < width and 0 <= p[1] < height and 0 <= z < layers:
            on_chip.append(z * plane + p[1] * width + p[0])
    return on_chip


class SearchSpace:
    """One query's fused routability view over flat cell ids.

    A cell is routable exactly when the pre-refactor composition said
    so: on-chip, not a static obstacle, not owned by a *different* net
    in ``occupancy``, and not an extra obstacle of this query.  The
    equivalence is pinned by the property tests in
    ``tests/routing/test_core.py``.

    Constructed directly, the mask is a snapshot: mutations of the grid
    or the occupancy after construction are not reflected.  Views handed
    out by :class:`SpaceCache` *share* the cache's persistent buffer
    instead and are only valid until the next checkout; use
    :meth:`snapshot` to detach one.

    Attributes:
        grid: the underlying routing grid (for materialisation).
        width, height, size: grid dimensions and cell count.
        net: the querying net id (:data:`~repro.grid.occupancy.FREE`
            for net-less queries).
        blocked: the fused ``uint8`` ndarray mask; ``blocked[cid]`` is
            truthy when the cell may not be entered.
    """

    __slots__ = (
        "grid",
        "width",
        "height",
        "layers",
        "plane",
        "size",
        "net",
        "blocked",
    )

    def __init__(
        self,
        grid: RoutingGrid,
        *,
        net: int = FREE,
        occupancy: Optional[Occupancy] = None,
        extra_obstacles: Optional[Iterable[Point]] = None,
        extra_obstacle_ids: Optional[Iterable[int]] = None,
        fault_ids: Optional[Iterable[int]] = None,
    ) -> None:
        self.grid = grid
        width = grid.width
        self.width = width
        self.height = grid.height
        self.layers = grid.layers
        self.plane = grid.plane
        self.size = grid.size
        self.net = net
        # Static obstacles: one C-level copy of the grid's flat mask.
        if occupancy is not None:
            # Every occupied cell (the occupancy's live bucket-membership
            # mask), then re-open the querying net's own cells — their
            # routability is the static layer alone.
            blocked = grid.obstacle_mask() | occupancy.overlay_mask()
            own = occupancy.bucket_ids(net)
            if own:
                own_arr = _id_array(own)
                blocked[own_arr] = grid.obstacle_mask()[own_arr]
        else:
            blocked = grid.obstacle_mask().copy()
        if extra_obstacles is not None:
            on_chip = _on_chip_ids(grid, extra_obstacles)
            if on_chip:
                blocked[_id_array(on_chip)] = 1
        if extra_obstacle_ids is not None:
            arr = _id_array(extra_obstacle_ids)
            if arr.size:
                blocked[arr] = 1
        if fault_ids is not None:
            # Physical faults block every net unconditionally — even the
            # querying net's own cells; a stale route through a fault is
            # exactly what the repair engine exists to rip.
            arr = _id_array(fault_ids)
            if arr.size:
                blocked[arr] = 1
        self.blocked = blocked

    @classmethod
    def _adopt(
        cls, grid: RoutingGrid, net: int, blocked: "np.ndarray"
    ) -> "SearchSpace":
        """Wrap an existing fused mask without copying (cache checkout)."""
        space = cls.__new__(cls)
        space.grid = grid
        space.width = grid.width
        space.height = grid.height
        space.layers = grid.layers
        space.plane = grid.plane
        space.size = grid.size
        space.net = net
        space.blocked = blocked
        return space

    def snapshot(self) -> "SearchSpace":
        """Return an isolated copy of this view.

        Cache-issued views share the :class:`SpaceCache` buffer and are
        invalidated by the next checkout; a snapshot owns its mask and
        stays valid forever (the escape hatch for anything that must
        hold a routability view across queries — or across threads,
        once negotiation shards).
        """
        return SearchSpace._adopt(self.grid, self.net, self.blocked.copy())

    # -- routability -------------------------------------------------------

    def routable_id(self, cid: int) -> bool:
        """Return True when in-bounds cell id ``cid`` may be entered."""
        return not self.blocked[cid]

    def routable(self, p: Point) -> bool:
        """Return True when cell ``p`` is on-chip and may be entered."""
        x, y = p[0], p[1]
        z = p[2] if len(p) == 3 else 0
        return (
            0 <= x < self.width
            and 0 <= y < self.height
            and 0 <= z < self.layers
            and not self.blocked[z * self.plane + y * self.width + x]
        )

    # -- representation boundary ------------------------------------------

    def index(self, p: Point) -> int:
        """Return the flat cell id of on-chip cell ``p``."""
        if len(p) == 3:
            return p[2] * self.plane + p[1] * self.width + p[0]
        return p[1] * self.width + p[0]

    def point(self, cid: int) -> Point:
        """Return the cell of flat id ``cid`` (divmod reconstruction)."""
        if cid < self.plane:
            y, x = divmod(cid, self.width)
            return Point(x, y)
        z, rem = divmod(cid, self.plane)
        y, x = divmod(rem, self.width)
        return cell_point(x, y, z)

    def materialize(self, ids: List[int]) -> Path:
        """Return the :class:`Path` of a cell-id sequence.

        This is the single place the engine's integer world turns back
        into :class:`~repro.geometry.point.Point` — path materialisation
        time, as late as possible.  Layer-0 ids become plain ``Point``,
        upper-layer ids ``Point3`` (the canonical mixed-arity rule).
        """
        width = self.width
        if self.layers == 1:
            return Path([Point(cid % width, cid // width) for cid in ids])
        plane = self.plane
        cells: List[Point] = []
        for cid in ids:
            z, rem = divmod(cid, plane)
            cells.append(cell_point(rem % width, rem // width, z))
        return Path(cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchSpace({self.width}x{self.height}, net={self.net}, "
            f"{int(np.sum(self.blocked != 0))} blocked)"
        )


class SpaceCache:
    """Persistent, incrementally invalidated fused mask for one occupancy.

    The cache keeps one ``static | occupancy`` ndarray alive across
    queries.  Every :class:`~repro.grid.occupancy.Occupancy` mutator
    reports the cell ids it touched through :meth:`mark_dirty`; checkout
    (:meth:`space`) then refreshes exactly those cells — plus whatever
    the *previous* checkout patched in for its own query (own-net cells
    re-opened, extra obstacles, faults) — with one fancy-indexed
    recompute, instead of re-fusing the whole grid.

    Invariants:

    * a checked-out :class:`SearchSpace` is bit-identical to a freshly
      constructed one with the same arguments (pinned by the property
      tests in ``tests/routing/test_core.py``);
    * a view is valid until the next :meth:`space` call on the same
      cache — callers that need longer-lived isolation take a
      :meth:`SearchSpace.snapshot`;
    * a grid obstacle mutation (tracked via
      :meth:`~repro.grid.grid.RoutingGrid.obstacle_version`) or a bulk
      occupancy swap (:meth:`mark_all_dirty`) triggers one full rebuild
      at the next checkout.

    Observability: ``space.rebuilds`` counts full O(grid) re-fusions,
    ``space.reuses`` counts incremental checkouts, and
    ``space.patched_cells`` totals the cells refreshed incrementally —
    together they expose how much work the dirty-set protocol saves.
    """

    __slots__ = (
        "grid",
        "occupancy",
        "_fused",
        "_dirty",
        "_all_dirty",
        "_patched",
        "_grid_version",
    )

    def __init__(self, grid: RoutingGrid, occupancy: Occupancy) -> None:
        self.grid = grid
        self.occupancy = occupancy
        self._fused: Optional[np.ndarray] = None
        self._dirty: Set[int] = set()
        self._all_dirty = True
        self._patched: Optional[np.ndarray] = None
        self._grid_version = -1

    # -- invalidation ------------------------------------------------------

    def mark_dirty(self, cids: Iterable[int]) -> None:
        """Record that the occupancy changed at ``cids``."""
        if not self._all_dirty:
            self._dirty.update(cids)

    def mark_all_dirty(self) -> None:
        """Invalidate the whole fused mask (bulk occupancy swap)."""
        self._all_dirty = True
        self._dirty.clear()
        self._patched = None

    # -- checkout ----------------------------------------------------------

    def space(
        self,
        *,
        net: int = FREE,
        extra_obstacles: Optional[Iterable[Point]] = None,
        extra_obstacle_ids: Optional[Iterable[int]] = None,
        fault_ids: Optional[Iterable[int]] = None,
    ) -> SearchSpace:
        """Return the fused view for one query, refreshed incrementally.

        Semantically identical to constructing ``SearchSpace(grid,
        net=net, occupancy=occupancy, ...)``; the returned view shares
        the cache buffer and is valid until the next checkout.
        """
        grid = self.grid
        static = grid.obstacle_mask()
        fused = self._fused
        if (
            fused is None
            or self._all_dirty
            or grid.obstacle_version() != self._grid_version
        ):
            fused = static | self.occupancy.overlay_mask()
            self._fused = fused
            self._all_dirty = False
            self._dirty.clear()
            self._patched = None
            self._grid_version = grid.obstacle_version()
            obs.counter("space.rebuilds").inc()
        else:
            # Undo the previous checkout's query-local patches and apply
            # the occupancy deltas since, in one recompute: for every such
            # cell the correct base value is ``static | overlay``.
            stale = self._patched
            if self._dirty:
                dirty_arr = _id_array(self._dirty)
                stale = (
                    dirty_arr
                    if stale is None
                    else np.concatenate((stale, dirty_arr))
                )
                self._dirty.clear()
            if stale is not None and stale.size:
                fused[stale] = (
                    static[stale] | self.occupancy.overlay_mask()[stale]
                )
                obs.counter("space.patched_cells").inc(int(stale.size))
            self._patched = None
            obs.counter("space.reuses").inc()

        # Query-local patches, recorded for undo at the next checkout.
        patches: List[np.ndarray] = []
        own = self.occupancy.bucket_ids(net)
        if own:
            own_arr = _id_array(own)
            fused[own_arr] = static[own_arr]
            patches.append(own_arr)
        if extra_obstacles is not None:
            on_chip = _on_chip_ids(grid, extra_obstacles)
            if on_chip:
                arr = _id_array(on_chip)
                fused[arr] = 1
                patches.append(arr)
        if extra_obstacle_ids is not None:
            arr = _id_array(extra_obstacle_ids)
            if arr.size:
                fused[arr] = 1
                patches.append(arr)
        if fault_ids is not None:
            arr = _id_array(fault_ids)
            if arr.size:
                fused[arr] = 1
                patches.append(arr)
        if patches:
            self._patched = (
                patches[0] if len(patches) == 1 else np.concatenate(patches)
            )
        return SearchSpace._adopt(grid, net, fused)


def query_space(
    grid: RoutingGrid,
    *,
    net: int = FREE,
    occupancy: Optional[Occupancy] = None,
    extra_obstacles: Optional[Iterable[Point]] = None,
    extra_obstacle_ids: Optional[Iterable[int]] = None,
    fault_ids: Optional[Iterable[int]] = None,
) -> SearchSpace:
    """Return the fused view for one query, cached when possible.

    The single entry point the kernel wrappers use: occupancy-backed
    queries check out of the occupancy's persistent :class:`SpaceCache`
    (O(dirty cells), not O(grid)); everything else builds a standalone
    snapshot :class:`SearchSpace`.  The returned view follows the cache
    lifetime rules — valid until the same occupancy's next query.
    """
    if occupancy is not None and occupancy.grid is grid:
        return occupancy.space_cache().space(
            net=net,
            extra_obstacles=extra_obstacles,
            extra_obstacle_ids=extra_obstacle_ids,
            fault_ids=fault_ids,
        )
    return SearchSpace(
        grid,
        net=net,
        occupancy=occupancy,
        extra_obstacles=extra_obstacles,
        extra_obstacle_ids=extra_obstacle_ids,
        fault_ids=fault_ids,
    )
