"""The fused routability view every search kernel runs on.

All four search kernels (A*, Lee, bounded-length, and the negotiation
loop's inner A*) answer the same per-cell question in their hot loops:
*may this net enter this cell?*  Before the kernel core existed, each
kernel re-composed the answer per visited cell from three sources —
static obstacles (:class:`~repro.grid.grid.RoutingGrid`), the dynamic
per-net overlay (:class:`~repro.grid.occupancy.Occupancy`) and the
query's extra obstacles — through a chain of `Point` allocations, dict
lookups and method calls.

:class:`SearchSpace` fuses the sources **once per query** into a flat
``bytearray`` blocked-mask indexed by ``grid.index`` cell ids
(``cid = y * width + x``).  The static obstacle mask is copied at C
speed, the sparse occupancy buckets of *other* nets are overlaid on top
(cells owned by the querying net stay routable — point-to-path queries
rely on this), extra obstacles are marked next, and physically faulty
cells (:mod:`repro.robustness.faultmap`) form the third and final
blocked-mask layer, so fresh routes avoid declared faults by
construction.  The kernels in
:mod:`repro.routing.core.engine` then test routability with a single
``blocked[cid]`` byte read and never touch a ``Point`` until the found
path is materialised.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.routing.path import Path


class SearchSpace:
    """One query's fused routability view over flat cell ids.

    A cell is routable exactly when the pre-refactor composition said
    so: on-chip, not a static obstacle, not owned by a *different* net
    in ``occupancy``, and not an extra obstacle of this query.  The
    equivalence is pinned by the property tests in
    ``tests/routing/test_core.py``.

    The mask is a snapshot: mutations of the grid or the occupancy
    after construction are not reflected.  Build one ``SearchSpace``
    per query (construction is a C-speed ``bytearray`` copy plus one
    byte write per occupied/extra cell).

    Attributes:
        grid: the underlying routing grid (for materialisation).
        width, height, size: grid dimensions and cell count.
        net: the querying net id (:data:`~repro.grid.occupancy.FREE`
            for net-less queries).
        blocked: the fused mask; ``blocked[cid]`` is truthy when the
            cell may not be entered.
    """

    __slots__ = ("grid", "width", "height", "size", "net", "blocked")

    def __init__(
        self,
        grid: RoutingGrid,
        *,
        net: int = FREE,
        occupancy: Optional[Occupancy] = None,
        extra_obstacles: Optional[Iterable[Point]] = None,
        extra_obstacle_ids: Optional[Iterable[int]] = None,
        fault_ids: Optional[Iterable[int]] = None,
    ) -> None:
        self.grid = grid
        width = grid.width
        self.width = width
        self.height = grid.height
        self.size = width * grid.height
        self.net = net
        # Static obstacles: one C-level copy of the grid's flat mask.
        blocked = bytearray(grid.obstacle_mask())
        if occupancy is not None:
            # Overlay the sparse per-net buckets of every *other* net;
            # marking is idempotent, so bucket iteration order is
            # irrelevant (DET003-whitelisted for exactly this reason).
            for owner_net, bucket in occupancy.id_buckets():
                if owner_net != net:
                    for cid in bucket:
                        blocked[cid] = 1
        if extra_obstacles is not None:
            height = self.height
            for p in extra_obstacles:
                x, y = p[0], p[1]
                # Off-chip extra obstacles were no-ops before the fused
                # mask (no on-chip cell ever compared equal to them);
                # skip them so negative coordinates cannot wrap.
                if 0 <= x < width and 0 <= y < height:
                    blocked[y * width + x] = 1
        if extra_obstacle_ids is not None:
            for cid in extra_obstacle_ids:
                blocked[cid] = 1
        if fault_ids is not None:
            # Physical faults block every net unconditionally — even the
            # querying net's own cells; a stale route through a fault is
            # exactly what the repair engine exists to rip.
            for cid in fault_ids:
                blocked[cid] = 1
        self.blocked = blocked

    # -- routability -------------------------------------------------------

    def routable_id(self, cid: int) -> bool:
        """Return True when in-bounds cell id ``cid`` may be entered."""
        return not self.blocked[cid]

    def routable(self, p: Point) -> bool:
        """Return True when cell ``p`` is on-chip and may be entered."""
        x, y = p[0], p[1]
        return (
            0 <= x < self.width
            and 0 <= y < self.height
            and not self.blocked[y * self.width + x]
        )

    # -- representation boundary ------------------------------------------

    def index(self, p: Point) -> int:
        """Return the flat cell id of on-chip cell ``p``."""
        return p[1] * self.width + p[0]

    def point(self, cid: int) -> Point:
        """Return the cell of flat id ``cid`` (divmod reconstruction)."""
        y, x = divmod(cid, self.width)
        return Point(x, y)

    def materialize(self, ids: List[int]) -> Path:
        """Return the :class:`Path` of a cell-id sequence.

        This is the single place the engine's integer world turns back
        into :class:`~repro.geometry.point.Point` — path materialisation
        time, as late as possible.
        """
        width = self.width
        return Path([Point(cid % width, cid // width) for cid in ids])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchSpace({self.width}x{self.height}, net={self.net}, "
            f"{sum(self.blocked)} blocked)"
        )
