"""Flat cell-index kernel core shared by every search kernel.

``SearchSpace`` fuses static obstacles, the dynamic occupancy overlay
and per-query extra obstacles into one flat blocked-mask; the engine
functions search over it on ``int`` cell ids.  See
``docs/architecture.md`` ("Kernel core") for the design.
"""

from repro.routing.core.engine import astar_search, bfs_search, bounded_search
from repro.routing.core.space import SearchSpace

__all__ = [
    "SearchSpace",
    "astar_search",
    "bfs_search",
    "bounded_search",
]
