"""Flat cell-index kernel core shared by every search kernel.

``SearchSpace`` fuses static obstacles, the dynamic occupancy overlay
and per-query extra obstacles into one flat ``uint8`` ndarray
blocked-mask; the engine functions search over it on ``int`` cell ids.
``SpaceCache`` keeps one fused mask alive per ``(grid, occupancy)``
pair, invalidated incrementally through the occupancy's dirty cell-id
reports.  See ``docs/architecture.md`` ("Kernel core") for the design.
"""

from repro.routing.core.engine import astar_search, bfs_search, bounded_search
from repro.routing.core.space import SearchSpace, SpaceCache, query_space

__all__ = [
    "SearchSpace",
    "SpaceCache",
    "astar_search",
    "bfs_search",
    "bounded_search",
    "query_space",
]
