"""Grid routers: A*, negotiation-based routing, MST routing, bounded-length.

This package implements every router the PACOR flow needs:

* :func:`astar_route` — A* on the routing grid, supporting point-to-point,
  point-to-path and path-to-path queries (Section 3 of the paper).
* :class:`NegotiationRouter` — Algorithm 1: iterative rip-up-all/reroute
  with PathFinder-style history costs (Eq. 5) at detailed-routing level.
* :func:`route_cluster_mst` — MST-based routing for ordinary clusters with
  de-clustering on failure.
* :func:`bounded_length_route` — the minimum-length bounded A* of
  Section 6, with a serpentine-insertion fallback used by the detour stage.
"""

from repro.routing.astar import astar_route
from repro.routing.bounded import bounded_length_route, extend_path_with_bumps
from repro.routing.lee import lee_route
from repro.routing.steiner import rectilinear_steiner_tree, steiner_heuristic_length
from repro.routing.mst import MstRoutingResult, manhattan_mst, route_cluster_mst
from repro.routing.negotiation import NegotiationResult, NegotiationRouter, RouteRequest
from repro.routing.path import Path

__all__ = [
    "Path",
    "astar_route",
    "NegotiationRouter",
    "NegotiationResult",
    "RouteRequest",
    "manhattan_mst",
    "route_cluster_mst",
    "MstRoutingResult",
    "bounded_length_route",
    "extend_path_with_bumps",
    "lee_route",
    "rectilinear_steiner_tree",
    "steiner_heuristic_length",
]
