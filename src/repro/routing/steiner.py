"""Rectilinear Steiner tree heuristic (iterated 1-Steiner).

The MST over a cluster's valves overestimates the wire needed to connect
them: adding well-chosen *Steiner points* from the Hanan grid (the
crossings of the terminals' x and y coordinates) can shorten the tree by
up to one third.  This module implements the classic iterated 1-Steiner
heuristic: repeatedly insert the single Hanan point that reduces the
MST weight most, until no point helps.

Used by the analysis layer as a tighter wirelength reference than the
plain MST (`repro.analysis.stats` keeps the *lower* bound; this is a
constructive *upper* bound any good router should approach), and
available as a topology provider for connectivity-only routing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.point import Point, manhattan
from repro.routing.mst import manhattan_mst


def mst_weight(points: Sequence[Point]) -> int:
    """Return the Manhattan MST weight over ``points``."""
    return sum(manhattan(points[a], points[b]) for a, b in manhattan_mst(list(points)))


def hanan_points(points: Sequence[Point]) -> List[Point]:
    """Return the Hanan grid of ``points`` (excluding the points)."""
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    existing = {Point(p[0], p[1]) for p in points}
    return [
        Point(x, y) for x in xs for y in ys if Point(x, y) not in existing
    ]


def rectilinear_steiner_tree(
    points: Sequence[Point],
) -> Tuple[List[Point], List[Tuple[int, int]], int]:
    """Build a rectilinear Steiner tree with iterated 1-Steiner.

    Returns ``(nodes, edges, weight)``: the node list (terminals first,
    then inserted Steiner points), MST edges over those nodes as index
    pairs, and the tree weight.  Degree-<3 Steiner points are pruned
    (they never shorten a rectilinear tree).
    """
    terminals = [Point(p[0], p[1]) for p in points]
    if len(terminals) <= 1:
        return list(terminals), [], 0

    nodes: List[Point] = list(dict.fromkeys(terminals))
    n_terminals = len(nodes)
    best_weight = mst_weight(nodes)

    while True:
        candidates = hanan_points(nodes)
        best_gain = 0
        best_point = None
        for candidate in candidates:
            weight = mst_weight(nodes + [candidate])
            gain = best_weight - weight
            if gain > best_gain:
                best_gain = gain
                best_point = candidate
        if best_point is None:
            break
        nodes.append(best_point)
        best_weight -= best_gain

    # Prune Steiner points of degree < 3 in the final MST.
    while True:
        edges = manhattan_mst(nodes)
        degree = [0] * len(nodes)
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        removable = [
            i
            for i in range(n_terminals, len(nodes))
            if degree[i] < 3
        ]
        if not removable:
            return nodes, edges, sum(
                manhattan(nodes[a], nodes[b]) for a, b in edges
            )
        # Remove one at a time (indices shift).
        nodes.pop(removable[0])


def steiner_heuristic_length(points: Sequence[Point]) -> int:
    """Return the iterated-1-Steiner tree weight over ``points``."""
    _, _, weight = rectilinear_steiner_tree(points)
    return weight
