"""Constraint checker for the paper's escape-routing formulation.

Section 5 defines escape routing by an objective and constraints
(6)-(12) over per-arc flow variables.  Our solver realises them via a
node-split flow network; this module closes the loop by re-deriving the
arc flows from a decomposed :class:`~repro.escape.mcf.EscapeResult` and
checking the *paper's* constraints directly:

* (6)/(10) — each source's total outward flow is at most one and equals
  the number of its routed paths;
* (7)/(11) — no flow enters a source's tap cells;
* (8)  — obstacle and blocked cells carry no flow;
* (9)  — flow conservation at every ordinary routing cell;
* (12) — at most 2 incident flow units per cell (no crossings).

Used by tests and benchmarks as an independent proof that the min-cost-
flow substitution implements exactly the published formulation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence, Set, Tuple

from repro.escape.mcf import EscapeResult, EscapeSource
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import PacorError


class ConstraintViolation(PacorError, AssertionError):
    """Raised when a decomposed escape solution breaks (6)-(12)."""


def check_paper_constraints(
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Set[Point],
    result: EscapeResult,
) -> Dict[str, int]:
    """Validate ``result`` against constraints (6)-(12).

    Returns a small statistics dict (arcs, cells touched) on success;
    raises :class:`ConstraintViolation` otherwise.
    """
    tap_cells: Dict[int, Set[Point]] = {
        s.cluster_id: {Point(t[0], t[1]) for t in s.tap_cells} for s in sources
    }
    pin_set = {Point(p[0], p[1]) for p in pins}

    # Re-derive arc flows f_{i,j} from the decomposed paths.
    arc_flow: Dict[Tuple[Point, Point], int] = defaultdict(int)
    outward_of_source: Dict[int, int] = defaultdict(int)
    for cluster_id, path in result.paths.items():
        cells = path.cells
        taps = tap_cells[cluster_id]
        if cells[0] not in taps:
            raise ConstraintViolation(
                f"path of cluster {cluster_id} does not start at a tap cell"
            )
        for a, b in zip(cells, cells[1:]):
            if a.manhattan(b) != 1:
                raise ConstraintViolation("flow arc between non-adjacent cells")
            arc_flow[(a, b)] += 1
        outward_of_source[cluster_id] += 1
        if path.target not in pin_set:
            raise ConstraintViolation(
                f"cluster {cluster_id} terminates off-pin at {path.target}"
            )

    inflow: Dict[Point, int] = defaultdict(int)
    outflow: Dict[Point, int] = defaultdict(int)
    for (a, b), f in arc_flow.items():
        outflow[a] += f
        inflow[b] += f

    all_taps: Set[Point] = set()
    for cells in tap_cells.values():
        all_taps |= cells

    # (6)/(10): each source sends at most one unit outward in total.
    for cluster_id, units in outward_of_source.items():
        if units > 1:
            raise ConstraintViolation(
                f"cluster {cluster_id} sends {units} units (x_q <= 1 violated)"
            )

    for cell in sorted(set(inflow) | set(outflow)):
        # (8): no flow on obstacles; blocked cells only as tap starts.
        if not grid.in_bounds(cell):
            raise ConstraintViolation(f"flow leaves the chip at {cell}")
        if grid.is_obstacle(cell):
            raise ConstraintViolation(f"flow crosses obstacle {cell}")
        if cell in blocked and cell not in all_taps:
            raise ConstraintViolation(f"flow crosses blocked cell {cell}")

        # (7)/(11): no inward flow into any source's tap cells.
        if cell in all_taps and inflow[cell] > 0:
            raise ConstraintViolation(f"flow enters tap cell {cell}")

        # (9): conservation at ordinary cells (non-tap, non-terminal-pin).
        is_terminal_pin = cell in pin_set and any(
            result.pin_of.get(cid) == cell for cid in result.paths
        )
        if cell not in all_taps and not is_terminal_pin:
            if inflow[cell] != outflow[cell]:
                raise ConstraintViolation(
                    f"conservation violated at {cell}: "
                    f"in={inflow[cell]} out={outflow[cell]}"
                )

        # (12): at most two incident units — no crossings.
        if inflow[cell] + outflow[cell] > 2:
            raise ConstraintViolation(
                f"cell {cell} carries {inflow[cell] + outflow[cell]} incident units"
            )

    # Each pin drains at most one unit.
    pin_use: Dict[Point, int] = defaultdict(int)
    for cid in result.paths:
        pin_use[result.pin_of[cid]] += 1
    for pin, uses in pin_use.items():
        if uses > 1:
            raise ConstraintViolation(f"pin {pin} drains {uses} units")

    return {
        "arcs": len(arc_flow),
        "cells": len(set(inflow) | set(outflow)),
        "routed": len(result.paths),
    }
