"""Export the escape-routing LP in CPLEX LP text format.

The paper hands its formulation — objective ``min Σ l_ij f_ij − β(Σx_j +
Σx_q)`` subject to constraints (6)–(12) — to Gurobi.  We solve the
equivalent min-cost max-flow instead (see DESIGN.md), but for
documentation, debugging and external cross-checking this module writes
the *literal* LP of Section 5 for any instance, readable by Gurobi,
CPLEX, GLPK (``glpsol --lp``) or SCIP.

Variable naming: ``f_x1_y1_x2_y2`` is the flow from grid cell (x1, y1)
to adjacent cell (x2, y2); ``xs_<cluster>`` is the per-source indicator
``x_q``.  Tap-adjacent arcs are modelled as in our network: a virtual
source feeds the free neighbours of each cluster's tap cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.escape.mcf import EscapeSource
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid


def _fvar(a: Point, b: Point) -> str:
    return f"f_{a.x}_{a.y}_{b.x}_{b.y}"


def export_escape_lp(
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Optional[Set[Point]] = None,
    *,
    beta: float = 10_000.0,
) -> str:
    """Return the Section-5 LP for an escape instance as LP-format text.

    β is the paper's domination weight making the routed-count term
    outweigh total length; any value above the largest possible total
    length is equivalent.
    """
    blocked = blocked or set()

    def usable(p: Point) -> bool:
        return grid.is_free(p) and p not in blocked

    cells = [
        Point(x, y)
        for y in range(grid.height)
        for x in range(grid.width)
        if usable(Point(x, y))
    ]
    cell_set = set(cells)
    pin_set = {Point(p[0], p[1]) for p in pins if usable(Point(p[0], p[1]))}

    arcs: List[Tuple[Point, Point]] = []
    for p in cells:
        for q in p.neighbors4():
            if q in cell_set:
                arcs.append((p, q))

    # Entry arcs: per source q, from its virtual node into tap neighbours.
    entry_vars: Dict[int, List[str]] = {}
    entry_target: Dict[str, Point] = {}
    for source in sources:
        names: List[str] = []
        seen: Set[Point] = set()
        for tap in source.tap_cells:
            tap = Point(tap[0], tap[1])
            candidates = [tap] if tap in cell_set else [
                v for v in tap.neighbors4() if v in cell_set
            ]
            for v in candidates:
                if v in seen:
                    continue
                seen.add(v)
                name = f"e_{source.cluster_id}_{v.x}_{v.y}"
                names.append(name)
                entry_target[name] = v
        entry_vars[source.cluster_id] = names

    out: List[str] = []
    out.append("\\ Escape routing LP (Section 5, constraints (6)-(12))")
    out.append("Minimize")
    terms = [f" + 1 {_fvar(a, b)}" for a, b in arcs]
    terms += [
        f" + 1 {name}" for names in entry_vars.values() for name in names
    ]
    terms += [f" - {beta} xs_{s.cluster_id}" for s in sources]
    out.append(" obj:" + "".join(terms))
    out.append("Subject To")

    # (6)/(10): source outward flow bounded by x_q.
    for source in sources:
        names = entry_vars[source.cluster_id]
        if names:
            out.append(
                f" c6_{source.cluster_id}: "
                + " + ".join(names)
                + f" - xs_{source.cluster_id} = 0"
            )
        else:
            out.append(f" c6_{source.cluster_id}: xs_{source.cluster_id} = 0")

    # (9): conservation at ordinary cells; pins may drain.
    for p in cells:
        if p in pin_set:
            continue  # pins are sinks: no conservation row
        inflow = [_fvar(q, p) for q in p.neighbors4() if q in cell_set]
        inflow += [name for name, v in entry_target.items() if v == p]
        outflow = [_fvar(p, q) for q in p.neighbors4() if q in cell_set]
        if not inflow and not outflow:
            continue
        terms = " + ".join(inflow) if inflow else ""
        terms += "".join(f" - {v}" for v in outflow)
        out.append(f" c9_{p.x}_{p.y}: {terms.strip()} = 0")

    # (12): at most 2 incident units per cell.
    for p in cells:
        incident = [_fvar(q, p) for q in p.neighbors4() if q in cell_set]
        incident += [_fvar(p, q) for q in p.neighbors4() if q in cell_set]
        incident += [name for name, v in entry_target.items() if v == p]
        if incident:
            out.append(f" c12_{p.x}_{p.y}: " + " + ".join(incident) + " <= 2")

    # Pins drain at most one unit each.
    for pin in sorted(pin_set):
        inflow = [_fvar(q, pin) for q in pin.neighbors4() if q in cell_set]
        inflow += [name for name, v in entry_target.items() if v == pin]
        if inflow:
            out.append(
                f" cpin_{pin.x}_{pin.y}: " + " + ".join(inflow) + " <= 1"
            )

    out.append("Bounds")
    for s in sources:
        out.append(f" 0 <= xs_{s.cluster_id} <= 1")
    for a, b in arcs:
        out.append(f" 0 <= {_fvar(a, b)} <= 1")
    for names in entry_vars.values():
        for name in names:
            out.append(f" 0 <= {name} <= 1")
    out.append("End")
    return "\n".join(out) + "\n"


def write_escape_lp(
    path: str,
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Optional[Set[Point]] = None,
) -> None:
    """Write the LP to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export_escape_lp(grid, sources, pins, blocked))
