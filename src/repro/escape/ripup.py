"""Blocking-net diagnosis for the de-clustering / rip-up loop (Section 3).

When escape routing cannot reach some cluster, the overall flow rips up
the paths that block it and retries.  This module finds *which* nets
block a failed source: a penalised Dijkstra probe runs from the source's
tap cells to the nearest candidate pin, allowed to cross cells owned by
rippable nets at a high penalty — the nets crossed by the cheapest probe
are the minimal plausible rip-up set.  Length-matching clusters may be
made rippable too, at a higher penalty (the paper's "higher rip-up
cost").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy

_RIP_PENALTY = 1000.0
"""Probe cost for entering a cell owned by a rippable net."""


@dataclass
class ProbeResult:
    """Outcome of a blocking probe.

    Attributes:
        nets: rippable net ids crossed by the cheapest tap-to-pin probe.
        length: the probe's step count.
        crossed_cells: per blocking net, the probed cells it owns — used
            to decide whether only the net's escape path blocks (rip just
            that) or its internal channels do (full rip / demotion).
    """

    nets: Set[int]
    length: int
    crossed_cells: Dict[int, Set[Point]] = field(default_factory=dict)


def find_blocking_nets(
    grid: RoutingGrid,
    occupancy: Occupancy,
    tap_cells: Sequence[Point],
    pins: Iterable[Point],
    *,
    rippable: Set[int],
    rip_cost: Optional[Dict[int, float]] = None,
    permanent: Optional[Set[Point]] = None,
) -> Optional[ProbeResult]:
    """Return the nets blocking a failed escape source.

    Args:
        grid: the routing grid.
        occupancy: current cell ownership.
        tap_cells: the failed source's tap cells.
        pins: candidate control-pin cells.
        rippable: net ids the probe may cross (candidates for rip-up).
        rip_cost: optional per-net penalty multiplier (e.g. > 1 for
            length-matching clusters); defaults to 1 for every net.
        permanent: cells that can never be freed regardless of owner
            (valve terminals); the probe refuses to cross them.

    Returns:
        A :class:`ProbeResult`, or None when no probe exists even through
        rippable cells (the source is walled in by obstacles or protected
        nets).
    """
    pin_set = {Point(p[0], p[1]) for p in pins}
    if not pin_set or not tap_cells:
        return None
    rip_cost = rip_cost or {}

    def step_cost(p: Point) -> Optional[float]:
        if not grid.is_free(p):
            return None
        owner = occupancy.owner(p)
        if owner == FREE:
            return 1.0
        if permanent is not None and p in permanent:
            return None
        if owner in rippable:
            return 1.0 + _RIP_PENALTY * rip_cost.get(owner, 1.0)
        return None

    best: Dict[Point, float] = {}
    parent: Dict[Point, Optional[Point]] = {}
    heap: List[Tuple[float, int, Point]] = []
    tie = count()
    for tap in tap_cells:
        tap = Point(tap[0], tap[1])
        best[tap] = 0.0
        parent[tap] = None
        heapq.heappush(heap, (0.0, next(tie), tap))

    goal: Optional[Point] = None
    while heap:
        d, _, p = heapq.heappop(heap)
        if d > best.get(p, float("inf")):
            continue
        if p in pin_set and parent[p] is not None:
            goal = p
            break
        for q in p.neighbors4():
            if not grid.in_bounds(q):
                continue
            cost = step_cost(q)
            if cost is None:
                continue
            nd = d + cost
            if nd < best.get(q, float("inf")):
                best[q] = nd
                parent[q] = p
                heapq.heappush(heap, (nd, next(tie), q))
    if goal is None:
        return None

    result = ProbeResult(nets=set(), length=-1)
    node: Optional[Point] = goal
    while node is not None:
        owner = occupancy.owner(node)
        if owner != FREE and owner in rippable:
            result.nets.add(owner)
            result.crossed_cells.setdefault(owner, set()).add(node)
        node = parent[node]
        result.length += 1
    return result
