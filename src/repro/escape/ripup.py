"""Blocking-net diagnosis for the de-clustering / rip-up loop (Section 3).

When escape routing cannot reach some cluster, the overall flow rips up
the paths that block it and retries.  This module finds *which* nets
block a failed source: a penalised Dijkstra probe runs from the source's
tap cells to the nearest candidate pin, allowed to cross cells owned by
rippable nets at a high penalty — the nets crossed by the cheapest probe
are the minimal plausible rip-up set.  Length-matching clusters may be
made rippable too, at a higher penalty (the paper's "higher rip-up
cost").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FREE, Occupancy
from repro.routing.core.engine import _nbr_table

_RIP_PENALTY = 1000.0
"""Probe cost for entering a cell owned by a rippable net."""


@dataclass
class ProbeResult:
    """Outcome of a blocking probe.

    Attributes:
        nets: rippable net ids crossed by the cheapest tap-to-pin probe.
        length: the probe's step count.
        crossed_cells: per blocking net, the probed cells it owns — used
            to decide whether only the net's escape path blocks (rip just
            that) or its internal channels do (full rip / demotion).
    """

    nets: Set[int]
    length: int
    crossed_cells: Dict[int, Set[Point]] = field(default_factory=dict)


def find_blocking_nets(
    grid: RoutingGrid,
    occupancy: Occupancy,
    tap_cells: Sequence[Point],
    pins: Iterable[Point],
    *,
    rippable: Set[int],
    rip_cost: Optional[Dict[int, float]] = None,
    permanent: Optional[Set[Point]] = None,
) -> Optional[ProbeResult]:
    """Return the nets blocking a failed escape source.

    Args:
        grid: the routing grid.
        occupancy: current cell ownership.
        tap_cells: the failed source's tap cells.
        pins: candidate control-pin cells.
        rippable: net ids the probe may cross (candidates for rip-up).
        rip_cost: optional per-net penalty multiplier (e.g. > 1 for
            length-matching clusters); defaults to 1 for every net.
        permanent: cells that can never be freed regardless of owner
            (valve terminals); the probe refuses to cross them.

    Returns:
        A :class:`ProbeResult`, or None when no probe exists even through
        rippable cells (the source is walled in by obstacles or protected
        nets).
    """
    # The probe is a layer-0 subproblem, like the escape solvers it
    # serves: owner/obstacle arrays are truncated to the plane and
    # upper-layer taps (3-tuples) cannot seed it.
    grid = grid.plane_grid()
    width = grid.width
    height = grid.height
    size = width * height
    pin_ids = {
        p[1] * width + p[0]
        for p in pins
        if 0 <= p[0] < width and 0 <= p[1] < height
    }
    tap_cells = [t for t in tap_cells if len(t) == 2]
    if not pin_ids or not tap_cells:
        return None
    rip_cost = rip_cost or {}
    owner_arr = occupancy.owner_array()[:size]

    # Per-cell probe cost, fused once instead of per neighbour visit:
    # free cells cost 1, rippable-owned cells carry the rip penalty, and
    # everything impassable (obstacle / protected owner / permanent
    # occupied cell / off-grid guard slot, see engine._GUARD_NOTE) holds
    # -1 so one sign test replaces the old step_cost call.
    cost = np.full(size + width, -1.0, dtype=np.float64)
    step = cost[:size]
    owned = owner_arr != FREE
    step[~owned] = 1.0
    for net in rippable:
        step[owner_arr == net] = 1.0 + _RIP_PENALTY * rip_cost.get(net, 1.0)
    if permanent is not None:
        for p in permanent:
            if 0 <= p[0] < width and 0 <= p[1] < height:
                pid = p[1] * width + p[0]
                if owned[pid]:
                    step[pid] = -1.0
    step[grid.obstacle_mask().view(np.bool_)] = -1.0
    cost_mv = cost.data
    nbr_mv = memoryview(_nbr_table(width, height).reshape(-1))

    best: Dict[int, float] = {}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int, int]] = []
    tie = count()
    for tap in tap_cells:
        x, y = tap[0], tap[1]
        if not (0 <= x < width and 0 <= y < height):
            continue
        cid = y * width + x
        best[cid] = 0.0
        parent[cid] = -1
        heapq.heappush(heap, (0.0, next(tie), cid))

    goal = -1
    while heap:
        d, _, p = heapq.heappop(heap)
        if d > best.get(p, float("inf")):
            continue
        if p in pin_ids and parent[p] >= 0:
            goal = p
            break
        base = 4 * p
        # Neighbour order East, West, South, North, as everywhere in the
        # kernel core (off-chip steps land on -1 guard-cost slots).
        for k in range(4):
            q = nbr_mv[base + k]
            c = cost_mv[q]
            if c < 0.0:
                continue
            nd = d + c
            if nd < best.get(q, float("inf")):
                best[q] = nd
                parent[q] = p
                heapq.heappush(heap, (nd, next(tie), q))
    if goal < 0:
        return None

    result = ProbeResult(nets=set(), length=-1)
    node = goal
    while node >= 0:
        owner = occupancy.owner_id(node)
        if owner != FREE and owner in rippable:
            result.nets.add(owner)
            result.crossed_cells.setdefault(owner, set()).add(
                Point(node % width, node // width)
            )
        node = parent[node]
        result.length += 1
    return result
