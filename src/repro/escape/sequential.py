"""Sequential (net-at-a-time) escape routing baseline.

The paper argues that formulating escape routing as one *global* min-cost
flow "effectively improves routability with minimized channel length"
compared to routing clusters one at a time, where early nets can block
later ones and ordering artifacts inflate total length.  This module
implements that baseline so the claim can be measured (see
``benchmarks/bench_ablation_escape.py``): identical interface to
:func:`repro.escape.mcf.solve_escape`, but each source is routed greedily
with A* and committed before the next one starts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.escape.mcf import EscapeResult, EscapeSource
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import KernelPreconditionError
from repro.routing.astar import astar_route
from repro.routing.path import Path


def solve_escape_sequential(
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Optional[Set[Point]] = None,
    *,
    order: str = "input",
) -> EscapeResult:
    """Route every source to a pin one at a time (greedy baseline).

    Args:
        grid: the routing grid.
        sources: cluster demands (see :class:`EscapeSource`).
        pins: candidate control-pin cells.
        blocked: cells no escape path may use (routed channels, valves).
        order: ``"input"`` keeps the caller's order; ``"near"`` routes
            sources whose taps are closest to any pin first (a common
            greedy heuristic).

    Returns:
        An :class:`EscapeResult`; paths of earlier sources block later
        ones, so both completion and total cost can only be worse than
        (or equal to) the global min-cost-flow formulation.
    """
    blocked = set(blocked) if blocked else set()
    result = EscapeResult()
    if not sources:
        return result
    pin_cells = []
    seen = set()
    for pin in pins:
        pin = Point(pin[0], pin[1])
        if pin not in seen:
            seen.add(pin)
            pin_cells.append(pin)

    ordered = list(sources)
    if order == "near":
        def nearest_pin_distance(source: EscapeSource) -> int:
            return min(
                (abs(t[0] - p[0]) + abs(t[1] - p[1]))
                for t in source.tap_cells
                for p in pin_cells
            ) if pin_cells else 0

        ordered.sort(key=nearest_pin_distance)
    elif order != "input":
        raise KernelPreconditionError(f"unknown order {order!r}")

    used_pins: Set[Point] = set()
    for source in ordered:
        taps = [Point(t[0], t[1]) for t in source.tap_cells]
        # Entry cells: free neighbours of the taps (or the tap itself if
        # it is unoccupied — singleton valves).
        entries: List[Point] = []
        entry_tap = {}
        for tap in taps:
            if grid.is_free(tap) and tap not in blocked:
                entries.append(tap)
                entry_tap[tap] = tap
                continue
            for v in tap.neighbors4():
                if grid.is_free(v) and v not in blocked and v not in entry_tap:
                    entries.append(v)
                    entry_tap[v] = tap
        targets = [
            p for p in pin_cells
            if p not in used_pins and grid.is_free(p) and p not in blocked
        ]
        path = astar_route(grid, entries, targets, extra_obstacles=blocked)
        if path is None:
            result.unrouted.append(source.cluster_id)
            continue
        tap = entry_tap[path.source]
        cells = list(path.cells) if tap == path.source else [tap] + list(path.cells)
        full = Path(cells)
        result.paths[source.cluster_id] = full
        result.pin_of[source.cluster_id] = full.target
        result.flow_value += 1
        result.total_cost += full.length
        used_pins.add(full.target)
        blocked |= set(full.cells)
    return result
