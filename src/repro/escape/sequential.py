"""Sequential (net-at-a-time) escape routing baseline.

The paper argues that formulating escape routing as one *global* min-cost
flow "effectively improves routability with minimized channel length"
compared to routing clusters one at a time, where early nets can block
later ones and ordering artifacts inflate total length.  This module
implements that baseline so the claim can be measured (see
``benchmarks/bench_ablation_escape.py``): identical interface to
:func:`repro.escape.mcf.solve_escape`, but each source is routed greedily
with A* and committed before the next one starts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.escape.mcf import EscapeResult, EscapeSource
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import KernelPreconditionError
from repro.routing.core import SearchSpace, astar_search
from repro.routing.path import Path


def solve_escape_sequential(
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Optional[Set[Point]] = None,
    *,
    order: str = "input",
) -> EscapeResult:
    """Route every source to a pin one at a time (greedy baseline).

    Args:
        grid: the routing grid.
        sources: cluster demands (see :class:`EscapeSource`).
        pins: candidate control-pin cells.
        blocked: cells no escape path may use (routed channels, valves).
        order: ``"input"`` keeps the caller's order; ``"near"`` routes
            sources whose taps are closest to any pin first (a common
            greedy heuristic).

    Returns:
        An :class:`EscapeResult`; paths of earlier sources block later
        ones, so both completion and total cost can only be worse than
        (or equal to) the global min-cost-flow formulation.
    """
    # Track no-go cells as flat ids; each routed path joins the set, so
    # the per-source SearchSpace below sees earlier paths as obstacles.
    # Like the min-cost-flow formulation, escape is a layer-0 subproblem:
    # the search runs on the planar restriction, and upper-layer blocked
    # cells (3-tuples under the mixed-arity rule) are transparent to it.
    grid = grid.plane_grid()
    width = grid.width
    height = grid.height
    blocked_ids: Set[int] = set()
    if blocked:
        for p in blocked:
            if len(p) == 2 and 0 <= p[0] < width and 0 <= p[1] < height:
                blocked_ids.add(p[1] * width + p[0])
    result = EscapeResult()
    if not sources:
        return result
    pin_cells = []
    seen = set()
    for pin in pins:
        pin = Point(pin[0], pin[1])
        if pin not in seen:
            seen.add(pin)
            pin_cells.append(pin)

    ordered = list(sources)
    if order == "near":
        def nearest_pin_distance(source: EscapeSource) -> int:
            return min(
                (abs(t[0] - p[0]) + abs(t[1] - p[1]))
                for t in source.tap_cells
                for p in pin_cells
            ) if pin_cells else 0

        ordered.sort(key=nearest_pin_distance)
    elif order != "input":
        raise KernelPreconditionError(f"unknown order {order!r}")

    used_pins: Set[Point] = set()
    for source in ordered:
        space = SearchSpace(grid, extra_obstacle_ids=blocked_ids)
        taps = [Point(t[0], t[1]) for t in source.tap_cells if len(t) == 2]
        # Entry cells: free neighbours of the taps (or the tap itself if
        # it is unoccupied — singleton valves).
        entries: List[Point] = []
        entry_tap = {}
        for tap in taps:
            if space.routable(tap):
                entries.append(tap)
                entry_tap[tap] = tap
                continue
            for v in tap.neighbors4():
                if space.routable(v) and v not in entry_tap:
                    entries.append(v)
                    entry_tap[v] = tap
        targets = [
            p for p in pin_cells if p not in used_pins and space.routable(p)
        ]
        ids = astar_search(space, entries, targets)
        if ids is None:
            result.unrouted.append(source.cluster_id)
            continue
        path = space.materialize(ids)
        tap = entry_tap[path.source]
        cells = list(path.cells) if tap == path.source else [tap] + list(path.cells)
        full = Path(cells)
        result.paths[source.cluster_id] = full
        result.pin_of[source.cluster_id] = full.target
        result.flow_value += 1
        result.total_cost += full.length
        used_pins.add(full.target)
        blocked_ids.update(full.cell_ids(width))
    return result
