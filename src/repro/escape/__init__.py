"""Escape routing: clusters to control pins via min-cost flow (Section 5).

After the clusters' internal channels are routed, every cluster must be
connected to a control pin.  The paper formulates this as one global
min-cost flow whose objective maximises the number of routed clusters
first (the β-dominated term) and minimises total channel length second;
crossings are excluded by capacity-2 node degree (constraint 12), which
the builder realises by splitting each grid cell into an in/out node pair
joined by a capacity-1 arc.

* :mod:`repro.escape.mcf` — network construction, solving, and flow
  decomposition back into grid paths.
* :mod:`repro.escape.ripup` — blocking-net diagnosis for the
  de-clustering / path rip-up loop of the overall flow.
"""

from repro.escape.constraints import ConstraintViolation, check_paper_constraints
from repro.escape.mcf import EscapeResult, EscapeSource, solve_escape
from repro.escape.ripup import ProbeResult, find_blocking_nets
from repro.escape.sequential import solve_escape_sequential

__all__ = [
    "EscapeSource",
    "EscapeResult",
    "solve_escape",
    "solve_escape_sequential",
    "find_blocking_nets",
    "ProbeResult",
    "check_paper_constraints",
    "ConstraintViolation",
]
