"""Min-cost-flow escape routing (Section 5 of the paper).

The network encodes constraints (6)-(12):

* every usable grid cell is split ``in -> out`` with capacity 1 —
  constraint (12), at most one path per cell;
* obstacle/boundary/foreign cells are simply absent — constraint (8);
* each cluster gets a selector node fed by the super source with
  capacity 1 and arcs onto the free neighbours of its tap cells —
  constraints (6), (10) bound the cluster's outward flow by one, and the
  absence of arcs *into* tap cells realises (7), (11);
* candidate control pins drain into the super sink with capacity 1.

Maximising flow before cost reproduces the β-dominated objective: the
number of routed clusters is maximised, then total channel length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flownet.mincostflow import MinCostFlow
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.observability import context as obs
from repro.robustness import faults
from repro.robustness.faults import FaultInjected
from repro.robustness.errors import (
    FlowDecompositionError,
    KernelPreconditionError,
)
from repro.routing.core.engine import _nbr_table
from repro.routing.path import Path


@dataclass(frozen=True)
class EscapeSource:
    """One cluster's escape-routing demand.

    Attributes:
        cluster_id: the cluster's net id.
        tap_cells: cells the escape channel may start from — the Steiner
            root for LM clusters of 3+ valves, the path middle cell for
            2-valve LM clusters, every routed path cell for ordinary
            clusters, or the valve cell itself for singletons (Section 5).
    """

    cluster_id: int
    tap_cells: Tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.tap_cells:
            raise KernelPreconditionError("an escape source needs at least one tap cell")


@dataclass
class EscapeResult:
    """Outcome of one escape-routing solve.

    Attributes:
        paths: per routed cluster, the escape path from a tap cell to the
            assigned control pin (tap cell included as first cell).
        pin_of: assigned control pin per routed cluster.
        unrouted: cluster ids the flow could not route this round.
        flow_value: number of routed clusters.
        total_cost: summed arc costs (total escape channel length).
    """

    paths: Dict[int, Path] = field(default_factory=dict)
    pin_of: Dict[int, Point] = field(default_factory=dict)
    unrouted: List[int] = field(default_factory=list)
    flow_value: int = 0
    total_cost: float = 0.0

    @property
    def complete(self) -> bool:
        """Return True when every source was routed."""
        return not self.unrouted


def solve_escape(
    grid: RoutingGrid,
    sources: Sequence[EscapeSource],
    pins: Sequence[Point],
    blocked: Optional[Set[Point]] = None,
) -> EscapeResult:
    """Route every escape source to a distinct control pin, min-cost.

    Args:
        grid: the routing grid.
        sources: cluster demands; tap cells are assumed unusable for
            through-routing (they belong to routed channels/valves), so
            include them in ``blocked``.
        pins: candidate control-pin cells (each serves at most one
            cluster).
        blocked: cells no escape path may use — all cells occupied by
            routed channels and all valve cells.  Tap cells may (and
            normally do) appear here.

    Returns:
        The decomposed routing; crossings are impossible by construction.
    """
    if faults.fires("mcf_solver_raise"):
        raise FaultInjected("injected min-cost-flow solver failure")
    obs.counter("escape.mcf_solves").inc()
    blocked = blocked or set()
    result = EscapeResult()
    if not sources:
        return result
    if not pins:
        result.unrouted = [s.cluster_id for s in sources]
        return result

    # Escape routing is a layer-0 subproblem: pins live on the chip
    # surface, so the flow network is built over the planar restriction
    # and upper-layer cells (3-tuples under the mixed-arity rule) are
    # transparent to it.
    grid = grid.plane_grid()
    width = grid.width
    height = grid.height
    size = width * height
    usable_mask = grid.obstacle_mask() == 0
    for p in blocked:
        if len(p) == 2 and 0 <= p[0] < width and 0 <= p[1] < height:
            usable_mask[p[1] * width + p[0]] = False

    # Usable cells in deterministic row-major order, keyed by flat cell
    # id (the kernel core's representation — the flow decomposition below
    # walks cells per step, so lookups stay int-keyed).  ``kof[cid]`` is
    # the usable index of cell ``cid``, -1 when unusable.
    uids = np.flatnonzero(usable_mask)
    n_cells = int(uids.size)
    kof = np.full(size, -1, dtype=np.int64)
    kof[uids] = np.arange(n_cells, dtype=np.int64)

    # Node layout: in(k) = 2k, out(k) = 2k + 1, then S, T, selectors.
    net = MinCostFlow(2 * n_cells + 2 + len(sources))
    s_node = 2 * n_cells
    t_node = 2 * n_cells + 1

    def in_node(k: int) -> int:
        return 2 * k

    def out_node(k: int) -> int:
        return 2 * k + 1

    # Cell splitting and adjacency (neighbour order East, West, South,
    # North — the canonical ``neighbors4`` order; the C-order flattening
    # of the per-cell candidate table reproduces the scalar build's arc
    # insertion order exactly, so the solved flow is unchanged).
    ks = np.arange(n_cells, dtype=np.int64)
    net.add_arcs(
        2 * ks,
        2 * ks + 1,
        np.ones(n_cells, dtype=np.int64),
        np.zeros(n_cells, dtype=np.float64),
    )
    cand = _nbr_table(width, height)[uids].astype(np.int64)
    in_range = (cand >= 0) & (cand < size)
    kq = np.where(in_range, kof[np.where(in_range, cand, 0)], -1)
    edge_mask = kq >= 0
    arc_from = np.repeat(ks, 4).reshape(n_cells, 4)[edge_mask]
    arc_kq = kq[edge_mask]
    adj_q = cand[edge_mask]
    adj_arcs = net.add_arcs(
        2 * arc_from + 1,
        2 * arc_kq,
        np.ones(arc_kq.size, dtype=np.int64),
        np.ones(arc_kq.size, dtype=np.float64),
    )
    # CSR over the adjacency arcs: rows are ascending k already, so a
    # cumulative per-row count indexes each cell's (arc, q) slice.
    aptr = np.zeros(n_cells + 1, dtype=np.int64)
    np.cumsum(edge_mask.sum(axis=1), out=aptr[1:])
    aptr_mv = memoryview(aptr)
    adj_arcs_mv = memoryview(adj_arcs)
    adj_q_mv = memoryview(adj_q)

    # Control pins.
    pin_arc_of_cell: Dict[int, Tuple[int, Point]] = {}
    seen_pins: Set[int] = set()
    for pin in pins:
        x, y = pin[0], pin[1]
        if not (0 <= x < width and 0 <= y < height):
            continue  # an off-chip pin can never be usable
        pid = y * width + x
        if pid in seen_pins:
            continue
        seen_pins.add(pid)
        k = int(kof[pid])
        if k < 0:
            continue
        arc = net.add_arc(out_node(k), t_node, 1, 0.0)
        pin_arc_of_cell[k] = (arc, Point(x, y))

    # Sources.
    tap_arcs: Dict[int, List[Tuple[int, Point, int]]] = {}
    for si, source in enumerate(sources):
        selector = 2 * n_cells + 2 + si
        net.add_arc(s_node, selector, 1, 0.0)
        entries: List[Tuple[int, Point, int]] = []
        seen_entry: Set[int] = set()
        for tap in source.tap_cells:
            if len(tap) == 3:
                continue  # upper-layer cells cannot tap the planar escape
            tap = Point(tap[0], tap[1])
            on_chip = 0 <= tap[0] < width and 0 <= tap[1] < height
            tid = tap[1] * width + tap[0] if on_chip else -1
            k_tap = int(kof[tid]) if on_chip else -1
            if k_tap >= 0:
                # The tap cell itself is routable (singleton valve case):
                # the path starts on it at zero cost.
                if tid not in seen_entry:
                    arc = net.add_arc(selector, in_node(k_tap), 1, 0.0)
                    entries.append((arc, tap, tid))
                    seen_entry.add(tid)
                continue
            for v in tap.neighbors4():
                if not (0 <= v[0] < width and 0 <= v[1] < height):
                    continue
                vid = v[1] * width + v[0]
                kv = int(kof[vid])
                if kv < 0 or vid in seen_entry:
                    continue
                arc = net.add_arc(selector, in_node(kv), 1, 1.0)
                entries.append((arc, tap, vid))
                seen_entry.add(vid)
        tap_arcs[si] = entries

    flow_value, total_cost = net.max_flow_min_cost(
        s_node, t_node, max_flow=len(sources)
    )
    result.flow_value = flow_value
    result.total_cost = total_cost

    # Decompose per source.
    for si, source in enumerate(sources):
        entry = next(
            ((arc, tap, v) for arc, tap, v in tap_arcs[si] if net.flow_on(arc) > 0),
            None,
        )
        if entry is None:
            result.unrouted.append(source.cluster_id)
            continue
        _, tap, vid = entry
        v = Point(vid % width, vid // width)
        cells: List[Point] = [tap] if tap != v else []
        current = int(kof[vid])
        cells.append(v)
        pin: Optional[Point] = None
        guard = 0
        while pin is None:
            guard += 1
            if guard > 4 * n_cells:  # pragma: no cover - defensive
                raise FlowDecompositionError("flow decomposition failed to terminate")
            pin_entry = pin_arc_of_cell.get(current)
            if pin_entry is not None and net.flow_on(pin_entry[0]) > 0:
                pin = pin_entry[1]
                break
            q = -1
            for j in range(aptr_mv[current], aptr_mv[current + 1]):
                if net.flow_on(adj_arcs_mv[j]) > 0:
                    q = adj_q_mv[j]
                    break
            if q < 0:  # pragma: no cover - defensive
                raise FlowDecompositionError("flow decomposition hit a dead end")
            cells.append(Point(q % width, q // width))
            current = int(kof[q])
        result.paths[source.cluster_id] = Path(cells)
        result.pin_of[source.cluster_id] = pin
    return result
