"""PACOR reproduction: control-layer routing for flow-based biochips.

A from-scratch Python implementation of *PACOR: Practical Control-Layer
Routing Flow with Length-Matching Constraint for Flow-Based Microfluidic
Biochips* (Yao, Ho, Cai — DAC 2015), including every substrate the flow
depends on: DME Steiner-tree construction, maximum-weight-clique
candidate selection, negotiation-based detailed routing, min-cost-flow
escape routing and bounded-length path detouring.

Quickstart::

    from repro import run_pacor, s1

    result = run_pacor(s1())
    print(result.summary_row())
"""

from repro.core import (
    PacorConfig,
    PacorResult,
    PacorRouter,
    run_detour_first,
    run_method,
    run_pacor,
    run_without_selection,
)
from repro.designs import (
    Design,
    chip1,
    chip2,
    design_by_name,
    generate_design,
    load_design,
    s1,
    s2,
    s3,
    s4,
    s5,
    save_design,
    table1_suite,
)
from repro.robustness import (
    Budget,
    BudgetExceeded,
    DesignFormatError,
    PacorError,
)

__version__ = "1.0.0"

__all__ = [
    "PacorConfig",
    "PacorRouter",
    "PacorResult",
    "run_pacor",
    "run_without_selection",
    "run_detour_first",
    "run_method",
    "PacorError",
    "DesignFormatError",
    "BudgetExceeded",
    "Budget",
    "Design",
    "generate_design",
    "save_design",
    "load_design",
    "design_by_name",
    "table1_suite",
    "chip1",
    "chip2",
    "s1",
    "s2",
    "s3",
    "s4",
    "s5",
    "__version__",
]
