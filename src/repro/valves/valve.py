"""The valve entity: a grid position plus an activation sequence."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.valves.activation import ActivationSequence


@dataclass(frozen=True)
class Valve:
    """A control-layer valve.

    Attributes:
        id: unique integer id within a design.
        position: grid cell of the valve's control-layer terminal.
        sequence: the valve's activation sequence from scheduling.
    """

    id: int
    position: Point
    sequence: ActivationSequence

    def compatible(self, other: "Valve") -> bool:
        """Return True when the two valves may share a control pin (Def. 4)."""
        return self.sequence.compatible(other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Valve({self.id}@{self.position})"
