"""Valve clustering: minimum clique cover of the compatibility graph.

Under broadcast addressing every cluster of pairwise-compatible valves
shares one control pin, so minimising the number of clusters minimises the
number of pins.  Minimum clique cover is NP-complete (the paper cites
Garey & Johnson), so — like the paper — we use a fast greedy heuristic.

Clusters that carry the length-matching constraint arrive as part of the
design input and are preserved verbatim; only the remaining valves are
clustered here.  The paper requires LM clusters to be compatibility-legal,
which :func:`cluster_valves` validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.valves.activation import ActivationSequence
from repro.valves.compatibility import pairwise_compatible
from repro.valves.valve import Valve


@dataclass
class Cluster:
    """A group of pairwise-compatible valves sharing one control pin.

    Attributes:
        id: unique cluster id within a design.
        valves: member valves (at least one).
        length_matching: True when the cluster carries the LM constraint —
            all valve-to-pin channel lengths must agree within δ.
    """

    id: int
    valves: List[Valve]
    length_matching: bool = False

    def __post_init__(self) -> None:
        if not self.valves:
            raise ValueError("a cluster must contain at least one valve")
        if not pairwise_compatible(self.valves):
            raise ValueError(
                f"cluster {self.id} contains incompatible valves; the "
                "length-matching constraint must conform with compatibility"
            )

    @property
    def size(self) -> int:
        """Return the number of member valves."""
        return len(self.valves)

    def valve_ids(self) -> List[int]:
        """Return the member valve ids in insertion order."""
        return [v.id for v in self.valves]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "LM" if self.length_matching else "ord"
        return f"Cluster({self.id},{tag},{self.valve_ids()})"


def greedy_clique_partition(valves: Sequence[Valve]) -> List[List[Valve]]:
    """Partition ``valves`` into pairwise-compatible groups greedily.

    The heuristic grows one clique at a time: valves are visited in order
    of increasing compatibility degree (hard-to-place valves first), each
    seeding a new group that then absorbs every later valve compatible
    with the group's merged activation signature.  Merged-signature
    compatibility is exact for cliques, so every returned group is a true
    clique of the compatibility graph.
    """
    remaining = list(valves)
    if not remaining:
        return []

    # Compatibility degree: how many other valves each valve can join.
    degree: Dict[int, int] = {v.id: 0 for v in remaining}
    for i, a in enumerate(remaining):
        for b in remaining[i + 1 :]:
            if a.compatible(b):
                degree[a.id] += 1
                degree[b.id] += 1
    remaining.sort(key=lambda v: (degree[v.id], v.id))

    groups: List[List[Valve]] = []
    assigned: Set[int] = set()
    for seed in remaining:
        if seed.id in assigned:
            continue
        group = [seed]
        signature: ActivationSequence = seed.sequence
        assigned.add(seed.id)
        for candidate in remaining:
            if candidate.id in assigned:
                continue
            if signature.compatible(candidate.sequence):
                group.append(candidate)
                signature = signature.merge(candidate.sequence)
                assigned.add(candidate.id)
        groups.append(group)
    return groups


def cluster_valves(
    valves: Sequence[Valve],
    lm_groups: Sequence[Sequence[int]] = (),
) -> List[Cluster]:
    """Run the valve-clustering stage of the PACOR flow.

    Args:
        valves: every valve of the design.
        lm_groups: valve-id groups that carry the length-matching
            constraint.  These are preserved as-is (and validated for
            compatibility); the remaining valves are clustered greedily.

    Returns:
        All clusters, LM clusters first, each with a fresh sequential id.
    """
    by_id: Dict[int, Valve] = {v.id: v for v in valves}
    if len(by_id) != len(valves):
        raise ValueError("valve ids must be unique")

    clusters: List[Cluster] = []
    in_lm: Set[int] = set()
    for group in lm_groups:
        members = []
        for vid in group:
            if vid not in by_id:
                raise ValueError(f"length-matching group references unknown valve {vid}")
            if vid in in_lm:
                raise ValueError(f"valve {vid} appears in two length-matching groups")
            in_lm.add(vid)
            members.append(by_id[vid])
        clusters.append(Cluster(len(clusters), members, length_matching=True))

    free_valves = [v for v in valves if v.id not in in_lm]
    for group in greedy_clique_partition(free_valves):
        clusters.append(Cluster(len(clusters), group, length_matching=False))
    return clusters
