"""Exact minimum clique cover for broadcast addressing.

The valve-clustering stage minimises the number of control pins: a
minimum partition of the valves into pairwise-compatible groups (minimum
clique cover of the compatibility graph — NP-complete, Garey & Johnson).
The flow uses the fast greedy heuristic of
:func:`repro.valves.clustering.greedy_clique_partition`; this module adds
an *exact* branch-and-bound solver for small instances, used to measure
the heuristic's optimality gap (and in tests as ground truth).

The search assigns valves one at a time to an existing compatible group
or to a fresh group, pruning when the group count reaches the incumbent.
Compatibility against a group is O(1) via the merged-sequence signature.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.valves.activation import ActivationSequence
from repro.valves.clustering import greedy_clique_partition
from repro.valves.valve import Valve


def minimum_clique_cover(
    valves: Sequence[Valve],
    *,
    max_nodes: int = 2_000_000,
) -> List[List[Valve]]:
    """Return a minimum partition of ``valves`` into compatible groups.

    Exact for instances that fit the ``max_nodes`` search budget (tens of
    valves in practice); falls back to the greedy solution if the budget
    trips before the optimum is proven (the greedy incumbent is always
    returned at worst).
    """
    valves = list(valves)
    if not valves:
        return []

    greedy = greedy_clique_partition(valves)
    best_count = len(greedy)
    best_assignment: Optional[List[int]] = None

    # Order valves by decreasing constraint (fewest compatibilities first
    # would also work; decreasing degree gives strong early pruning).
    n = len(valves)
    degree = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if valves[i].compatible(valves[j]):
                degree[i] += 1
                degree[j] += 1
    order = sorted(range(n), key=lambda i: (degree[i], i))

    assignment = [-1] * n
    signatures: List[ActivationSequence] = []
    nodes = 0
    budget_hit = False

    def descend(pos: int) -> None:
        nonlocal best_count, best_assignment, nodes, budget_hit
        if budget_hit:
            return
        nodes += 1
        if nodes > max_nodes:
            budget_hit = True
            return
        if len(signatures) >= best_count:
            return  # cannot beat the incumbent
        if pos == n:
            best_count = len(signatures)
            best_assignment = assignment.copy()
            return
        valve = valves[order[pos]]
        for gi, signature in enumerate(signatures):
            if signature.compatible(valve.sequence):
                signatures[gi] = signature.merge(valve.sequence)
                assignment[order[pos]] = gi
                descend(pos + 1)
                signatures[gi] = signature
        # Open a fresh group (bounded by the incumbent check above).
        signatures.append(valve.sequence)
        assignment[order[pos]] = len(signatures) - 1
        descend(pos + 1)
        signatures.pop()
        assignment[order[pos]] = -1

    descend(0)

    if best_assignment is None:
        return greedy
    groups: List[List[Valve]] = [[] for _ in range(best_count)]
    for i, gi in enumerate(best_assignment):
        groups[gi].append(valves[i])
    return [g for g in groups if g]


def clique_cover_gap(valves: Sequence[Valve]) -> int:
    """Return greedy group count minus the optimum (0 = greedy optimal)."""
    return len(greedy_clique_partition(valves)) - len(minimum_clique_cover(valves))
