"""Valve model: activation sequences, compatibility, and clustering.

Implements Definitions 1-4 of the paper (activation sequences over the
alphabet ``{"0", "1", "X"}`` and the compatibility relation they induce)
and the valve-clustering stage of the PACOR flow: partitioning the valves
into a minimum number of pairwise-compatible groups so that each group can
share one control pin under the broadcast addressing scheme.
"""

from repro.valves.activation import (
    ActivationSequence,
    Status,
    compatible_status,
    merge_status,
)
from repro.valves.clustering import Cluster, cluster_valves, greedy_clique_partition
from repro.valves.compatibility import compatibility_graph, pairwise_compatible
from repro.valves.valve import Valve

__all__ = [
    "ActivationSequence",
    "Status",
    "compatible_status",
    "merge_status",
    "Valve",
    "compatibility_graph",
    "pairwise_compatible",
    "Cluster",
    "cluster_valves",
    "greedy_clique_partition",
]
