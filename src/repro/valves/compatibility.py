"""Valve compatibility graph construction."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import networkx as nx

from repro.valves.valve import Valve


def pairwise_compatible(valves: Iterable[Valve]) -> bool:
    """Return True when every pair of ``valves`` is compatible.

    Uses the merge-signature property of activation sequences: a set is
    pairwise compatible iff the running merge succeeds and every member is
    compatible with it, which this incremental check realises in one pass.
    """
    merged = None
    for valve in valves:
        if merged is None:
            merged = valve.sequence
        else:
            if not merged.compatible(valve.sequence):
                return False
            merged = merged.merge(valve.sequence)
    return True


def compatibility_graph(valves: Sequence[Valve]) -> nx.Graph:
    """Return the compatibility graph over ``valves``.

    Nodes are valve ids; an edge joins two valves whose activation
    sequences are compatible (Def. 4).  A clique in this graph is a set of
    valves that may legally share one control pin.
    """
    graph = nx.Graph()
    graph.add_nodes_from(v.id for v in valves)
    items: List[Valve] = list(valves)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if a.compatible(b):
                graph.add_edge(a.id, b.id)
    return graph
