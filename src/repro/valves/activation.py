"""Activation sequences and their compatibility relation (Defs 1-3).

Each valve is driven by a "0-1-X" sequence measured in time steps:
``"0"`` means open, ``"1"`` means closed, and ``"X"`` means don't-care.
Two statuses are *compatible* when they are equal or either is ``"X"``;
two sequences are compatible when they are compatible at every step.
Compatible valves may share a control pin.
"""

from __future__ import annotations

from typing import Iterable, Optional

Status = str
"""One activation status: ``"0"``, ``"1"`` or ``"X"``."""

_VALID = frozenset("01X")


def compatible_status(a: Status, b: Status) -> bool:
    """Return True when statuses ``a`` and ``b`` are compatible (Def. 2)."""
    return a == b or a == "X" or b == "X"


def merge_status(a: Status, b: Status) -> Status:
    """Return the most constrained status covering both ``a`` and ``b``.

    Merging ``"X"`` with anything yields the other status; merging equal
    statuses yields that status.  Raises :class:`ValueError` on
    incompatible input — callers must check compatibility first.
    """
    if a == b:
        return a
    if a == "X":
        return b
    if b == "X":
        return a
    raise ValueError(f"cannot merge incompatible statuses {a!r} and {b!r}")


class ActivationSequence:
    """An immutable "0-1-X" activation sequence (Def. 1)."""

    __slots__ = ("_steps",)

    def __init__(self, steps: str) -> None:
        if not steps:
            raise ValueError("activation sequences must have at least one step")
        bad = set(steps) - _VALID
        if bad:
            raise ValueError(f"invalid activation statuses: {sorted(bad)}")
        self._steps = steps

    @property
    def steps(self) -> str:
        """Return the sequence as a string over ``{'0', '1', 'X'}``."""
        return self._steps

    def __len__(self) -> int:
        return len(self._steps)

    def __getitem__(self, i: int) -> Status:
        return self._steps[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActivationSequence) and self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ActivationSequence({self._steps!r})"

    def compatible(self, other: "ActivationSequence") -> bool:
        """Return True when the sequences are compatible (Def. 3).

        Sequences of different lengths are never compatible: the paper
        assumes all sequences share the schedule length, and comparing
        mismatched schedules would be a modelling error.
        """
        if len(self._steps) != len(other._steps):
            return False
        return all(
            compatible_status(a, b) for a, b in zip(self._steps, other._steps)
        )

    def merge(self, other: "ActivationSequence") -> "ActivationSequence":
        """Return the most constrained sequence covering both inputs.

        The merge of a compatible set acts as the set's signature: a new
        sequence is compatible with *every* member iff it is compatible
        with the merge.  This makes greedy clique growing exact and O(1)
        per candidate instead of O(cluster size).
        """
        if len(self._steps) != len(other._steps):
            raise ValueError("cannot merge sequences of different lengths")
        return ActivationSequence(
            "".join(merge_status(a, b) for a, b in zip(self._steps, other._steps))
        )


def merge_all(sequences: Iterable[ActivationSequence]) -> Optional[ActivationSequence]:
    """Merge a collection of pairwise-compatible sequences, or None if empty."""
    merged: Optional[ActivationSequence] = None
    for seq in sequences:
        merged = seq if merged is None else merged.merge(seq)
    return merged
