"""Algorithm 2: iterative rip-up-and-detour for length matching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.detour.cluster import RoutedTree
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import Occupancy
from repro.observability import context as obs
from repro.routing.bounded import bounded_length_route, extend_path_with_bumps
from repro.routing.path import Path


def check_equal(tree: RoutedTree, delta: int) -> Tuple[bool, int, List[int]]:
    """The paper's ``checkEqual``.

    Returns ``(equal, maxL, short_sinks)``: whether every full-path
    length lies in ``[maxL - delta, maxL]``, the maximum full-path
    length, and the sinks whose channels are too short.
    """
    lengths = tree.full_lengths()
    max_length = max(lengths.values())
    shorts = sorted(
        sink for sink, length in lengths.items() if length < max_length - delta
    )
    return (not shorts, max_length, shorts)


@dataclass
class DetourResult:
    """Outcome of detouring one cluster.

    Attributes:
        matched: True when the cluster meets the threshold after (or
            without) detouring.
        iterations: detour rounds performed.
        detoured_edges: number of edge paths that were replaced.
    """

    matched: bool
    iterations: int = 0
    detoured_edges: int = 0


def _recommit(occupancy: Occupancy, tree: RoutedTree) -> None:
    """Synchronise the occupancy overlay with the tree's current cells."""
    grid = occupancy.grid
    occupancy.release_ids(tree.cluster_id)
    occupancy.occupy_ids(
        tree.all_cell_ids(grid.width, grid.height), tree.cluster_id
    )


def _detour_edge(
    grid: RoutingGrid,
    occupancy: Occupancy,
    tree: RoutedTree,
    edge_key: int,
    extra: Tuple[int, int],
) -> Optional[Path]:
    """Replace one edge path with a longer one.

    ``extra`` is the inclusive window of additional length required.
    Other edges of the same tree (and the escape path) are obstacles for
    the new route except at the replaced edge's endpoints.  Returns the
    new path, or None.
    """
    old = tree.edge_paths[edge_key]
    via_length = tree.via_length
    old_length = old.weighted_length(via_length)
    lo = old_length + extra[0]
    hi = old_length + extra[1]

    width = grid.width
    height = grid.height
    own_ids = set(old.cell_ids(width, height))
    other_ids = tree.all_cell_ids(width, height) - own_ids
    endpoint_ids = {grid.index(old.source), grid.index(old.target)}
    forbidden_ids = other_ids - endpoint_ids

    # Weighted lower bound on any source-target path: planar L1 plus
    # via_length per layer crossed.  Equals plain Manhattan on one layer.
    s, t = old.source, old.target
    sz = s[2] if len(s) == 3 else 0
    tz = t[2] if len(t) == 3 else 0
    floor = abs(s[0] - t[0]) + abs(s[1] - t[1]) + abs(sz - tz) * via_length

    # Free the old path in the overlay so the router may reuse its cells;
    # cells shared with sibling edges keep their protection via forbidden.
    occupancy.release_cell_ids(own_ids - other_ids)
    new_path = bounded_length_route(
        grid,
        old.source,
        old.target,
        max(lo, floor),
        hi,
        net=tree.cluster_id,
        occupancy=occupancy,
        extra_obstacle_ids=forbidden_ids,
    )
    if new_path is None:
        # Serpentine fallback: bump the existing path.
        want = extra[1] if extra[1] % 2 == 0 else extra[1] - 1
        if want >= max(extra[0], 2):
            new_path = extend_path_with_bumps(
                grid,
                old,
                want,
                net=tree.cluster_id,
                occupancy=occupancy,
                extra_obstacle_ids=forbidden_ids,
            )
    # The caller rewrites edge_paths and recommits, restoring the overlay
    # to a consistent state regardless of outcome.
    return new_path


def detour_cluster(
    grid: RoutingGrid,
    occupancy: Occupancy,
    tree: RoutedTree,
    delta: int,
    *,
    theta: int = 10,
) -> DetourResult:
    """Detour a routed cluster's short full paths (Algorithm 2).

    Iterates up to ``theta`` rounds.  Each round walks every short full
    path and detours the first detourable path of its sequence (an edge
    already detoured this round counts as success — its new length shifts
    this sink too, so the recheck decides).  On a sink with no detourable
    edge, all paths are restored and the cluster is reported unmatched.

    The occupancy overlay is kept in sync with the tree throughout.
    """
    equal, max_length, shorts = check_equal(tree, delta)
    if equal:
        return DetourResult(matched=True)

    original_paths = tree.copy_paths()
    result = DetourResult(matched=False)

    while not equal:
        if result.iterations >= theta:
            break
        result.iterations += 1
        # Effort counters: rounds and replacements count when the work
        # happens, even if a later rollback discards the result.
        obs.counter("detour.rounds").inc()
        detoured_this_round: Set[int] = set()

        for sink in shorts:
            deficit = max_length - tree.full_length(sink)
            if deficit <= delta:
                continue  # an earlier detour this round already fixed it
            # Window of additional length, parity-feasible by delta >= 1.
            lo = max(deficit - delta, 1)
            hi = deficit
            success = False
            for edge_key in tree.sequences[sink]:
                if edge_key in detoured_this_round:
                    success = True
                    break
                new_path = _detour_edge(grid, occupancy, tree, edge_key, (lo, hi))
                if new_path is not None:
                    tree.edge_paths[edge_key] = new_path
                    _recommit(occupancy, tree)
                    detoured_this_round.add(edge_key)
                    result.detoured_edges += 1
                    obs.counter("detour.edges").inc()
                    success = True
                    # A detour on an edge shared with the longest path
                    # lengthens that path too; later sinks this round must
                    # aim at the *new* maximum or their windows undershoot.
                    max_length = max(tree.full_lengths().values())
                    break
                _recommit(occupancy, tree)  # restore released cells
            if not success:
                tree.edge_paths = original_paths
                _recommit(occupancy, tree)
                result.matched = False
                result.detoured_edges = 0  # every detour was rolled back
                return result

        equal, max_length, shorts = check_equal(tree, delta)

    result.matched = equal
    if not equal:
        tree.edge_paths = original_paths
        _recommit(occupancy, tree)
        result.detoured_edges = 0  # every detour was rolled back
    return result
