"""Routed form of a length-matching cluster.

A :class:`RoutedTree` collects what the detour stage needs: the routed
grid path of every tree edge, the order in which each sink's full path
traverses those edges (the *path sequence* of Def. 6 — nearest-the-valve
first), and the escape path shared by every sink.  Two-valve clusters are
represented uniformly by splitting their single routed path at the middle
cell (the escape tap point of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry.point import Point
from repro.robustness.errors import KernelPreconditionError
from repro.routing.path import Path


@dataclass
class RoutedTree:
    """A routed length-matching cluster.

    Attributes:
        cluster_id: the cluster's net id.
        edge_paths: routed path per edge key; each path runs from the
            child node towards the parent node.
        sequences: per sink (valve index), the edge keys from the leaf up
            to the tree root (Def. 6 order).
        root: the tree root cell (escape tap).
        escape_path: root-to-pin path, set after escape routing.
        via_length: channel units one via step contributes to length
            matching (``grid.via_length``); 1 on single-layer designs,
            where every length below reduces to the plain step count.
    """

    cluster_id: int
    edge_paths: Dict[int, Path]
    sequences: Dict[int, List[int]]
    root: Point
    escape_path: Optional[Path] = None
    via_length: int = 1

    def sink_ids(self) -> List[int]:
        """Return the valve indices of the cluster's sinks."""
        return sorted(self.sequences)

    def full_length(self, sink: int) -> int:
        """Return the routed channel length from ``sink`` to the pin.

        The escape path contributes equally to every sink, so matching is
        unaffected by whether it is routed yet; lengths before escape
        routing are relative to the tree root.
        """
        vl = self.via_length
        length = sum(
            self.edge_paths[k].weighted_length(vl)
            for k in self.sequences[sink]
        )
        if self.escape_path is not None:
            length += self.escape_path.weighted_length(vl)
        return length

    def full_lengths(self) -> Dict[int, int]:
        """Return the channel length for every sink."""
        return {sink: self.full_length(sink) for sink in self.sequences}

    def mismatch(self) -> int:
        """Return the spread between the longest and shortest channel."""
        lengths = list(self.full_lengths().values())
        return max(lengths) - min(lengths)

    def all_cells(self) -> Set[Point]:
        """Return every cell of the cluster's channels (escape included)."""
        cells: Set[Point] = set()
        for path in self.edge_paths.values():
            cells.update(path.cells)
        if self.escape_path is not None:
            cells.update(self.escape_path.cells)
        return cells

    def all_cell_ids(self, width: int, height: int = 0) -> Set[int]:
        """Return every channel cell as a flat cell id (escape included).

        The id-set twin of :meth:`all_cells` for a ``width``-wide grid —
        what the detour stage feeds straight into occupancy buckets and
        :class:`~repro.routing.core.space.SearchSpace` extra obstacles.
        ``height`` is required only when paths visit upper layers.
        """
        ids: Set[int] = set()
        for path in self.edge_paths.values():
            ids.update(path.cell_ids(width, height))
        if self.escape_path is not None:
            ids.update(self.escape_path.cell_ids(width, height))
        return ids

    def total_length(self) -> int:
        """Return the summed channel length (tree edges + escape)."""
        vl = self.via_length
        total = sum(p.weighted_length(vl) for p in self.edge_paths.values())
        if self.escape_path is not None:
            total += self.escape_path.weighted_length(vl)
        return total

    def copy_paths(self) -> Dict[int, Path]:
        """Return a snapshot of the edge paths (for restore-on-failure)."""
        return dict(self.edge_paths)


def routed_tree_from_candidate(
    tree: CandidateTree, paths_by_edge: Dict[int, Path], via_length: int = 1
) -> RoutedTree:
    """Assemble a :class:`RoutedTree` from a routed candidate tree.

    ``paths_by_edge`` maps the index of each edge (in ``tree.edges()``
    order) to its routed path.  Paths may run in either direction; they
    are normalised child-to-parent.
    """
    edges = tree.edges()
    if set(paths_by_edge) != set(range(len(edges))):
        raise KernelPreconditionError(
            "paths_by_edge must cover every tree edge exactly",
            kernel="repro.detour.cluster",
        )

    edge_paths: Dict[int, Path] = {}
    for idx, edge in enumerate(edges):
        path = paths_by_edge[idx]
        if path.source == edge.child:
            edge_paths[idx] = path
        elif path.target == edge.child:
            edge_paths[idx] = path.reversed()
        else:
            # Point-to-path routing may tap mid-channel; keep as-is.
            edge_paths[idx] = path

    # Build per-sink sequences by walking the topology.
    sequences: Dict[int, List[int]] = {}
    edge_index: Dict[Tuple[Point, Point], int] = {}
    for idx, edge in enumerate(edges):
        edge_index[(edge.parent, edge.child)] = idx

    def visit(node: TopologyNode, above: List[int]) -> None:
        if node.is_leaf():
            assert node.sink is not None
            sequences[node.sink] = list(above)
            return
        for child in node.children:
            assert node.position is not None and child.position is not None
            idx = edge_index[(node.position, child.position)]
            visit(child, [idx] + above)

    visit(tree.root, [])  # sequences are already leaf-first (Def. 6)

    return RoutedTree(
        cluster_id=tree.cluster_id,
        edge_paths=edge_paths,
        sequences=sequences,
        root=tree.root_position,
        via_length=via_length,
    )


def routed_tree_from_pair(
    cluster_id: int,
    path: Path,
    sink_a: int = 0,
    sink_b: int = 1,
    via_length: int = 1,
) -> RoutedTree:
    """Build a :class:`RoutedTree` for a two-valve cluster.

    The single valve-to-valve path is split at its middle cell, which
    becomes the tree root and escape tap (Section 5); each half is one
    edge owned by one sink.
    """
    mid = len(path.cells) // 2
    root = path.cells[mid]
    half_a = Path(path.cells[: mid + 1])  # sink_a .. root (child-to-parent)
    half_b = Path(tuple(reversed(path.cells[mid:])))  # sink_b .. root
    return RoutedTree(
        cluster_id=cluster_id,
        edge_paths={0: half_a, 1: half_b},
        sequences={sink_a: [0], sink_b: [1]},
        root=root,
        via_length=via_length,
    )
