"""Path detouring for length matching (Section 6, Algorithm 2).

Once a length-matching cluster is routed (tree edges plus escape path),
the per-valve channel lengths generally differ by the DME rounding and
obstacle-avoidance deltas.  This package lengthens the *short* full paths
until every valve's channel length lies in ``[maxL - delta, maxL]``:

* :class:`RoutedTree` — the routed form of a cluster: one grid path per
  tree edge, the per-sink path sequences (Def. 6) and the shared escape
  path.
* :func:`check_equal` — the paper's ``checkEqual``: matched?, maxL, and
  the sinks whose full paths are short.
* :func:`detour_cluster` — Algorithm 2: iterate over short full paths,
  detouring the edge nearest the valve via minimum-length bounded routing
  (with a serpentine fallback), restoring everything on failure.
"""

from repro.detour.cluster import RoutedTree, routed_tree_from_pair
from repro.detour.detour import DetourResult, check_equal, detour_cluster

__all__ = [
    "RoutedTree",
    "routed_tree_from_pair",
    "check_equal",
    "detour_cluster",
    "DetourResult",
]
