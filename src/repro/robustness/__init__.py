"""Fault tolerance for the PACOR flow.

Three cooperating pieces keep one pathological cluster or malformed
design from killing or hanging a whole run:

* :mod:`repro.robustness.errors` — the structured error taxonomy
  (:class:`PacorError` and friends) replacing bare exceptions.
* :mod:`repro.robustness.budget` — per-run compute budgets (wall clock,
  A* expansions, rip-up rounds) threaded down to the search inner loops.
* :mod:`repro.robustness.incidents` — machine-readable records of what
  degraded, carried on the :class:`~repro.core.result.PacorResult`.
* :mod:`repro.robustness.faults` — the deterministic, seeded
  fault-injection harness behind ``tests/robustness/``.
* :mod:`repro.robustness.checkpoint` — serialisable snapshots of the
  mid-flow router state, so a budget-interrupted run can be resumed
  with a fresh budget instead of restarted.
* :mod:`repro.robustness.faultmap` — the first-class physical fault
  model (faulty cells, stuck valves, timed mid-flow fault events).
* :mod:`repro.robustness.repair` — incremental damage assessment and
  the re-routing escalation ladder that heals a routed design.  **Not**
  re-exported here: it imports the routing stack, which imports this
  package — import it directly (``from repro.robustness import
  repair``) or lazily.
"""

from repro.robustness.budget import Budget
from repro.robustness.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.robustness.errors import (
    BudgetExceeded,
    CheckpointFormatError,
    ConfigError,
    DesignFormatError,
    FaultFormatError,
    FlowDecompositionError,
    GenerationError,
    JobFormatError,
    KernelPreconditionError,
    OccupancyCorruption,
    PacorError,
    RouterStuck,
    ServiceError,
    StageFailure,
    TraceFormatError,
)
from repro.robustness.faults import (
    INJECTION_POINTS,
    FaultInjected,
    FaultInjector,
    FaultRecord,
    FaultSpec,
)
from repro.robustness.faultmap import FAULTMAP_VERSION, FaultEvent, FaultMap
from repro.robustness.incidents import Incident, Severity

__all__ = [
    "PacorError",
    "ConfigError",
    "DesignFormatError",
    "CheckpointFormatError",
    "FaultFormatError",
    "FlowDecompositionError",
    "GenerationError",
    "JobFormatError",
    "KernelPreconditionError",
    "ServiceError",
    "TraceFormatError",
    "Checkpoint",
    "CHECKPOINT_VERSION",
    "StageFailure",
    "BudgetExceeded",
    "RouterStuck",
    "OccupancyCorruption",
    "Budget",
    "Incident",
    "Severity",
    "FaultSpec",
    "FaultRecord",
    "FaultInjector",
    "FaultInjected",
    "INJECTION_POINTS",
    "FaultMap",
    "FaultEvent",
    "FAULTMAP_VERSION",
]
