"""Checkpoint/resume for budget-limited runs.

A :class:`Checkpoint` is a JSON-serialisable snapshot of the full
mid-flow router state: the design document itself, the occupancy overlay
(owner array *and* per-net buckets, so a snapshot composes with
:meth:`~repro.grid.occupancy.Occupancy.repair`), every net's routing
(tree edge paths, MST paths, escape path, pin, demotion flags), the
pending-escape queue, the budget counters, the completed-stage cursor
and the incident/event logs.

:class:`~repro.core.pacor.PacorRouter` captures one at every stage
boundary and at the moment a compute budget interrupts a stage; a
`BudgetExceeded` run therefore never throws its routing work away — the
CLI writes the snapshot (``pacor route S3 --expansion-budget N
--checkpoint ckpt.json``) and ``pacor resume ckpt.json --budget-s M``
rehydrates the state and re-enters the flow at the interrupted stage
with a fresh budget, skipping the completed ones.

This module is deliberately free of router imports: the router owns the
conversion between its internal net bookkeeping and the plain documents
stored here, so the checkpoint format stays a standalone, versioned
contract (see ``docs/robustness.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Union

from repro.robustness.errors import CheckpointFormatError

CHECKPOINT_VERSION = 1
"""Current format version; bumped on any incompatible change."""

_REQUIRED_FIELDS = (
    "version",
    "design",
    "method",
    "config",
    "stage",
    "completed_stages",
    "n_multi_clusters",
    "next_net_id",
    "nets",
    "occupancy",
    "budget",
    "events",
    "incidents",
    "failure_reasons",
)


@dataclass
class Checkpoint:
    """One serialisable snapshot of a mid-flow router state.

    Attributes:
        design: the full design document (``design_to_json`` format), so
            a checkpoint file is self-contained and resumable without
            access to the original input file.
        method: Table-2 method name of the interrupted run.
        config: the run's :meth:`~repro.core.config.PacorConfig.to_json`
            document — a resume reproduces every tunable, overriding
            only the budget.
        stage: the next stage to execute on resume — the interrupted
            stage itself after a budget interruption, the following
            stage at a clean boundary.
        completed_stages: stages that finished before the snapshot.
        n_multi_clusters: the clustering stage's multi-valve cluster
            count (Table-2 "#Clusters"), fixed at clustering time.
        next_net_id: the router's net-id allocator cursor.
        nets: per-net documents (the router owns the format).
        occupancy: :meth:`~repro.grid.occupancy.Occupancy.export_state`
            snapshot.
        pending_escape: net ids still queued for escape routing when the
            snapshot was taken mid-escape; None outside the stage.
        budget: consumed budget counters (``expansions_used``,
            ``rip_rounds_used``, ``elapsed_s``) and the tripped limits,
            for the record and for cumulative-accounting resumes.
        events: the stage log up to the snapshot.
        incidents: structured incident documents up to the snapshot.
        failure_reasons: per-net failure reasons recorded so far.
        observability: optional trace/metrics linkage written by an
            instrumented run (``trace_id``, ``span_id``,
            ``spans_recorded``, ``counters``); a resume restores the
            counters and stitches its spans onto the recorded trace.
            Absent (None) on uninstrumented runs and older snapshots.
        fault_map: optional
            :meth:`~repro.robustness.faultmap.FaultMap.to_json` document
            of the run's physical faults, with already-applied timed
            events popped — a resume re-arms exactly the faults that
            have not fired yet.  Absent (None) on fault-free runs and
            older snapshots.
    """

    design: Dict[str, Any]
    method: str
    config: Dict[str, Any]
    stage: str
    completed_stages: List[str]
    n_multi_clusters: int
    next_net_id: int
    nets: List[Dict[str, Any]]
    occupancy: Dict[str, Any]
    budget: Dict[str, Any]
    events: List[str] = field(default_factory=list)
    incidents: List[Dict[str, Any]] = field(default_factory=list)
    failure_reasons: Dict[str, str] = field(default_factory=dict)
    pending_escape: Optional[List[int]] = None
    observability: Optional[Dict[str, Any]] = None
    fault_map: Optional[Dict[str, Any]] = None
    version: int = CHECKPOINT_VERSION

    @property
    def design_name(self) -> str:
        """Return the snapshot design's name."""
        return str(self.design.get("name", "?"))

    def to_json(self) -> Dict[str, Any]:
        """Return the versioned JSON document of the snapshot."""
        return {
            "version": self.version,
            "design": self.design,
            "method": self.method,
            "config": self.config,
            "stage": self.stage,
            "completed_stages": list(self.completed_stages),
            "n_multi_clusters": self.n_multi_clusters,
            "next_net_id": self.next_net_id,
            "nets": list(self.nets),
            "occupancy": self.occupancy,
            "pending_escape": (
                list(self.pending_escape)
                if self.pending_escape is not None
                else None
            ),
            "budget": self.budget,
            "events": list(self.events),
            "incidents": list(self.incidents),
            "failure_reasons": dict(self.failure_reasons),
            "observability": self.observability,
            "fault_map": self.fault_map,
        }

    @classmethod
    def from_json(
        cls, doc: Dict[str, Any], *, source: Optional[str] = None
    ) -> "Checkpoint":
        """Rebuild a checkpoint from its document (validated).

        Raises:
            CheckpointFormatError: the document is not a checkpoint, its
                version is unknown, or a required field is missing — the
                error names the field (and ``source``, when given).
        """
        if not isinstance(doc, dict):
            raise CheckpointFormatError(
                f"checkpoint document must be a JSON object, "
                f"got {type(doc).__name__}",
                path=source,
            )
        # The version gate comes before the required-field sweep: a
        # future-version document legitimately carries different fields,
        # and "unsupported version" is the actionable diagnosis there —
        # not whichever v1 field it happens to lack.
        if "version" not in doc:
            raise CheckpointFormatError(
                "missing required field", field="version", path=source
            )
        version = doc["version"]
        if version != CHECKPOINT_VERSION:
            raise CheckpointFormatError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})",
                field="version",
                path=source,
            )
        for name in _REQUIRED_FIELDS:
            if name not in doc:
                raise CheckpointFormatError(
                    "missing required field", field=name, path=source
                )
        if not isinstance(doc["stage"], str):
            raise CheckpointFormatError(
                f"expected a stage name, got {type(doc['stage']).__name__}",
                field="stage",
                path=source,
            )
        if not isinstance(doc["nets"], list):
            raise CheckpointFormatError(
                f"expected a list of net documents, "
                f"got {type(doc['nets']).__name__}",
                field="nets",
                path=source,
            )
        pending = doc.get("pending_escape")
        return cls(
            design=doc["design"],
            method=str(doc["method"]),
            config=doc["config"],
            stage=doc["stage"],
            completed_stages=[str(s) for s in doc["completed_stages"]],
            n_multi_clusters=int(doc["n_multi_clusters"]),
            next_net_id=int(doc["next_net_id"]),
            nets=doc["nets"],
            occupancy=doc["occupancy"],
            budget=doc["budget"],
            events=[str(e) for e in doc["events"]],
            incidents=list(doc["incidents"]),
            failure_reasons={
                str(k): str(v) for k, v in doc["failure_reasons"].items()
            },
            pending_escape=(
                [int(n) for n in pending] if pending is not None else None
            ),
            observability=doc.get("observability"),
            fault_map=doc.get("fault_map"),
            version=int(version),
        )

    def save(self, path: Union[str, FilePath]) -> None:
        """Write the snapshot to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    @classmethod
    def load(cls, path: Union[str, FilePath]) -> "Checkpoint":
        """Read a snapshot back from JSON (validated).

        Raises:
            CheckpointFormatError: the file is not valid JSON or the
                document is malformed; the error names the file.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CheckpointFormatError(
                    f"not valid JSON ({exc})", path=str(path)
                ) from exc
        return cls.from_json(doc, source=str(path))
