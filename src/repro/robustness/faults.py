"""Deterministic, seeded fault injection for the chaos suite.

Production code declares *named injection points* by calling
:func:`fires` at the places where real faults occur (a solver raising, a
search running out of budget, corrupted bookkeeping, ...).  When no
injector is installed — the normal case — :func:`fires` is a single
``None`` check.  Tests install a :class:`FaultInjector` (usually via the
:func:`inject` context manager) that decides, deterministically from the
seed and per-point call counts, which calls fail.

Determinism contract: with the same specs and seed, the n-th call to a
point always gets the same answer, so a whole flow run under injection is
reproducible bit for bit.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.robustness.errors import ConfigError

INJECTION_POINTS = (
    "candidate_generation_empty",
    "negotiation_edge_failure",
    "mcf_solver_raise",
    "astar_budget_exhaustion",
    "occupancy_corruption",
    "valve_stuck",
    "cell_blockage",
)
"""Every named injection point wired into the flow.

The first five simulate *software* faults (a component crashing or
misbehaving); ``valve_stuck`` and ``cell_blockage`` simulate *physical*
chip defects — a valve stuck closed or a channel cell blocked mid-flow.
They are polled at stage boundaries by
:meth:`~repro.core.pacor.PacorRouter._apply_fault_events` and turn into
timed :class:`~repro.robustness.faultmap.FaultEvent`s handled by the
repair machinery rather than exceptions.
"""


class FaultInjected(RuntimeError):
    """Raised by injection points that simulate a crashing component.

    Deliberately *not* a :class:`~repro.robustness.errors.PacorError`:
    injected crashes must exercise the supervisor's handling of foreign,
    unexpected exceptions.
    """


@dataclass(frozen=True)
class FaultSpec:
    """When one injection point fires.

    Attributes:
        point: injection-point name (one of :data:`INJECTION_POINTS`).
        probability: chance each call fires (drawn from the injector's
            seeded RNG); 1.0 fires every eligible call.
        max_fires: stop firing after this many hits (None = unlimited).
        fire_on_calls: explicit 1-based call indices that fire; when set,
            ``probability`` is ignored.
    """

    point: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    fire_on_calls: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ConfigError(
                f"unknown injection point {self.point!r}; "
                f"choose from {list(INJECTION_POINTS)}",
                field="point",
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must lie in [0, 1]", field="probability")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigError("max_fires must be non-negative", field="max_fires")


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired: the point and its call index."""

    point: str
    call_index: int


@dataclass
class FaultInjector:
    """Seeded decision engine behind the injection points.

    Attributes:
        specs: one :class:`FaultSpec` per armed point.
        seed: RNG seed for probabilistic specs.
        calls: calls seen per point (fired or not).
        fired: every fault that fired, in order.
    """

    specs: Dict[str, FaultSpec]
    seed: int = 0
    calls: Dict[str, int] = field(default_factory=dict)
    fired: List[FaultRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultInjector":
        """Build an injector from specs, rejecting duplicate points."""
        by_point: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in by_point:
                raise ConfigError(f"duplicate spec for point {spec.point!r}")
            by_point[spec.point] = spec
        return cls(specs=by_point, seed=seed)

    def fires(self, point: str) -> bool:
        """Record one call to ``point`` and decide whether it fails."""
        count = self.calls.get(point, 0) + 1
        self.calls[point] = count
        spec = self.specs.get(point)
        if spec is None:
            return False
        fired_here = sum(1 for r in self.fired if r.point == point)
        if spec.max_fires is not None and fired_here >= spec.max_fires:
            return False
        if spec.fire_on_calls is not None:
            hit = count in spec.fire_on_calls
        elif spec.probability >= 1.0:
            hit = True
        else:
            hit = self._rng.random() < spec.probability
        if hit:
            self.fired.append(FaultRecord(point, count))
        return hit

    def fire_count(self, point: str) -> int:
        """Return how many times ``point`` has fired so far."""
        return sum(1 for r in self.fired if r.point == point)


_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> None:
    """Arm ``injector`` process-wide (tests only; remember to :func:`clear`)."""
    global _ACTIVE
    _ACTIVE = injector


def clear() -> None:
    """Disarm fault injection."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """Return the armed injector, if any."""
    return _ACTIVE


def fires(point: str) -> bool:
    """Injection point hook: True when the armed injector fails this call.

    A near-no-op (one global ``None`` check) when nothing is armed, so
    production code may call it unconditionally on hot-ish paths.
    """
    if _ACTIVE is None:
        return False
    return _ACTIVE.fires(point)


@contextmanager
def inject(*specs: FaultSpec, seed: int = 0) -> Iterator[FaultInjector]:
    """Arm an injector for the duration of a ``with`` block."""
    injector = FaultInjector.of(*specs, seed=seed)
    install(injector)
    try:
        yield injector
    finally:
        clear()
