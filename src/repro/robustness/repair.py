"""Incremental damage assessment and self-healing repair of routed designs.

A fabricated chip that developed new physical defects (a
:class:`~repro.robustness.faultmap.FaultMap`) does not need a full
re-route: most nets are untouched.  This module finds exactly the
damaged nets with one flat sweep of the fault cell ids against the
occupancy owner array (:func:`affected_nets`), rips up only those, and
re-routes them against the *surviving* occupancy through an escalation
ladder:

1. **local** — bounded A* inside the damaged net's bounding box,
   inflated geometrically round over round;
2. **full** — unrestricted A* over the whole chip;
3. **relaxed** — for length-matching nets only: serpentine extension of
   untapped sink legs, then a geometrically widening δ window
   (``matched`` is always reported against the *original* δ);
4. **degraded** — the net is given up with a ``failure_reason`` and a
   structured incident.

Per-net effort is charged to a run-wide
:class:`~repro.robustness.budget.Budget`; an exhausted budget snapshots
the mid-repair state as a :class:`RepairCheckpoint` so ``pacor repair``
can resume with a fresh budget.  Kernel counters
(``repair.nets_affected``, ``repair.reroutes``, ``repair.escalations``)
and tracing spans make repair cost observable; ``benchmarks/
bench_repair.py`` measures it against a full re-route.

Import note: this module imports the routing stack, which imports
:mod:`repro.robustness` — so it is **not** re-exported from the package
``__init__``; import it directly (``from repro.robustness import
repair``) or lazily.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.result import (
    NetReport,
    PacorResult,
    Segment,
    segments_of_path,
)
from repro.designs.design import Design
from repro.designs.io import design_from_json, design_to_json
from repro.geometry.point import Point, cell_point
from repro.geometry.rect import Rect
from repro.grid.grid import RoutingGrid
from repro.grid.occupancy import FAULT_NET, FREE, Occupancy
from repro.observability import context as obs
from repro.robustness.budget import Budget
from repro.robustness.errors import (
    BudgetExceeded,
    CheckpointFormatError,
    ConfigError,
)
from repro.robustness.faultmap import FaultMap
from repro.robustness.incidents import Incident, Severity
from repro.routing.astar import astar_route
from repro.routing.bounded import extend_path_with_bumps
from repro.routing.path import Path

REPAIR_CHECKPOINT_VERSION = 1
"""Current mid-repair snapshot format version."""

REPAIR_CHECKPOINT_KIND = "pacor-repair"
"""The ``kind`` marker distinguishing repair snapshots from result files
and route checkpoints (both are JSON objects too)."""

LADDER = ("local", "full", "rip", "relaxed", "degraded")
"""The escalation rungs, cheapest first."""


@dataclass
class RepairConfig:
    """Tunables of the repair escalation ladder.

    Attributes:
        local_rounds: bounded re-route attempts before escalating; each
            round inflates the bounding box.
        local_margin: initial margin (cells) around the damaged net's
            bounding box.
        local_inflate: geometric growth factor of the margin per round.
        local_expansions: per-leg A* expansion cap during local rounds
            (the per-stage repair budget; the run-wide budget is charged
            on top).
        relax_rounds: δ-window widening attempts for length-matching
            nets.
        relax_factor: geometric growth factor of the δ window per relax
            round.
        rip_neighbor_limit: most neighbour nets the rip rung may evict
            to clear a congested corridor; 0 disables the rung.
    """

    local_rounds: int = 3
    local_margin: int = 2
    local_inflate: int = 2
    local_expansions: int = 2000
    relax_rounds: int = 3
    relax_factor: int = 2
    rip_neighbor_limit: int = 2

    def __post_init__(self) -> None:
        if self.local_rounds < 0 or self.relax_rounds < 0:
            raise ConfigError(
                "ladder round counts must be non-negative",
                field="local_rounds",
            )
        if self.local_margin < 1:
            raise ConfigError(
                "local_margin must be at least 1", field="local_margin"
            )
        if self.local_inflate < 2 or self.relax_factor < 2:
            raise ConfigError(
                "inflation factors must be at least 2 "
                "(the ladder must make progress)",
                field="local_inflate",
            )
        if self.local_expansions < 1:
            raise ConfigError(
                "local_expansions must be positive", field="local_expansions"
            )
        if self.rip_neighbor_limit < 0:
            raise ConfigError(
                "rip_neighbor_limit must be non-negative",
                field="rip_neighbor_limit",
            )

    def to_json(self) -> Dict[str, Any]:
        """Return the JSON document of the config."""
        return {
            "local_rounds": self.local_rounds,
            "local_margin": self.local_margin,
            "local_inflate": self.local_inflate,
            "local_expansions": self.local_expansions,
            "relax_rounds": self.relax_rounds,
            "relax_factor": self.relax_factor,
            "rip_neighbor_limit": self.rip_neighbor_limit,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "RepairConfig":
        """Rebuild a config from its document (missing keys = defaults)."""
        base = cls()
        return cls(
            local_rounds=int(doc.get("local_rounds", base.local_rounds)),
            local_margin=int(doc.get("local_margin", base.local_margin)),
            local_inflate=int(doc.get("local_inflate", base.local_inflate)),
            local_expansions=int(
                doc.get("local_expansions", base.local_expansions)
            ),
            relax_rounds=int(doc.get("relax_rounds", base.relax_rounds)),
            relax_factor=int(doc.get("relax_factor", base.relax_factor)),
            rip_neighbor_limit=int(
                doc.get("rip_neighbor_limit", base.rip_neighbor_limit)
            ),
        )


@dataclass
class NetRepair:
    """One damaged net, reduced to what re-routing needs.

    Attributes:
        net_id: the net's occupancy id.
        origin_cluster: cluster the net descends from (report plumbing).
        valve_ids: surviving valve ids (stuck valves already dropped).
        terminals: the surviving valves' positions, aligned with
            ``valve_ids``.
        pin: the net's control pin, or None when the damage predates pin
            assignment — the ladder then picks one from
            ``candidate_pins``.
        candidate_pins: free control pins the ladder may claim when
            ``pin`` is None.
        length_matching: True when the origin cluster carried the LM
            constraint.
        delta: the length-matching threshold δ.
        old_cell_ids: the ripped route's flat cell ids (seed of the
            local rung's bounding box).
        failure_note: context prepended to the degraded-rung
            ``failure_reason`` (e.g. which fault hit the net).
    """

    net_id: int
    origin_cluster: int
    valve_ids: List[int]
    terminals: List[Point]
    pin: Optional[Point] = None
    candidate_pins: List[Point] = field(default_factory=list)
    length_matching: bool = False
    delta: int = 1
    old_cell_ids: Set[int] = field(default_factory=set)
    failure_note: str = "physical fault"

    def to_json(self) -> Dict[str, Any]:
        """Return the JSON document of the spec (for repair checkpoints)."""
        return {
            "net_id": self.net_id,
            "origin_cluster": self.origin_cluster,
            "valve_ids": list(self.valve_ids),
            "terminals": [[p.x, p.y] for p in self.terminals],
            "pin": [self.pin.x, self.pin.y] if self.pin else None,
            "candidate_pins": [[p.x, p.y] for p in self.candidate_pins],
            "length_matching": self.length_matching,
            "delta": self.delta,
            "old_cell_ids": sorted(self.old_cell_ids),
            "failure_note": self.failure_note,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "NetRepair":
        """Rebuild a spec from its document."""
        pin = doc.get("pin")
        return cls(
            net_id=int(doc["net_id"]),
            origin_cluster=int(doc["origin_cluster"]),
            valve_ids=[int(v) for v in doc["valve_ids"]],
            terminals=[Point(int(x), int(y)) for x, y in doc["terminals"]],
            pin=Point(int(pin[0]), int(pin[1])) if pin else None,
            candidate_pins=[
                Point(int(x), int(y))
                for x, y in doc.get("candidate_pins", [])
            ],
            length_matching=bool(doc.get("length_matching", False)),
            delta=int(doc.get("delta", 1)),
            old_cell_ids={int(c) for c in doc.get("old_cell_ids", [])},
            failure_note=str(doc.get("failure_note", "physical fault")),
        )


@dataclass
class RepairCheckpoint:
    """Snapshot of a budget-interrupted repair run.

    Attributes:
        design: the full design document (self-contained resume).
        fault_map: the fault map document (timed events already
            collapsed — repair applies them up front).
        config: :meth:`RepairConfig.to_json` document.
        result: the *current* result document — unaffected nets
            verbatim, already-repaired nets with their new routes,
            still-pending nets ripped and marked unrouted.
        pending: :meth:`NetRepair.to_json` documents of the nets still
            awaiting repair, in execution order.
        repaired: net id (as string, JSON keys) -> ladder rung that
            healed it, for nets repaired before the interruption.
        version: snapshot format version.
    """

    design: Dict[str, Any]
    fault_map: Dict[str, Any]
    config: Dict[str, Any]
    result: Dict[str, Any]
    pending: List[Dict[str, Any]]
    repaired: Dict[str, str] = field(default_factory=dict)
    version: int = REPAIR_CHECKPOINT_VERSION

    def to_json(self) -> Dict[str, Any]:
        """Return the versioned, kind-marked JSON document."""
        return {
            "kind": REPAIR_CHECKPOINT_KIND,
            "version": self.version,
            "design": self.design,
            "fault_map": self.fault_map,
            "config": self.config,
            "result": self.result,
            "pending": list(self.pending),
            "repaired": dict(self.repaired),
        }

    @classmethod
    def from_json(
        cls, doc: Any, *, source: Optional[str] = None
    ) -> "RepairCheckpoint":
        """Rebuild a snapshot from its document (validated).

        Raises:
            CheckpointFormatError: the document is not a repair
                snapshot, its version is unknown, or a required field
                is missing.
        """
        if not isinstance(doc, dict):
            raise CheckpointFormatError(
                f"repair checkpoint must be a JSON object, "
                f"got {type(doc).__name__}",
                path=source,
            )
        if doc.get("kind") != REPAIR_CHECKPOINT_KIND:
            raise CheckpointFormatError(
                f"not a repair checkpoint "
                f"(kind {doc.get('kind')!r}, "
                f"expected {REPAIR_CHECKPOINT_KIND!r})",
                field="kind",
                path=source,
            )
        version = doc.get("version")
        if version != REPAIR_CHECKPOINT_VERSION:
            raise CheckpointFormatError(
                f"unsupported repair-checkpoint version {version!r} "
                f"(this build reads version {REPAIR_CHECKPOINT_VERSION})",
                field="version",
                path=source,
            )
        for name in ("design", "fault_map", "config", "result", "pending"):
            if name not in doc:
                raise CheckpointFormatError(
                    "missing required field", field=name, path=source
                )
        return cls(
            design=doc["design"],
            fault_map=doc["fault_map"],
            config=doc["config"],
            result=doc["result"],
            pending=list(doc["pending"]),
            repaired={
                str(k): str(v) for k, v in doc.get("repaired", {}).items()
            },
            version=int(version),
        )


@dataclass
class RepairOutcome:
    """Everything one repair run produced.

    Attributes:
        result: the healed :class:`~repro.core.result.PacorResult` —
            unaffected nets verbatim, repaired nets with fresh routes,
            unrepairable nets degraded.
        affected: net ids the damage assessment flagged.
        repaired: net id -> ladder rung that healed it.
        degraded_nets: net ids given up on.
        dropped_valves: valve ids lost to stuck-valve faults.
        checkpoint: mid-repair snapshot when the budget tripped, else
            None.
    """

    result: PacorResult
    affected: List[int]
    repaired: Dict[int, str] = field(default_factory=dict)
    degraded_nets: List[int] = field(default_factory=list)
    dropped_valves: List[int] = field(default_factory=list)
    checkpoint: Optional[RepairCheckpoint] = None


# -- damage assessment -----------------------------------------------------


def affected_nets(occupancy: Occupancy, fault_cids: Iterable[int]) -> List[int]:
    """Return the net ids whose routed cells intersect the fault set.

    One flat sweep: each fault cell id indexes the occupancy owner array
    directly — O(|faults|), independent of net count and grid size.
    :data:`~repro.grid.occupancy.FREE` and
    :data:`~repro.grid.occupancy.FAULT_NET` owners are not nets.
    """
    hit: Set[int] = set()
    for cid in fault_cids:
        owner = occupancy.owner_id(cid)
        if owner != FREE and owner != FAULT_NET:
            hit.add(owner)
    return sorted(hit)


def affected_nets_brute_force(
    net_cell_ids: Mapping[int, Iterable[int]], fault_cids: Iterable[int]
) -> List[int]:
    """Reference damage assessment: full set intersection per net.

    O(total routed cells) — the oracle the property tests hold
    :func:`affected_nets` against; never used on the hot path.
    """
    faults = set(fault_cids)
    return sorted(
        net
        for net, cells in net_cell_ids.items()
        if not faults.isdisjoint(set(cells))
    )


# -- the engine ------------------------------------------------------------


class RepairEngine:
    """Rips up damaged nets and re-routes them through the ladder.

    The engine mutates the ``occupancy`` it is handed: repaired nets'
    new cells are committed, given-up nets stay released.  Faulty cells
    are expected to be mounted under
    :data:`~repro.grid.occupancy.FAULT_NET` before repair starts (the
    engine additionally passes the fault ids into every search as the
    :class:`~repro.routing.core.space.SearchSpace` third blocked-mask
    layer, so a route can never cross a fault even if the mount was
    skipped).
    """

    def __init__(
        self,
        design: Design,
        *,
        config: Optional[RepairConfig] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.design = design
        self.grid = design.grid
        self.config = config if config is not None else RepairConfig()
        self.budget = budget if budget is not None else Budget()
        # Mirror the router: the budget's expansion counter IS the
        # ``astar.expansions`` metric, so repair search effort lands in
        # the active registry instead of vanishing into the budget.
        obs.metrics().adopt("astar.expansions", self.budget.expansion_counter)
        #: Fresh reports of nets the rip rung evicted and re-routed
        #: during the latest :meth:`repair_net` call.
        self.rip_victim_reports: Dict[int, NetReport] = {}

    # -- assessment --------------------------------------------------------

    def assess(
        self, occupancy: Occupancy, fault_cids: Iterable[int]
    ) -> List[int]:
        """Run the flat damage sweep and record the counter."""
        with obs.span("repair-assess", category="repair"):
            hit = affected_nets(occupancy, fault_cids)
        obs.counter("repair.nets_affected").inc(len(hit))
        return hit

    # -- the ladder --------------------------------------------------------

    def repair_net(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        fault_cids: Set[int],
        *,
        victim_specs: Optional[Mapping[int, "NetRepair"]] = None,
    ) -> Tuple[Optional[NetReport], str]:
        """Re-route one ripped net; return ``(report, rung)``.

        The net's old cells must already be released.  On success the
        new route is committed to ``occupancy`` and the report carries
        honest length-matching numbers (``matched`` against the
        original δ).  On failure the occupancy is left without the net
        and ``(None, "degraded")`` is returned.

        ``victim_specs`` enables the rip rung: a spec per *healthy* net
        the rung may evict and re-route.  When the rip rung heals the
        net, the evicted victims' fresh reports are left in
        :attr:`rip_victim_reports` for the caller to merge.

        Raises:
            BudgetExceeded: the run-wide budget ran out mid-search; the
                occupancy holds no partial route for this net.
        """
        cfg = self.config
        self.rip_victim_reports = {}
        with obs.span(
            "repair-net", category="repair", net=spec.net_id
        ):
            # Rung 1: local — bounded A* in an inflating bounding box.
            box = self._base_box(spec)
            for rnd in range(cfg.local_rounds):
                margin = cfg.local_margin * (cfg.local_inflate**rnd)
                fence = self._clamp(box.inflated(margin))
                if self._covers_grid(fence):
                    break  # the box stopped being "local"
                paths = self._route_network(
                    occupancy,
                    spec,
                    fault_cids,
                    fence=fence,
                    max_expansions=cfg.local_expansions,
                )
                report = self._accept(occupancy, spec, paths)
                if report is not None:
                    return report, "local"
            # Rung 2: full — unrestricted A*.
            obs.counter("repair.escalations").inc()
            paths = self._route_network(occupancy, spec, fault_cids)
            report = self._accept(occupancy, spec, paths)
            if report is not None:
                return report, "full"
            # Rung 3: rip-neighbors — only when the network itself
            # failed to route (congestion); an LM mismatch is the relax
            # rung's concern, not eviction's.
            if (
                paths is None
                and cfg.rip_neighbor_limit > 0
                and victim_specs
            ):
                obs.counter("repair.escalations").inc()
                report = self._rip_neighbors(
                    occupancy, spec, fault_cids, victim_specs
                )
                if report is not None:
                    return report, "rip"
            # Rung 4: relaxed — LM nets only, and only when the network
            # itself routed (relaxation loosens lengths, not topology).
            if paths is not None and spec.length_matching:
                obs.counter("repair.escalations").inc()
                report = self._relax(occupancy, spec, fault_cids, paths)
                if report is not None:
                    return report, "relaxed"
            if paths is not None:
                occupancy.release_ids(spec.net_id)
            # Rung 5: degraded.
            obs.counter("repair.escalations").inc()
            return None, "degraded"

    # -- rung helpers ------------------------------------------------------

    def _base_box(self, spec: NetRepair) -> Rect:
        """Return the damaged net's seed (planar) bounding box."""
        width = self.grid.width
        height = self.grid.height
        points: List[Point] = list(spec.terminals)
        if spec.pin is not None:
            points.append(spec.pin)
        # Upper-layer cells project onto the plane; the local fence is a
        # planar box replicated across every layer.
        points.extend(
            Point(cid % width, (cid // width) % height)
            for cid in spec.old_cell_ids
        )
        return Rect.from_points(points)

    def _clamp(self, box: Rect) -> Rect:
        """Clamp ``box`` to the grid."""
        return Rect(
            max(box.xlo, 0),
            max(box.ylo, 0),
            min(box.xhi, self.grid.width - 1),
            min(box.yhi, self.grid.height - 1),
        )

    def _covers_grid(self, box: Rect) -> bool:
        return (
            box.xlo == 0
            and box.ylo == 0
            and box.xhi == self.grid.width - 1
            and box.yhi == self.grid.height - 1
        )

    def _outside_ids(self, box: Rect) -> Iterator[int]:
        """Yield every cell id outside ``box`` (the local rung's fence).

        The planar fence is replicated across every layer, so a local
        repair may still hop layers inside the box.
        """
        width = self.grid.width
        for z in range(self.grid.layers):
            base = z * self.grid.plane
            for y in range(self.grid.height):
                row = base + y * width
                if box.ylo <= y <= box.yhi:
                    for x in range(0, box.xlo):
                        yield row + x
                    for x in range(box.xhi + 1, width):
                        yield row + x
                else:
                    for x in range(width):
                        yield row + x

    def _route_network(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        fault_cids: Set[int],
        *,
        fence: Optional[Rect] = None,
        max_expansions: Optional[int] = None,
    ) -> Optional[List[Path]]:
        """Sequentially re-route the net's terminals into one network.

        The first leg runs terminal -> pin (or, pin-less, terminal ->
        any candidate pin, claiming the one it reaches); every further
        leg is point-to-path routing onto the network built so far.
        Legs are committed to ``occupancy`` as they land so later legs
        see them; on any failed leg the whole net is released again.
        Terminals are ordered farthest-from-pin first (valve id breaks
        ties) — deterministic, and long legs route while the chip is
        emptiest.

        Returns the leg paths aligned with the terminal order used, or
        None.  A spec without terminals *and* without a pin has nothing
        to route and returns None.
        """
        order = self._terminal_order(spec)
        if not order:
            return None
        obs.counter("repair.reroutes").inc()
        fence_ids = (
            set(self._outside_ids(fence)) if fence is not None else None
        )
        network: List[Point] = []
        if spec.pin is not None:
            network.append(spec.pin)
        paths: List[Path] = []
        for _vid, terminal in order:
            if network:
                targets: List[Point] = network
            else:
                targets = [
                    p
                    for p in spec.candidate_pins
                    if occupancy.is_routable(p)
                    and self.grid.index(p) not in fault_cids
                ]
                if not targets:
                    return None
            try:
                path = astar_route(
                    self.grid,
                    [terminal],
                    targets,
                    net=spec.net_id,
                    occupancy=occupancy,
                    extra_obstacle_ids=fence_ids,
                    fault_ids=fault_cids,
                    max_expansions=max_expansions,
                    budget=self.budget,
                )
            except BudgetExceeded:
                occupancy.release_ids(spec.net_id)
                raise
            if path is None:
                occupancy.release_ids(spec.net_id)
                return None
            if spec.pin is None:
                # First leg of a pin-less net just claimed its pin.
                spec.pin = path.target
            occupancy.occupy_ids(
                path.cell_ids(self.grid.width, self.grid.height),
                spec.net_id,
            )
            network.extend(path.cells)
            paths.append(path)
        return paths

    def _terminal_order(
        self, spec: NetRepair
    ) -> List[Tuple[int, Point]]:
        """Return (valve id, terminal) pairs in routing order."""
        pairs = list(zip(spec.valve_ids, spec.terminals))
        if spec.pin is not None:
            pin = spec.pin
            return sorted(
                pairs, key=lambda vt: (-vt[1].manhattan(pin), vt[0])
            )
        return sorted(pairs)

    def _accept(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        paths: Optional[List[Path]],
    ) -> Optional[NetReport]:
        """Turn a routed network into a report — iff it meets the rung bar.

        Non-LM nets pass on connectivity alone; LM nets must also land
        inside the original δ window.  A rejected LM route is released
        so the next rung starts clean.
        """
        if paths is None:
            return None
        report = self._report(spec, paths)
        if spec.length_matching and report.matched is False:
            occupancy.release_ids(spec.net_id)
            return None
        return report

    def _probe_blockers(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        fault_cids: Set[int],
    ) -> List[int]:
        """Return the nets blocking an occupancy-blind probe route.

        The probe runs the farthest terminal towards the pin (or any
        candidate pin) on the bare grid — only static obstacles and
        faults block — and reads off which nets own the corridor the
        net *would* take if the chip were empty.
        """
        order = self._terminal_order(spec)
        if not order:
            return []
        if spec.pin is not None:
            targets = [spec.pin]
        else:
            targets = [
                p
                for p in spec.candidate_pins
                if self.grid.index(p) not in fault_cids
            ]
        if not targets:
            return []
        probe = astar_route(
            self.grid,
            [order[0][1]],
            targets,
            fault_ids=fault_cids,
            budget=self.budget,
        )
        if probe is None:
            return []
        owner = occupancy.owner_id
        victims: Set[int] = set()
        for cid in probe.cell_ids(self.grid.width, self.grid.height):
            net = owner(cid)
            if net not in (FREE, FAULT_NET, spec.net_id):
                victims.add(net)
        return sorted(victims)

    def _rip_neighbors(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        fault_cids: Set[int],
        victim_specs: Mapping[int, NetRepair],
    ) -> Optional[NetReport]:
        """The rip rung: evict blocking nets, route, heal the victims.

        Identifies the nets sitting on the net's natural corridor, rips
        up to ``rip_neighbor_limit`` of them, re-routes this net, then
        re-routes every victim in the freed-up chip.  Anything short of
        *all* routes landing (this net and every victim, each passing
        its own :meth:`_accept` bar) rolls the occupancy back exactly.
        Healed victims' reports land in :attr:`rip_victim_reports`.
        """
        victims = self._probe_blockers(occupancy, spec, fault_cids)
        if not victims or len(victims) > self.config.rip_neighbor_limit:
            return None
        if any(v not in victim_specs for v in victims):
            return None
        saved = {v: set(occupancy.cells_of_ids(v)) for v in victims}

        def rollback() -> None:
            occupancy.release_ids(spec.net_id)
            for vid, cells in saved.items():
                occupancy.release_ids(vid)
                occupancy.occupy_ids(cells, vid)

        for vid in victims:
            occupancy.release_ids(vid)
        obs.counter("repair.rips").inc(len(victims))
        healed: Dict[int, NetReport] = {}
        try:
            paths = self._route_network(occupancy, spec, fault_cids)
            report = self._accept(occupancy, spec, paths)
            if report is None:
                rollback()
                return None
            for vid in victims:
                vspec = victim_specs[vid]
                vpaths = self._route_network(occupancy, vspec, fault_cids)
                vreport = self._accept(occupancy, vspec, vpaths)
                if vreport is None:
                    rollback()
                    return None
                healed[vid] = vreport
        except BudgetExceeded:
            rollback()
            raise
        self.rip_victim_reports.update(healed)
        return report

    def _relax(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        fault_cids: Set[int],
        paths: List[Path],
    ) -> Optional[NetReport]:
        """The detour-relaxed rung for mismatched LM nets.

        First tries to *truly* match by serpentine-extending short,
        untapped sink legs (the detour kernel's bump extension); if the
        spread still exceeds δ, the acceptance window widens
        geometrically (δ·factor^k) instead.  Either way the returned
        report's ``matched``/``mismatch`` are computed against the
        original δ — relaxation changes what repair accepts, never what
        it reports.
        """
        cfg = self.config
        # Recommit the full-rung route (released by _accept's rejection).
        occupancy.occupy_ids(
            (
                cid
                for path in paths
                for cid in path.cell_ids(self.grid.width, self.grid.height)
            ),
            spec.net_id,
        )
        paths = list(paths)
        mismatch = self._mismatch(spec, paths)
        if mismatch is not None and mismatch > spec.delta:
            paths = self._extend_short_legs(occupancy, spec, paths)
            mismatch = self._mismatch(spec, paths)
        if mismatch is None:
            occupancy.release_ids(spec.net_id)
            return None
        if mismatch <= spec.delta:
            return self._report(spec, paths)
        for k in range(1, cfg.relax_rounds + 1):
            if mismatch <= spec.delta * (cfg.relax_factor**k):
                return self._report(spec, paths)
        occupancy.release_ids(spec.net_id)
        return None

    def _extend_short_legs(
        self,
        occupancy: Occupancy,
        spec: NetRepair,
        paths: List[Path],
    ) -> List[Path]:
        """Bump-extend short sink legs that no other leg taps into."""
        lengths = self._sink_lengths(spec, paths)
        if any(v is None for v in lengths.values()):
            return paths
        max_length = max(lengths.values())  # type: ignore[type-var]
        width = self.grid.width
        height = self.grid.height
        order = self._terminal_order(spec)
        for idx, (vid, _terminal) in enumerate(order):
            length = lengths[vid]
            assert length is not None
            deficit = max_length - length
            if deficit <= spec.delta:
                continue
            leg = paths[idx]
            interior = set(leg.cells[:-1])
            tapped = any(
                other.target in interior
                for j, other in enumerate(paths)
                if j != idx
            )
            if tapped:
                continue
            # Largest even extension that lands inside [maxL-δ, maxL].
            want = deficit if deficit % 2 == 0 else deficit - 1
            if want < max(deficit - spec.delta, 2):
                continue
            new_leg = extend_path_with_bumps(
                self.grid,
                leg,
                want,
                net=spec.net_id,
                occupancy=occupancy,
            )
            if new_leg is None:
                continue
            paths[idx] = new_leg
            occupancy.release_ids(spec.net_id)
            occupancy.occupy_ids(
                (
                    cid
                    for path in paths
                    for cid in path.cell_ids(width, height)
                ),
                spec.net_id,
            )
            lengths = self._sink_lengths(spec, paths)
            if any(v is None for v in lengths.values()):
                return paths
            max_length = max(lengths.values())  # type: ignore[type-var]
        return paths

    # -- reporting ---------------------------------------------------------

    def _report(self, spec: NetRepair, paths: List[Path]) -> NetReport:
        """Build the honest :class:`NetReport` of a repaired network."""
        cells: Set[Point] = set()
        segments: Set[Segment] = set()
        for path in paths:
            cells.update(path.cells)
            segments.update(segments_of_path(path.cells))
        lm = spec.length_matching
        sink_lengths: Dict[int, int] = {}
        matched: Optional[bool] = None
        mismatch: Optional[int] = None
        if lm:
            raw = self._sink_lengths(spec, paths)
            sink_lengths = {
                vid: length
                for vid, length in raw.items()
                if length is not None
            }
            if len(sink_lengths) == len(spec.valve_ids) >= 2:
                spread = max(sink_lengths.values()) - min(
                    sink_lengths.values()
                )
                mismatch = spread
                matched = spread <= spec.delta
        return NetReport(
            net_id=spec.net_id,
            origin_cluster=spec.origin_cluster,
            valve_ids=list(spec.valve_ids),
            length_matching=lm,
            routed=True,
            pin=spec.pin,
            cells=frozenset(cells),
            segments=frozenset(segments),
            channel_length=len(segments),
            matched=matched,
            mismatch=mismatch,
            sink_lengths=sink_lengths,
        )

    def _sink_lengths(
        self, spec: NetRepair, paths: List[Path]
    ) -> Dict[int, Optional[int]]:
        """Return each valve's drawn-channel distance to the pin.

        An independent BFS over the drawn segments (deliberately not
        shared with :mod:`repro.analysis.verify`, which re-checks
        repaired nets with its own implementation).
        """
        segments: Set[Segment] = set()
        for path in paths:
            segments.update(segments_of_path(path.cells))
        assert spec.pin is not None
        distances = _network_lengths(
            segments, spec.pin, via_length=self.grid.via_length
        )
        return {
            vid: distances.get(terminal)
            for vid, terminal in zip(spec.valve_ids, spec.terminals)
        }

    def _mismatch(
        self, spec: NetRepair, paths: List[Path]
    ) -> Optional[int]:
        """Return the sink-length spread, or None when disconnected."""
        lengths = self._sink_lengths(spec, paths)
        values = [v for v in lengths.values() if v is not None]
        if len(values) != len(lengths) or not values:
            return None
        return max(values) - min(values)


def _network_lengths(
    segments: Iterable[Segment], origin: Point, *, via_length: int = 1
) -> Dict[Point, int]:
    """Distances from ``origin`` along drawn channel segments.

    A segment whose endpoints sit on different layers is a via and
    contributes ``via_length`` channel units; planar segments count 1.
    The traversal is a plain BFS — routed networks are trees (every leg
    taps the network built so far), so first-visit distances are exact.
    """
    adjacency: Dict[Point, List[Point]] = {}
    for a, b in segments:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    distances: Dict[Point, int] = {origin: 0}
    frontier = [origin]
    while frontier:
        nxt: List[Point] = []
        for cell in frontier:
            cz = cell[2] if len(cell) == 3 else 0
            for neighbor in adjacency.get(cell, ()):
                if neighbor not in distances:
                    nz = neighbor[2] if len(neighbor) == 3 else 0
                    step = via_length if nz != cz else 1
                    distances[neighbor] = distances[cell] + step
                    nxt.append(neighbor)
        frontier = nxt
    return distances


# -- post-hoc repair of a result document ----------------------------------


def repair_result(
    design: Design,
    result_doc: Mapping[str, Any],
    fault_map: FaultMap,
    *,
    config: Optional[RepairConfig] = None,
    budget: Optional[Budget] = None,
    pending_docs: Optional[List[Dict[str, Any]]] = None,
    prior_repaired: Optional[Dict[int, str]] = None,
) -> RepairOutcome:
    """Heal a finished routing (``pacor route``'s JSON export) in place.

    Rebuilds the occupancy from the result document, assesses the
    damage, rips up exactly the affected nets (plus nets that lost
    valves to stuck-valve faults), mounts the faults under
    :data:`~repro.grid.occupancy.FAULT_NET`, and runs every damaged net
    through the escalation ladder.  ``pending_docs``/``prior_repaired``
    are the resume path — :func:`repair_resume` passes a
    :class:`RepairCheckpoint`'s saved work list so damage assessment is
    not redone against the already-ripped state.

    Returns a :class:`RepairOutcome`; when the budget trips mid-repair
    the outcome's ``checkpoint`` snapshots the remaining work and the
    partially-healed result is marked degraded.

    Raises:
        CheckpointFormatError: ``result_doc`` is not a PACOR result
            document or its routing is internally inconsistent.
        FaultFormatError: the fault map does not fit ``design``.
    """
    started = time.perf_counter()
    cfg = config if config is not None else RepairConfig()
    run_budget = budget if budget is not None else Budget()
    run_budget.start()
    engine = RepairEngine(design, config=cfg, budget=run_budget)
    grid = design.grid
    width = grid.width

    reports = _reports_from_doc(result_doc)
    occupancy = Occupancy(grid)
    for report in reports:
        if report.routed:
            try:
                occupancy.occupy_ids(
                    (grid.index(c) for c in report.cells),
                    report.net_id,
                )
            except ValueError as exc:
                raise CheckpointFormatError(
                    f"result routing is inconsistent: {exc}",
                    field="nets",
                ) from exc

    fm = _collapse_events(fault_map.normalized(design))
    fault_cids = set(fm.cell_ids(width, grid.height))
    stuck = set(fm.stuck_valves)
    valve_by_id = design.valve_by_id()

    # Fuse stuck via columns shut before any search runs — the layered
    # neighbour tables key on the via mask, so re-routes can never hop
    # layers at a dead site.
    for site in fm.via_stuck:
        grid.set_via_blocked(site)

    if pending_docs is None:
        affected = engine.assess(occupancy, fault_cids)
        if fm.via_stuck:
            via_hit = _via_damaged_nets(occupancy, grid, fm.via_stuck)
            affected = sorted(set(affected) | via_hit)
        specs, dead = _build_specs(
            design, reports, affected, stuck, fault_cids, cfg
        )
        repaired: Dict[int, str] = {}
    else:
        # Resume: the saved result already reflects ripped pending nets
        # and repaired ones; trust the recorded work list.
        affected = sorted(
            {int(d["net_id"]) for d in pending_docs}
            | set(prior_repaired or {})
        )
        specs = [NetRepair.from_json(d) for d in pending_docs]
        dead = []
        repaired = dict(prior_repaired or {})

    # Rip the damaged nets, then mount the faults: stuck valves' cells
    # become faulty too (the valve seat is unusable), and mounting after
    # the rip means no mount can collide with a routed net.
    for spec in specs:
        occupancy.release_ids(spec.net_id)
    for report, _reason in dead:
        occupancy.release_ids(report.net_id)
    mount = set(fault_cids)
    for vid in stuck:
        valve = valve_by_id.get(vid)
        if valve is not None:
            mount.add(design.grid.index(valve.position))
    if mount:
        occupancy.release_cell_ids(mount)  # faults may sit on ripped cells
        occupancy.occupy_ids(mount, FAULT_NET)
    fault_cids = mount

    # Healthy routed nets the rip rung may evict and re-route.
    victim_specs = _victim_specs(
        design, reports, {s.net_id for s in specs}, stuck
    )

    incidents = [
        Incident.from_json(d) for d in result_doc.get("incidents", [])
    ]
    events = [str(e) for e in result_doc.get("events", [])]
    new_reports: Dict[int, NetReport] = {}
    degraded_nets: List[int] = []
    checkpoint: Optional[RepairCheckpoint] = None

    for report, reason in dead:
        new_reports[report.net_id] = _degraded_report(report, reason)
        degraded_nets.append(report.net_id)
        incidents.append(
            Incident(
                stage="repair",
                kind="net-failure",
                message=reason,
                net_id=report.net_id,
                severity=Severity.DEGRADED,
            )
        )
        events.append(f"repair: net {report.net_id} lost ({reason})")

    for idx, spec in enumerate(specs):
        try:
            net_report, rung = engine.repair_net(
                occupancy, spec, fault_cids, victim_specs=victim_specs
            )
        except BudgetExceeded as exc:
            partial = _assemble(
                design,
                result_doc,
                reports,
                new_reports,
                set(s.net_id for s in specs[idx:]),
                incidents
                + [
                    Incident(
                        stage="repair",
                        kind="budget-exceeded",
                        message=str(exc),
                        severity=Severity.DEGRADED,
                    )
                ],
                events + [f"repair: interrupted by budget ({exc.kind})"],
                degraded=True,
                runtime_s=time.perf_counter() - started,
            )
            checkpoint = RepairCheckpoint(
                design=design_to_json(design),
                fault_map=fm.to_json(),
                config=cfg.to_json(),
                result=partial.to_json(),
                pending=[s.to_json() for s in specs[idx:]],
                repaired={str(n): r for n, r in repaired.items()},
            )
            partial.checkpoint = checkpoint.to_json()
            return RepairOutcome(
                result=partial,
                affected=affected,
                repaired=repaired,
                degraded_nets=degraded_nets,
                dropped_valves=sorted(stuck),
                checkpoint=checkpoint,
            )
        if net_report is None:
            degraded_nets.append(spec.net_id)
            reason = (
                f"{spec.failure_note}: repair ladder exhausted "
                f"(local/full/rip/relaxed all failed)"
            )
            original = next(
                r for r in reports if r.net_id == spec.net_id
            )
            new_reports[spec.net_id] = _degraded_report(original, reason)
            incidents.append(
                Incident(
                    stage="repair",
                    kind="net-failure",
                    message=reason,
                    net_id=spec.net_id,
                    severity=Severity.DEGRADED,
                )
            )
            events.append(f"repair: net {spec.net_id} degraded ({reason})")
        else:
            repaired[spec.net_id] = rung
            new_reports[spec.net_id] = net_report
            events.append(
                f"repair: net {spec.net_id} re-routed via {rung} rung"
            )
            for vid, vreport in sorted(engine.rip_victim_reports.items()):
                new_reports[vid] = vreport
                events.append(
                    f"repair: net {vid} re-routed after eviction by "
                    f"net {spec.net_id}'s rip rung"
                )

    result = _assemble(
        design,
        result_doc,
        reports,
        new_reports,
        set(),
        incidents,
        events,
        degraded=bool(result_doc.get("degraded")) or bool(degraded_nets),
        runtime_s=time.perf_counter() - started,
    )
    return RepairOutcome(
        result=result,
        affected=affected,
        repaired=repaired,
        degraded_nets=degraded_nets,
        dropped_valves=sorted(stuck),
        checkpoint=checkpoint,
    )


def repair_resume(
    checkpoint: RepairCheckpoint, *, budget: Optional[Budget] = None
) -> RepairOutcome:
    """Continue an interrupted repair run with a fresh budget."""
    design = design_from_json(checkpoint.design)
    fault_map = FaultMap.from_json(checkpoint.fault_map)
    return repair_result(
        design,
        checkpoint.result,
        fault_map,
        config=RepairConfig.from_json(checkpoint.config),
        budget=budget,
        pending_docs=list(checkpoint.pending),
        prior_repaired={
            int(k): v for k, v in checkpoint.repaired.items()
        },
    )


# -- document plumbing -----------------------------------------------------


def _doc_point(doc: Any) -> Point:
    """Parse a ``[x, y]`` or ``[x, y, z]`` cell document."""
    if len(doc) == 3:
        return cell_point(int(doc[0]), int(doc[1]), int(doc[2]))
    return Point(int(doc[0]), int(doc[1]))


def _reports_from_doc(result_doc: Mapping[str, Any]) -> List[NetReport]:
    """Parse a result document's net reports (validated)."""
    if not isinstance(result_doc, Mapping) or "nets" not in result_doc:
        raise CheckpointFormatError(
            "not a PACOR result document (no 'nets' field)", field="nets"
        )
    reports: List[NetReport] = []
    try:
        for doc in result_doc["nets"]:
            pin = doc.get("pin")
            cells = frozenset(
                _doc_point(c) for c in doc.get("cells", [])
            )
            segments = frozenset(
                (_doc_point(a), _doc_point(b))
                for a, b in doc.get("segments", [])
            )
            reports.append(
                NetReport(
                    net_id=int(doc["net_id"]),
                    origin_cluster=int(doc["origin_cluster"]),
                    valve_ids=[int(v) for v in doc["valve_ids"]],
                    length_matching=bool(doc["length_matching"]),
                    routed=bool(doc["routed"]),
                    pin=Point(int(pin[0]), int(pin[1])) if pin else None,
                    cells=cells,
                    segments=segments,
                    channel_length=int(doc.get("channel_length", 0)),
                    matched=doc.get("matched"),
                    mismatch=doc.get("mismatch"),
                    sink_lengths={
                        int(k): int(v)
                        for k, v in doc.get("sink_lengths", {}).items()
                    },
                    failure_reason=doc.get("failure_reason"),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointFormatError(
            f"malformed net document ({exc!r})", field="nets"
        ) from exc
    return reports


def _collapse_events(fm: FaultMap) -> FaultMap:
    """Fold timed events into plain faults (post-hoc repair has no stages)."""
    out = fm.copy()
    for stage in list({e.stage for e in out.events}):
        for event in out.pop_events(stage):
            if event.cell is not None:
                out.add_cell(event.cell)
            if event.valve is not None:
                out.add_valve(event.valve)
    return out


def _build_specs(
    design: Design,
    reports: List[NetReport],
    affected: List[int],
    stuck: Set[int],
    fault_cids: Set[int],
    cfg: RepairConfig,
) -> Tuple[List[NetRepair], List[Tuple[NetReport, str]]]:
    """Turn damaged nets into repair specs; fully-stuck nets are dead.

    A net joins the work list when its cells intersect the fault set
    *or* it drives a stuck valve.  Nets whose every valve is stuck
    cannot be repaired at all.
    """
    valve_by_id = design.valve_by_id()
    affected_set = set(affected)
    specs: List[NetRepair] = []
    dead: List[Tuple[NetReport, str]] = []
    for report in reports:
        if not report.routed:
            continue
        stuck_here = sorted(set(report.valve_ids) & stuck)
        if report.net_id not in affected_set and not stuck_here:
            continue
        survivors = [v for v in report.valve_ids if v not in stuck]
        if not survivors:
            dead.append(
                (
                    report,
                    f"all valves stuck ({stuck_here}) — net unreachable",
                )
            )
            continue
        note = "faulty cells hit the route"
        if stuck_here:
            note = f"stuck valve(s) {stuck_here} dropped"
            if report.net_id in affected_set:
                note += " and faulty cells hit the route"
        specs.append(
            NetRepair(
                net_id=report.net_id,
                origin_cluster=report.origin_cluster,
                valve_ids=survivors,
                terminals=[
                    valve_by_id[v].position for v in survivors
                ],
                pin=report.pin,
                length_matching=report.length_matching,
                delta=design.delta,
                old_cell_ids={
                    design.grid.index(c) for c in report.cells
                },
                failure_note=note,
            )
        )
    specs.sort(key=lambda s: s.net_id)
    return specs, dead


def _victim_specs(
    design: Design,
    reports: List[NetReport],
    damaged: Set[int],
    stuck: Set[int],
) -> Dict[int, NetRepair]:
    """Build rip-rung specs for every healthy routed net.

    The rip rung may only evict a net it knows how to put back; a net
    that is itself damaged (in ``damaged``) or drives a stuck valve is
    never a candidate victim.
    """
    valve_by_id = design.valve_by_id()
    specs: Dict[int, NetRepair] = {}
    for report in reports:
        if not report.routed or report.net_id in damaged:
            continue
        if set(report.valve_ids) & stuck:
            continue
        specs[report.net_id] = NetRepair(
            net_id=report.net_id,
            origin_cluster=report.origin_cluster,
            valve_ids=list(report.valve_ids),
            terminals=[
                valve_by_id[v].position for v in report.valve_ids
            ],
            pin=report.pin,
            length_matching=report.length_matching,
            delta=design.delta,
            old_cell_ids={design.grid.index(c) for c in report.cells},
            failure_note="evicted by the rip rung",
        )
    return specs


def _via_damaged_nets(
    occupancy: Occupancy, grid: RoutingGrid, sites: Iterable[Point]
) -> Set[int]:
    """Return nets that hop layers at a now-stuck via site.

    A net occupying the same planar site on two *adjacent* layers holds
    a via there; with the column fused shut that route is dead.
    """
    hit: Set[int] = set()
    plane = grid.plane
    for site in sites:
        base = site.y * grid.width + site.x
        for z in range(grid.layers - 1):
            a = occupancy.owner_id(base + z * plane)
            b = occupancy.owner_id(base + (z + 1) * plane)
            if a == b and a not in (FREE, FAULT_NET):
                hit.add(a)
    return hit


def _degraded_report(original: NetReport, reason: str) -> NetReport:
    """Return the unrouted report of a net repair gave up on."""
    return NetReport(
        net_id=original.net_id,
        origin_cluster=original.origin_cluster,
        valve_ids=list(original.valve_ids),
        length_matching=original.length_matching,
        routed=False,
        failure_reason=reason,
    )


def _assemble(
    design: Design,
    result_doc: Mapping[str, Any],
    reports: List[NetReport],
    new_reports: Dict[int, NetReport],
    still_pending: Set[int],
    incidents: List[Incident],
    events: List[str],
    *,
    degraded: bool,
    runtime_s: float,
) -> PacorResult:
    """Rebuild the full result: untouched nets verbatim, repairs swapped in.

    Nets in ``still_pending`` (budget-interrupted resume path) are
    exported ripped-and-unrouted so the checkpointed result document
    matches the occupancy state a resume rebuilds.
    """
    summary = result_doc.get("summary", {})
    nets: List[NetReport] = []
    for report in reports:
        if report.net_id in new_reports:
            nets.append(new_reports[report.net_id])
        elif report.net_id in still_pending:
            nets.append(
                _degraded_report(report, "repair pending (budget exhausted)")
            )
        else:
            nets.append(report)
    return PacorResult(
        design_name=str(summary.get("design", design.name)),
        method=str(summary.get("method", "PACOR")),
        delta=int(result_doc.get("delta", design.delta)),
        n_valves=len(design.valves),
        n_lm_clusters=int(summary.get("n_clusters", 0)),
        nets=nets,
        runtime_s=runtime_s,
        events=events,
        degraded=degraded,
        incidents=incidents,
    )
