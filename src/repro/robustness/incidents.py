"""Structured incident records for degraded-but-successful runs.

The seed orchestrator logged free-form strings; anything abnormal — a
stage failure, an exhausted budget, a net given up on — now additionally
produces an :class:`Incident` that survives into the
:class:`~repro.core.result.PacorResult` (and its JSON export), so callers
can react to *what* degraded without parsing log text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class Severity(str, enum.Enum):
    """How bad an incident is for the run's outcome."""

    INFO = "info"  # noteworthy but the result is unaffected
    DEGRADED = "degraded"  # partial result: something was given up
    FATAL = "fatal"  # a whole stage was lost


@dataclass(frozen=True)
class Incident:
    """One structured abnormal event of a flow run.

    Attributes:
        stage: flow stage that recorded the incident.
        kind: stable machine-readable kind (``"budget-exceeded"``,
            ``"stage-failure"``, ``"solver-fallback"``, ``"router-stuck"``,
            ``"occupancy-corruption"``, ``"net-failure"``,
            ``"physical-fault"``).
        message: human-readable diagnosis.
        net_id: affected net, when the incident is net-scoped.
        severity: impact on the result.
        span_id: the trace span that was open when the incident was
            recorded (None with tracing disabled), tying diagnostics to
            the exact phase of the exported trace.
    """

    stage: str
    kind: str
    message: str
    net_id: Optional[int] = None
    severity: Severity = Severity.DEGRADED
    span_id: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        """Return a JSON-serialisable document of the incident."""
        return {
            "stage": self.stage,
            "kind": self.kind,
            "message": self.message,
            "net_id": self.net_id,
            "severity": self.severity.value,
            "span_id": self.span_id,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "Incident":
        """Rebuild an incident from :meth:`to_json` output."""
        return cls(
            stage=str(doc["stage"]),
            kind=str(doc["kind"]),
            message=str(doc["message"]),
            net_id=doc.get("net_id"),  # type: ignore[arg-type]
            severity=Severity(doc.get("severity", Severity.DEGRADED.value)),
            span_id=doc.get("span_id"),  # type: ignore[arg-type]
        )
