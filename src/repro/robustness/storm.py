"""Fault-storm chaos runner: the flow under physical faults, en masse.

``python -m repro.robustness.storm --designs S1 S2 --seeds 0 1 2 --out
artifacts/fault-storm.json`` runs every (design, seed) pair of the
matrix with the ``valve_stuck`` and ``cell_blockage`` injection points
armed, verifies each surviving result, and writes one JSON incident log
so CI can archive what the storm did.  Exit 0 when every run produced a
structured (possibly degraded) result that verifies; exit 1 with a
one-line diagnosis per failed run otherwise.

The storm is deterministic: each run's injector is seeded from the
matrix (``seed``), so a red CI storm reproduces locally with the same
``--designs``/``--seeds`` arguments.

Log schema::

    {"designs": [str], "seeds": [int], "runs": [
        {"design": str, "seed": int, "degraded": bool,
         "completion": float, "repaired_nets": int,
         "incidents": [incident-doc], "unrouted": [int],
         "error": str|null}
    ]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis import verify_result
from repro.core.pipeline import run_pacor
from repro.designs import design_by_name
from repro.robustness import faults
from repro.robustness.errors import PacorError
from repro.robustness.faults import FaultSpec

STORM_POINTS = ("valve_stuck", "cell_blockage")
"""The physical-fault injection points the storm arms."""


def run_storm(
    designs: Sequence[str],
    seeds: Sequence[int],
    *,
    probability: float = 0.5,
    max_fires: int = 2,
) -> Dict[str, Any]:
    """Run the (design, seed) matrix and return the incident log."""
    runs: List[Dict[str, Any]] = []
    for name in designs:
        for seed in seeds:
            runs.append(
                _one_run(
                    name, seed, probability=probability, max_fires=max_fires
                )
            )
    return {
        "designs": list(designs),
        "seeds": [int(s) for s in seeds],
        "runs": runs,
    }


def _one_run(
    name: str, seed: int, *, probability: float, max_fires: int
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "design": name,
        "seed": int(seed),
        "degraded": None,
        "completion": None,
        "repaired_nets": 0,
        "incidents": [],
        "unrouted": [],
        "error": None,
    }
    specs = [
        FaultSpec(point, probability=probability, max_fires=max_fires)
        for point in STORM_POINTS
    ]
    try:
        design = design_by_name(name)
        with faults.inject(*specs, seed=seed):
            result = run_pacor(design)
        verify_result(design, result)
    except PacorError as exc:
        doc["error"] = f"{type(exc).__name__}: {exc}"
        return doc
    doc["degraded"] = result.degraded
    doc["completion"] = result.completion_rate
    doc["incidents"] = [i.to_json() for i in result.incidents]
    doc["unrouted"] = sorted(n.net_id for n in result.nets if not n.routed)
    doc["repaired_nets"] = sum(
        1
        for event in result.events
        if event.startswith("repair: net ") and "re-routed" in event
    )
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.robustness.storm",
        description="run the flow under a storm of physical faults",
    )
    parser.add_argument(
        "--designs", nargs="+", default=["S1", "S2"], metavar="NAME"
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0, 1, 2], metavar="SEED"
    )
    parser.add_argument(
        "--probability",
        type=float,
        default=0.5,
        help="per-poll fire probability of each armed point",
    )
    parser.add_argument(
        "--max-fires",
        type=int,
        default=2,
        help="cap on fires per point per run",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the JSON incident log here"
    )
    args = parser.parse_args(argv)

    log = run_storm(
        args.designs,
        args.seeds,
        probability=args.probability,
        max_fires=args.max_fires,
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(log, indent=1), encoding="utf-8")

    failed = [r for r in log["runs"] if r["error"] is not None]
    for run in log["runs"]:
        status = (
            f"ERROR {run['error']}"
            if run["error"]
            else (
                f"completion={run['completion'] * 100:.1f}% "
                f"incidents={len(run['incidents'])} "
                f"repaired={run['repaired_nets']}"
                + (" DEGRADED" if run["degraded"] else "")
            )
        )
        print(f"storm {run['design']} seed={run['seed']}: {status}")
    print(
        f"fault-storm: {len(log['runs'])} runs, {len(failed)} failed"
        + (f", log -> {args.out}" if args.out else "")
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
