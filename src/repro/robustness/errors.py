"""Structured error taxonomy for the PACOR flow.

Every failure the flow can diagnose is expressed as a subclass of
:class:`PacorError` carrying machine-readable context (stage, net id,
budget kind, offending field ...) instead of a bare ``KeyError`` or a
silently exhausted guard counter.  The orchestrator's stage supervisor
keys its degradation decisions off this hierarchy:

* :class:`DesignFormatError` — the input document is malformed; fatal,
  but reported with the offending field and file so the CLI can print a
  one-line diagnosis instead of a traceback.
* :class:`StageFailure` — one flow stage failed for one net or cluster;
  the supervisor demotes the net and continues.
* :class:`BudgetExceeded` — a compute budget (wall clock, A* expansions,
  rip-up rounds) ran out; the flow stops spending and returns a partial,
  ``degraded`` result.
* :class:`RouterStuck` — a rip-up loop stopped making progress (the
  condition the seed code hid behind a silent ``guard`` counter).
* :class:`OccupancyCorruption` — the per-net occupancy bookkeeping
  disagrees with itself; detected between stages and repaired.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class PacorError(Exception):
    """Base class of every structured error raised by the reproduction."""


class DesignFormatError(PacorError, ValueError):
    """A design document is malformed.

    Also a :class:`ValueError` so callers that predate the taxonomy
    (``except ValueError``) keep working.

    Attributes:
        field: dotted path of the offending field (e.g. ``valves[3].x``),
            or None when the document as a whole is unusable.
        path: source file the document was read from, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        self.field = field
        self.path = path
        parts = []
        if path is not None:
            parts.append(f"{path}: ")
        parts.append(message)
        if field is not None:
            parts.append(f" (field {field!r})")
        super().__init__("".join(parts))


class CheckpointFormatError(PacorError, ValueError):
    """A checkpoint document is malformed or does not fit the input.

    Raised when loading a snapshot whose version is unknown, whose
    required fields are missing, or whose recorded design does not match
    the design a resume was asked to continue.  Also a
    :class:`ValueError` for symmetry with :class:`DesignFormatError`.

    Attributes:
        field: the offending field, when one can be named.
        path: source file the checkpoint was read from, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        self.field = field
        self.path = path
        parts = []
        if path is not None:
            parts.append(f"{path}: ")
        parts.append(message)
        if field is not None:
            parts.append(f" (field {field!r})")
        super().__init__("".join(parts))


class FaultFormatError(PacorError, ValueError):
    """A fault-map document is malformed or does not fit the design.

    Raised when loading a :class:`~repro.robustness.faultmap.FaultMap`
    whose version is unknown, whose fields are malformed, or whose
    cells/valves do not exist on the design a repair was asked to run
    against.  Also a :class:`ValueError` for symmetry with
    :class:`CheckpointFormatError`.

    Attributes:
        field: the offending field, when one can be named.
        path: source file the fault map was read from, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        self.field = field
        self.path = path
        parts = []
        if path is not None:
            parts.append(f"{path}: ")
        parts.append(message)
        if field is not None:
            parts.append(f" (field {field!r})")
        super().__init__("".join(parts))


class ConfigError(PacorError, ValueError):
    """A run tunable (config field, budget limit, fault spec) is invalid.

    Also a :class:`ValueError` so callers that predate the taxonomy
    (``except ValueError``) keep working.

    Attributes:
        field: the offending tunable, when one can be named.
    """

    def __init__(self, message: str, *, field: Optional[str] = None) -> None:
        self.field = field
        suffix = f" (field {field!r})" if field is not None else ""
        super().__init__(f"{message}{suffix}")


class KernelPreconditionError(PacorError, ValueError):
    """A routing/DME/detour/escape kernel was called with invalid arguments.

    Raised by kernel entry-point validation (guard clauses), as opposed
    to :class:`StageFailure` which reports a stage failing on legal
    input.  Also a :class:`ValueError` for backward compatibility.

    Attributes:
        kernel: dotted name of the kernel that rejected its arguments,
            when known.
    """

    def __init__(self, message: str, *, kernel: Optional[str] = None) -> None:
        self.kernel = kernel
        prefix = f"[{kernel}] " if kernel is not None else ""
        super().__init__(f"{prefix}{message}")


class FlowDecompositionError(PacorError, RuntimeError):
    """Min-cost-flow decomposition violated an internal invariant.

    The escape stage decomposes an integral flow into vertex-disjoint
    paths; by Theorem 1 this always terminates on a feasible flow, so
    this error marks solver-state corruption, not bad input.  Also a
    :class:`RuntimeError` for backward compatibility.
    """


class GenerationError(PacorError, RuntimeError):
    """Synthetic design generation could not satisfy its constraints.

    Raised by :mod:`repro.designs.generator` when obstacle/cluster/pin
    placement is infeasible for the requested parameters.  Also a
    :class:`RuntimeError` for backward compatibility.
    """


class TraceFormatError(PacorError, ValueError):
    """A trace/metrics document is not in the expected format.

    Raised when reading back JSONL span files or metrics snapshots.
    Also a :class:`ValueError` for backward compatibility.

    Attributes:
        path: source file the document was read from, when known.
    """

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        self.path = path
        prefix = f"{path}: " if path is not None else ""
        super().__init__(f"{prefix}{message}")


class StageFailure(PacorError):
    """One flow stage failed — for the whole stage or a single net.

    Attributes:
        stage: name of the failing stage (``"lm-routing"``, ``"escape"``,
            ...).
        net_id: the affected net, or None for a stage-wide failure.
    """

    def __init__(
        self, message: str, *, stage: str, net_id: Optional[int] = None
    ) -> None:
        self.stage = stage
        self.net_id = net_id
        where = stage if net_id is None else f"{stage}, net {net_id}"
        super().__init__(f"[{where}] {message}")


class BudgetExceeded(PacorError):
    """A compute budget ran out.

    Attributes:
        kind: which budget — ``"wall-clock"``, ``"astar-expansions"`` or
            ``"rip-rounds"``.
        limit: the configured limit.
        used: the amount consumed when the budget tripped.
        stage: the stage charging the budget when it tripped, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        limit: float,
        used: float,
        stage: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.limit = limit
        self.used = used
        self.stage = stage
        where = f" during {stage}" if stage else ""
        super().__init__(
            f"{message}{where}: {kind} budget exhausted ({used:g} > {limit:g})"
        )


class RouterStuck(PacorError):
    """A rip-up/reroute loop stopped making progress.

    Attributes:
        stage: the looping stage.
        pending: net ids still unrouted when the loop gave up.
    """

    def __init__(
        self, message: str, *, stage: str, pending: Sequence[int] = ()
    ) -> None:
        self.stage = stage
        self.pending = tuple(pending)
        suffix = f" (pending nets: {sorted(self.pending)})" if pending else ""
        super().__init__(f"[{stage}] {message}{suffix}")


class OccupancyCorruption(PacorError):
    """The occupancy owner array and per-net buckets disagree.

    Attributes:
        cells: the inconsistent cells (as ``(x, y)`` tuples).
    """

    def __init__(
        self, message: str, *, cells: Sequence[Tuple[int, int]] = ()
    ) -> None:
        self.cells = tuple(cells)
        suffix = f" at {sorted(self.cells)}" if cells else ""
        super().__init__(f"{message}{suffix}")


class ServiceError(PacorError, RuntimeError):
    """A ``pacor serve`` operation failed (queue, worker pool, API).

    Raised for illegal job-state transitions (resuming a running job,
    cancelling a finished one), daemon lifecycle misuse and worker-pool
    failures.  The HTTP layer maps it to a 4xx/5xx JSON error body; the
    CLI prints the one-line message and exits 2.
    """


class JobFormatError(PacorError, ValueError):
    """A persisted job record or submit request is malformed.

    Attributes:
        field: the offending field, when known.
        path: the originating file, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        field: Optional[str] = None,
        path: Optional[str] = None,
    ) -> None:
        self.field = field
        self.path = path
        parts = []
        if path:
            parts.append(f"{path}: ")
        parts.append(message)
        if field:
            parts.append(f" (field: {field})")
        super().__init__("".join(parts))
