"""Per-run compute budgets (wall clock, A* expansions, rip-up rounds).

One :class:`Budget` object is created per :class:`~repro.core.pacor.PacorRouter`
run and threaded through every stage down to the A* inner loop.  Charging
a spent budget raises :class:`~repro.robustness.errors.BudgetExceeded`,
which the stage supervisors catch to degrade gracefully instead of
letting a pathological design hang the process.

The clock is injectable so tests can exhaust the wall-clock budget
deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.observability.metrics import Counter
from repro.robustness.errors import BudgetExceeded, ConfigError

_WALL_CHECK_EVERY = 64
"""Expansions between wall-clock checks in the A* hot loop."""


class Budget:
    """Tracks and enforces the compute budgets of one flow run.

    Every limit is optional; a limit of None never trips.  All charging
    methods raise :class:`BudgetExceeded` the moment a limit is crossed.

    Expansion spend lives in one :class:`~repro.observability.metrics.Counter`
    (``expansion_counter``) rather than a private integer, so the limit
    enforcement here and the ``astar.expansions`` effort metric read the
    same tally — the router registers this counter with its
    :class:`~repro.observability.metrics.Metrics` registry.

    Attributes:
        wall_clock_s: wall-clock limit in seconds, from :meth:`start`.
        astar_expansions: total A* cells settled across the whole run.
        rip_rounds: total escape rip-up/force-completion iterations.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        wall_clock_s: Optional[float] = None,
        astar_expansions: Optional[int] = None,
        rip_rounds: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        expansion_counter: Optional[Counter] = None,
    ) -> None:
        if wall_clock_s is not None and wall_clock_s <= 0:
            raise ConfigError("wall_clock_s must be positive", field="wall_clock_s")
        if astar_expansions is not None and astar_expansions < 0:
            raise ConfigError("astar_expansions must be non-negative", field="astar_expansions")
        if rip_rounds is not None and rip_rounds < 0:
            raise ConfigError("rip_rounds must be non-negative", field="rip_rounds")
        self.wall_clock_s = wall_clock_s
        self.astar_expansions = astar_expansions
        self.rip_rounds = rip_rounds
        # Resolved at construction, not at def time, so the determinism
        # sanitizer's clock shim (installed at process start) is what a
        # sanitized run captures — and what pickles across spawn.
        self.clock = clock if clock is not None else time.monotonic
        self.expansion_counter = (
            expansion_counter
            if expansion_counter is not None
            else Counter("astar.expansions")
        )
        self.rip_rounds_used = 0
        self._started: Optional[float] = None
        self._preempt_reason: Optional[str] = None

    @property
    def expansions_used(self) -> int:
        """Return total A* cells settled (reads the shared counter)."""
        return self.expansion_counter.value

    @expansions_used.setter
    def expansions_used(self, value: int) -> None:
        self.expansion_counter.value = int(value)

    @property
    def unlimited(self) -> bool:
        """Return True when no limit is configured at all."""
        return (
            self.wall_clock_s is None
            and self.astar_expansions is None
            and self.rip_rounds is None
        )

    def start(self) -> None:
        """Anchor the wall clock; charging before start never trips it."""
        self._started = self.clock()

    # -- preemption ---------------------------------------------------------

    def preempt(self, reason: str = "preempted") -> None:
        """Request cooperative preemption of the run charging this budget.

        Safe to call from a signal handler or another thread: it only
        sets a flag.  The next charge or check raises
        :class:`~repro.robustness.errors.BudgetExceeded` with
        ``kind="preempted"``, which the stage supervisors catch exactly
        like an exhausted budget — the run stops spending, captures its
        interrupt checkpoint and returns a resumable partial result.
        This is how ``pacor serve`` parks a SIGTERM'd worker's job.
        """
        self._preempt_reason = reason

    @property
    def preempted(self) -> bool:
        """Return True once :meth:`preempt` has been requested."""
        return self._preempt_reason is not None

    def _check_preempt(self, stage: Optional[str]) -> None:
        if self._preempt_reason is not None:
            raise BudgetExceeded(
                self._preempt_reason,
                kind="preempted",
                limit=0.0,
                used=0.0,
                stage=stage,
            )

    # -- resumable counters -------------------------------------------------

    def export_counters(self) -> Dict[str, float]:
        """Return the consumed-so-far counters for checkpointing.

        ``elapsed_s`` records wall-clock spend for the record; restoring
        it is meaningless across processes, so :meth:`restore_counters`
        ignores it.
        """
        return {
            "expansions_used": self.expansions_used,
            "rip_rounds_used": self.rip_rounds_used,
            "elapsed_s": self.elapsed(),
        }

    def restore_counters(self, counters: Dict[str, float]) -> None:
        """Resume with previously consumed counters (checkpoint restore).

        A *fresh* budget for a resumed run simply skips this call; a
        caller continuing one cumulative accounting across interruptions
        restores the checkpointed counters first, so the limits bound the
        total spend of all attempts together.
        """
        self.expansions_used = int(counters.get("expansions_used", 0))
        self.rip_rounds_used = int(counters.get("rip_rounds_used", 0))

    def elapsed(self) -> float:
        """Return seconds since :meth:`start` (0.0 before start)."""
        if self._started is None:
            return 0.0
        return self.clock() - self._started

    def remaining_wall_clock(self) -> Optional[float]:
        """Return remaining seconds, or None when unlimited."""
        if self.wall_clock_s is None:
            return None
        return max(0.0, self.wall_clock_s - self.elapsed())

    def check(self, stage: Optional[str] = None) -> None:
        """Raise :class:`BudgetExceeded` when any limit is already spent.

        Unlike the charging methods this consumes nothing; stages call it
        before starting more work so an already-exhausted budget fails
        fast instead of being rediscovered one A* expansion later.
        """
        self._check_preempt(stage)
        self.check_wall_clock(stage)
        if (
            self.astar_expansions is not None
            and self.expansions_used > self.astar_expansions
        ):
            raise BudgetExceeded(
                "search effort exhausted",
                kind="astar-expansions",
                limit=self.astar_expansions,
                used=self.expansions_used,
                stage=stage,
            )
        if self.rip_rounds is not None and self.rip_rounds_used > self.rip_rounds:
            raise BudgetExceeded(
                "rip-up effort exhausted",
                kind="rip-rounds",
                limit=self.rip_rounds,
                used=self.rip_rounds_used,
                stage=stage,
            )

    def check_wall_clock(self, stage: Optional[str] = None) -> None:
        """Raise :class:`BudgetExceeded` when the wall clock has run out."""
        if self.wall_clock_s is None or self._started is None:
            return
        elapsed = self.elapsed()
        if elapsed > self.wall_clock_s:
            raise BudgetExceeded(
                "run out of time",
                kind="wall-clock",
                limit=self.wall_clock_s,
                used=elapsed,
                stage=stage,
            )

    def charge_expansions(self, n: int = 1, stage: str = "astar") -> None:
        """Charge ``n`` A* expansions; periodically re-check the clock."""
        self.expansion_counter.inc(n)
        if self._preempt_reason is not None:
            self._check_preempt(stage)
        used = self.expansion_counter.value
        if self.astar_expansions is not None and used > self.astar_expansions:
            raise BudgetExceeded(
                "search effort exhausted",
                kind="astar-expansions",
                limit=self.astar_expansions,
                used=used,
                stage=stage,
            )
        if self.wall_clock_s is not None and used % _WALL_CHECK_EVERY < n:
            self.check_wall_clock(stage)

    def charge_rip_round(self, stage: str = "escape") -> None:
        """Charge one rip-up round; also re-checks the wall clock."""
        self.rip_rounds_used += 1
        if self._preempt_reason is not None:
            self._check_preempt(stage)
        if self.rip_rounds is not None and self.rip_rounds_used > self.rip_rounds:
            raise BudgetExceeded(
                "rip-up effort exhausted",
                kind="rip-rounds",
                limit=self.rip_rounds,
                used=self.rip_rounds_used,
                stage=stage,
            )
        self.check_wall_clock(stage)
