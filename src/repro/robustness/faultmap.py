"""First-class physical fault model: faulty cells and stuck valves.

Fabricated biochips develop physical defects — channel cells that no
longer seal (blocked for routing) and control valves stuck in one state
(unusable as terminals).  A :class:`FaultMap` declares such defects so
the flow can route *around* them and the repair engine
(:mod:`repro.robustness.repair`) can heal an already-routed design when
new defects arrive.

Faults enter the flow three ways:

* **Up front** — ``pacor route --faults faults.json``: the map's cells
  are mounted into the occupancy under
  :data:`~repro.grid.occupancy.FAULT_NET` before routing starts, so
  every search avoids them by construction.
* **Timed mid-flow** — :class:`FaultEvent`\\ s fire at a named stage
  boundary; the router applies them between stages and repairs the
  damage (see ``docs/robustness.md`` §5).
* **Post-hoc** — ``pacor repair result.json --faults faults.json``
  assesses the damage against a finished routing and re-routes only the
  affected nets.

This module is deliberately import-light (geometry + errors only) so it
can be re-exported from :mod:`repro.robustness` without touching the
routing import graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.geometry.point import Point, cell_point
from repro.robustness.errors import (
    ConfigError,
    FaultFormatError,
    KernelPreconditionError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.designs.design import Design

FAULTMAP_VERSION = 1
"""Current fault-map document version; bumped on incompatible change."""

EVENT_STAGES = (
    "clustering",
    "lm-routing",
    "mst-routing",
    "escape",
    "detour",
    "final",
)
"""Stage boundaries at which a timed :class:`FaultEvent` may fire.

``"final"`` fires after the last stage — damage there is healed by the
post-flow repair pass instead of a re-entered stage.
"""


@dataclass
class FaultEvent:
    """One timed physical fault: a cell blocks or a valve sticks.

    Attributes:
        stage: the stage boundary the fault fires at (the fault is
            applied *before* that stage runs; ``"final"`` fires after
            the whole flow).
        cell: the newly faulty channel cell (``cell_blockage``), or
            None for a valve fault.
        valve: the newly stuck valve id (``valve_stuck``), or None for
            a cell fault.  Exactly one of ``cell``/``valve`` is set.
    """

    stage: str
    cell: Optional[Point] = None
    valve: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stage not in EVENT_STAGES:
            raise ConfigError(
                f"unknown fault-event stage {self.stage!r}; "
                f"choose from {list(EVENT_STAGES)}",
                field="stage",
            )
        if (self.cell is None) == (self.valve is None):
            raise ConfigError(
                "a fault event names exactly one of cell/valve",
                field="cell",
            )

    def to_json(self) -> Dict[str, Any]:
        """Return the JSON document of this event."""
        doc: Dict[str, Any] = {"stage": self.stage}
        if self.cell is not None:
            doc["cell"] = list(self.cell)
        if self.valve is not None:
            doc["valve"] = self.valve
        return doc

    @classmethod
    def from_json(
        cls, doc: Any, *, source: Optional[str] = None
    ) -> "FaultEvent":
        """Rebuild an event from its document (validated)."""
        if not isinstance(doc, dict):
            raise FaultFormatError(
                f"fault event must be a JSON object, got {type(doc).__name__}",
                field="events",
                path=source,
            )
        stage = doc.get("stage")
        if stage not in EVENT_STAGES:
            raise FaultFormatError(
                f"unknown fault-event stage {stage!r} "
                f"(expected one of {list(EVENT_STAGES)})",
                field="events",
                path=source,
            )
        cell_doc = doc.get("cell")
        valve_doc = doc.get("valve")
        if (cell_doc is None) == (valve_doc is None):
            raise FaultFormatError(
                "a fault event names exactly one of cell/valve",
                field="events",
                path=source,
            )
        cell = _parse_cell(cell_doc, source) if cell_doc is not None else None
        valve = int(valve_doc) if valve_doc is not None else None
        return cls(stage=str(stage), cell=cell, valve=valve)


def _parse_cell(doc: Any, source: Optional[str]) -> Point:
    try:
        if len(doc) == 3:
            x, y, z = doc
            return cell_point(int(x), int(y), int(z))
        x, y = doc
        return Point(int(x), int(y))
    except (TypeError, ValueError) as exc:
        raise FaultFormatError(
            f"malformed cell entry {doc!r} ({exc})",
            field="faulty_cells",
            path=source,
        ) from None


@dataclass
class FaultMap:
    """Declared physical faults of one chip.

    Attributes:
        faulty_cells: channel cells that may no longer carry a channel.
            On multi-layer chips an upper-layer cell is a 3-tuple
            ``(x, y, z)``; layer-0 cells stay plain ``(x, y)`` points.
        stuck_valves: valve ids stuck in one state (unusable terminals).
        via_stuck: planar ``(x, y)`` sites whose via column is fused
            shut — no path may change layers there.  Meaningless (and
            rejected by :meth:`validate`) on single-layer designs.
        events: timed mid-flow faults, applied at stage boundaries in
            list order.
    """

    faulty_cells: List[Point] = field(default_factory=list)
    stuck_valves: List[int] = field(default_factory=list)
    events: List[FaultEvent] = field(default_factory=list)
    via_stuck: List[Point] = field(default_factory=list)

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        """Return True when no fault is declared at all."""
        return not (
            self.faulty_cells
            or self.stuck_valves
            or self.events
            or self.via_stuck
        )

    def cell_ids(self, width: int, height: int = 0) -> List[int]:
        """Return the faulty cells as sorted flat ``grid.index`` ids.

        ``height`` is required whenever a faulty cell sits on an upper
        layer (3-tuple cells); planar callers may keep omitting it.
        """
        ids: List[int] = []
        for c in self.faulty_cells:
            if len(c) == 3:
                if height <= 0:
                    raise KernelPreconditionError(
                        "cell_ids needs the grid height to flatten the "
                        f"layered fault cell {c}",
                        kernel="repro.robustness.faultmap.FaultMap.cell_ids",
                    )
                ids.append(c[2] * width * height + c[1] * width + c[0])
            else:
                ids.append(c[1] * width + c[0])
        return sorted(ids)

    def copy(self) -> "FaultMap":
        """Return an independent copy (events included)."""
        return FaultMap(
            faulty_cells=list(self.faulty_cells),
            stuck_valves=list(self.stuck_valves),
            events=[
                FaultEvent(stage=e.stage, cell=e.cell, valve=e.valve)
                for e in self.events
            ],
            via_stuck=list(self.via_stuck),
        )

    # -- mutation ----------------------------------------------------------

    def add_cell(self, cell: Point) -> None:
        """Declare ``cell`` faulty (idempotent)."""
        if cell not in self.faulty_cells:
            self.faulty_cells.append(cell)

    def add_via_stuck(self, site: Point) -> None:
        """Declare the via column at planar ``site`` fused shut."""
        if site not in self.via_stuck:
            self.via_stuck.append(site)

    def add_valve(self, valve_id: int) -> None:
        """Declare valve ``valve_id`` stuck (idempotent)."""
        if valve_id not in self.stuck_valves:
            self.stuck_valves.append(valve_id)

    def pop_events(self, stage: str) -> List[FaultEvent]:
        """Remove and return the events firing at ``stage``, in order."""
        due = [e for e in self.events if e.stage == stage]
        if due:
            self.events = [e for e in self.events if e.stage != stage]
        return due

    # -- design fit --------------------------------------------------------

    def validate(self, design: "Design") -> None:
        """Check every declared fault exists on ``design``.

        Raises:
            FaultFormatError: a faulty cell is off-grid or a stuck
                valve id is unknown to the design.
        """
        grid = design.grid
        known = set(design.valve_by_id())
        for cell in self.faulty_cells:
            if not grid.in_bounds(cell):
                raise FaultFormatError(
                    f"faulty cell {cell} is off the {grid.width}x"
                    f"{grid.height} grid of design {design.name!r}",
                    field="faulty_cells",
                )
        for site in self.via_stuck:
            if grid.layers == 1:
                raise FaultFormatError(
                    f"via_stuck site {site} declared for single-layer "
                    f"design {design.name!r}",
                    field="via_stuck",
                )
            if len(site) == 3 or not (
                0 <= site.x < grid.width and 0 <= site.y < grid.height
            ):
                raise FaultFormatError(
                    f"via_stuck site {site} must be a planar (x, y) cell "
                    f"on the {grid.width}x{grid.height} grid",
                    field="via_stuck",
                )
        for vid in self.stuck_valves:
            if vid not in known:
                raise FaultFormatError(
                    f"stuck valve {vid} is unknown to design "
                    f"{design.name!r}",
                    field="stuck_valves",
                )
        for event in self.events:
            if event.cell is not None:
                cell = event.cell
                if not (
                    0 <= cell.x < grid.width and 0 <= cell.y < grid.height
                ):
                    raise FaultFormatError(
                        f"fault-event cell {cell} is off-grid",
                        field="events",
                    )
            if event.valve is not None and event.valve not in known:
                raise FaultFormatError(
                    f"fault-event valve {event.valve} is unknown to "
                    f"design {design.name!r}",
                    field="events",
                )

    def normalized(self, design: "Design") -> "FaultMap":
        """Return a validated copy with valve-position faults canonical.

        A faulty *cell* sitting exactly on a valve position means that
        valve is unusable — the defect is re-expressed as a stuck valve
        so clustering and damage assessment see it uniformly.  Cells and
        valve ids are deduplicated; event order is preserved.
        """
        self.validate(design)
        by_position = {v.position: v.id for v in design.valves}
        out = FaultMap(via_stuck=list(self.via_stuck))
        for vid in self.stuck_valves:
            out.add_valve(vid)
        for cell in self.faulty_cells:
            vid = by_position.get(cell)
            if vid is not None:
                out.add_valve(vid)
            else:
                out.add_cell(cell)
        for event in self.events:
            if event.cell is not None and event.cell in by_position:
                out.events.append(
                    FaultEvent(
                        stage=event.stage, valve=by_position[event.cell]
                    )
                )
            else:
                out.events.append(
                    FaultEvent(
                        stage=event.stage, cell=event.cell, valve=event.valve
                    )
                )
        return out

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Return the versioned JSON document of the fault map.

        Layer-0 cells serialise as ``[x, y]`` and upper-layer cells as
        ``[x, y, z]``; the ``via_stuck`` key appears only when any via
        fault is declared, so single-layer documents are byte-identical
        to the pre-layer-axis schema.
        """
        doc: Dict[str, Any] = {
            "version": FAULTMAP_VERSION,
            "faulty_cells": sorted(list(c) for c in self.faulty_cells),
            "stuck_valves": sorted(self.stuck_valves),
            "events": [e.to_json() for e in self.events],
        }
        if self.via_stuck:
            doc["via_stuck"] = sorted([c.x, c.y] for c in self.via_stuck)
        return doc

    @classmethod
    def from_json(
        cls, doc: Any, *, source: Optional[str] = None
    ) -> "FaultMap":
        """Rebuild a fault map from its document (validated).

        Raises:
            FaultFormatError: the document is not a fault map, its
                version is unknown, or a field is malformed — the error
                names the field (and ``source``, when given).
        """
        if not isinstance(doc, dict):
            raise FaultFormatError(
                f"fault map must be a JSON object, got {type(doc).__name__}",
                path=source,
            )
        version = doc.get("version")
        if version != FAULTMAP_VERSION:
            raise FaultFormatError(
                f"unsupported fault-map version {version!r} "
                f"(this build reads version {FAULTMAP_VERSION})",
                field="version",
                path=source,
            )
        cells_doc = doc.get("faulty_cells", [])
        valves_doc = doc.get("stuck_valves", [])
        events_doc = doc.get("events", [])
        vias_doc = doc.get("via_stuck", [])
        if not isinstance(cells_doc, list):
            raise FaultFormatError(
                f"expected a list of [x, y] cells, "
                f"got {type(cells_doc).__name__}",
                field="faulty_cells",
                path=source,
            )
        if not isinstance(valves_doc, list):
            raise FaultFormatError(
                f"expected a list of valve ids, "
                f"got {type(valves_doc).__name__}",
                field="stuck_valves",
                path=source,
            )
        if not isinstance(events_doc, list):
            raise FaultFormatError(
                f"expected a list of fault events, "
                f"got {type(events_doc).__name__}",
                field="events",
                path=source,
            )
        if not isinstance(vias_doc, list):
            raise FaultFormatError(
                f"expected a list of [x, y] via sites, "
                f"got {type(vias_doc).__name__}",
                field="via_stuck",
                path=source,
            )
        try:
            valves = [int(v) for v in valves_doc]
        except (TypeError, ValueError) as exc:
            raise FaultFormatError(
                f"malformed valve id ({exc})",
                field="stuck_valves",
                path=source,
            ) from None
        return cls(
            faulty_cells=[_parse_cell(c, source) for c in cells_doc],
            stuck_valves=valves,
            events=[
                FaultEvent.from_json(e, source=source) for e in events_doc
            ],
            via_stuck=[_parse_cell(c, source) for c in vias_doc],
        )

    def save(self, path: Union[str, FilePath]) -> None:
        """Write the fault map to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)

    @classmethod
    def load(cls, path: Union[str, FilePath]) -> "FaultMap":
        """Read a fault map back from JSON (validated).

        Raises:
            FaultFormatError: the file is not valid JSON or the
                document is malformed; the error names the file.
        """
        with open(path, "r", encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as exc:
                raise FaultFormatError(
                    f"not valid JSON ({exc})", path=str(path)
                ) from exc
        return cls.from_json(doc, source=str(path))
