"""Bottom-up merging-segment computation (DME phase 1).

Works entirely in rotated half-unit integer arithmetic (see
:mod:`repro.geometry.trr`).  For an internal node with children *a*, *b*
whose merge regions are ``ms_a``, ``ms_b`` and whose balanced sink
distances are ``d_a``, ``d_b`` (all in half units):

* balanced case ``|d_a - d_b| <= dist(ms_a, ms_b)`` — the edge lengths
  ``e_a + e_b = dist`` satisfy ``d_a + e_a = d_b + e_b`` (up to the ±1
  half-unit rounding of Lemma 1 when the split is odd), and the merging
  segment is ``expand(ms_a, e_a) ∩ expand(ms_b, e_b)``;
* detour case (one subtree much deeper) — the shallower child's edge is
  *extended* (snaked) beyond the geometric distance; the merging segment
  collapses onto the deeper child's region nearest the other child.
"""

from __future__ import annotations

from repro.dme.tree import TopologyNode
from repro.geometry.trr import TRR


def compute_merging_regions(root: TopologyNode) -> None:
    """Annotate every node of ``root`` with merge region and edge lengths.

    Fills ``merge_region`` and ``delay_h`` on every node and ``edge_h``
    (required length of the edge to the parent, half units) on every
    non-root node.  Leaves keep their fixed positions as degenerate
    regions with zero delay.
    """
    root.validate()
    _merge(root)


def _merge(node: TopologyNode) -> None:
    if node.is_leaf():
        assert node.position is not None
        node.merge_region = TRR.from_point(node.position)
        node.delay_h = 0
        return

    a, b = node.children
    _merge(a)
    _merge(b)
    assert a.merge_region is not None and b.merge_region is not None

    dist = a.merge_region.distance(b.merge_region)
    if abs(a.delay_h - b.delay_h) <= dist:
        # Balanced merge.  Integer floor introduces at most one half unit
        # of skew when the split is odd (Lemma 1's rounding error); the
        # detour stage repairs it on routed paths.
        e_a = (dist + b.delay_h - a.delay_h) // 2
        e_b = dist - e_a
        region = a.merge_region.expanded(e_a).intersect(b.merge_region.expanded(e_b))
        # The intersection is non-empty by construction: the two expanded
        # regions together cover the gap between the children.
        assert region is not None, "balanced merge produced empty region"
    elif a.delay_h > b.delay_h:
        # Child a is deeper: meet on a's region nearest b and extend b's
        # edge beyond the geometric distance (wire snaking).
        e_a = 0
        e_b = a.delay_h - b.delay_h
        region = a.merge_region.intersect(b.merge_region.expanded(dist))
        if region is None:
            region = a.merge_region
    else:
        e_b = 0
        e_a = b.delay_h - a.delay_h
        region = b.merge_region.intersect(a.merge_region.expanded(dist))
        if region is None:
            region = b.merge_region

    a.edge_h = e_a
    b.edge_h = e_b
    node.merge_region = region
    node.delay_h = max(a.delay_h + e_a, b.delay_h + e_b)
