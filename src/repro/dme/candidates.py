"""Candidate Steiner-tree enumeration (Section 4.1, Fig. 3).

Different merging-node choices on the same merging segments yield
different — all length-balanced — Steiner trees.  The generator combines
root-position samples with embedding policies, de-duplicates by the
embedded edge set, and returns up to ``k`` distinct candidates per
cluster for the selection stage to choose from with a global view.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.dme.bounded_skew import compute_merging_regions_bounded
from repro.dme.embedding import EmbeddingError, embed_tree
from repro.dme.merging import compute_merging_regions
from repro.dme.topology import balanced_bipartition_topology, n_root_bipartitions
from repro.dme.tree import CandidateTree, TopologyNode
from repro.geometry.point import Point
from repro.robustness import faults
from repro.robustness.errors import KernelPreconditionError

_POLICIES = ("nearest", "lo", "hi")


def _clone_topology(node: TopologyNode) -> TopologyNode:
    """Deep-copy a topology (annotations included, positions reset)."""
    clone = TopologyNode(
        sink=node.sink,
        position=node.position if node.is_leaf() else None,
        children=[_clone_topology(c) for c in node.children],
        merge_region=node.merge_region,
        delay_h=node.delay_h,
        edge_h=node.edge_h,
    )
    return clone


def generate_candidates(
    grid,
    cluster_id: int,
    sink_points: Sequence[Point],
    *,
    k: int = 4,
    blocked: Optional[Set[Point]] = None,
    skew_bound_h: int = 0,
) -> List[CandidateTree]:
    """Return up to ``k`` distinct embedded candidate trees for a cluster.

    Args:
        grid: the routing grid (obstacles constrain embedding).
        cluster_id: id recorded on each produced :class:`CandidateTree`.
        sink_points: valve positions of the cluster (index = sink id).
        k: maximum number of distinct candidates to return.
        blocked: extra cells internal nodes must avoid.
        skew_bound_h: merge with a bounded-skew budget (half units)
            instead of zero skew — spends the matching threshold during
            construction to save balancing wire (see
            :mod:`repro.dme.bounded_skew`).

    Returns:
        Distinct candidates ordered by (mismatch, wirelength); empty when
        every embedding attempt fails (fully obstructed neighbourhood).
    """
    if not sink_points:
        raise KernelPreconditionError("a cluster needs at least one sink")
    if faults.fires("candidate_generation_empty"):
        # Chaos-suite hook: behave exactly like a fully obstructed
        # neighbourhood, where no candidate tree can be embedded.
        return []

    # Topology variants give distinct trees even when embedding choices
    # degenerate (collinear sinks ⇒ point merging segments).  Variant-0
    # (best bipartition) candidates rank first on mismatch ties: edge
    # lengths are Manhattan estimates, so alternates must not win ties
    # they would lose under real routing.
    n_variants = min(3, max(1, n_root_bipartitions(sink_points)))
    seen = set()
    candidates: List[CandidateTree] = []
    variant_of: dict = {}
    for variant in range(n_variants):
        base = balanced_bipartition_topology(sink_points, variant=variant)
        if skew_bound_h > 0:
            compute_merging_regions_bounded(base, skew_bound_h)
        else:
            compute_merging_regions(base)

        if base.is_leaf():
            return [CandidateTree(cluster_id, _clone_topology(base))]

        assert base.merge_region is not None
        root_samples: List[Optional[Point]] = list(
            base.merge_region.sample_grid_points(limit=max(2, k))
        )
        if not root_samples:
            root_samples = [None]

        for root_choice in root_samples:
            for policy in _POLICIES:
                topology = _clone_topology(base)
                try:
                    embed_tree(
                        grid,
                        topology,
                        root_choice=root_choice,
                        policy=policy,
                        blocked=blocked,
                    )
                    tree = CandidateTree(cluster_id, topology)
                except EmbeddingError:
                    continue
                sig = tree.signature()
                if sig in seen:
                    continue
                seen.add(sig)
                candidates.append(tree)
                variant_of[id(tree)] = variant

    candidates.sort(
        key=lambda t: (
            t.mismatch(),
            variant_of[id(t)],
            t.total_estimated_length(),
        )
    )
    return candidates[:k]
