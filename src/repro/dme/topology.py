"""Balanced-bipartition (BB) connection topology.

The DME algorithm embeds a *given* binary topology; the paper adopts the
BB approach of the original zero-skew work: recursively bipartition the
sink set into two equal halves minimising the sum of the halves'
diameters.  With unit sink capacitances and an even cluster size this
yields a balanced binary tree.

Exact minimum-diameter bipartition is exponential; like the original BB
heuristic we evaluate a small family of geometric sweep cuts (x, y, x+y,
x-y orderings, each split at the middle) and keep the best.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.geometry.point import Point, manhattan
from repro.dme.tree import TopologyNode
from repro.robustness.errors import KernelPreconditionError

_SWEEPS: Tuple[Callable[[Point], Tuple[int, int]], ...] = (
    lambda p: (p[0], p[1]),
    lambda p: (p[1], p[0]),
    lambda p: (p[0] + p[1], p[0]),
    lambda p: (p[0] - p[1], p[0]),
)


def _diameter(points: Sequence[Point]) -> int:
    """Return the maximum pairwise Manhattan distance (0 for singletons)."""
    best = 0
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            d = manhattan(a, b)
            if d > best:
                best = d
    return best


def _ranked_bipartitions(
    indices: List[int], points: Sequence[Point]
) -> List[Tuple[List[int], List[int]]]:
    """Return distinct near-equal splits ranked by diameter sum."""
    half = len(indices) // 2
    seen = set()
    ranked: List[Tuple[Tuple[int, int, int], Tuple[List[int], List[int]]]] = []
    for si, sweep in enumerate(_SWEEPS):
        ordered = sorted(indices, key=lambda i: (sweep(points[i]), i))
        for split in sorted({half, len(indices) - half}):
            left, right = ordered[:split], ordered[split:]
            if not left or not right:
                continue
            key = frozenset(left)
            if key in seen:
                continue
            seen.add(key)
            cost = _diameter([points[i] for i in left]) + _diameter(
                [points[i] for i in right]
            )
            # Half splits outrank complement splits at equal cost, and
            # earlier sweeps break remaining ties — this keeps variant 0
            # identical to the classic BB choice.
            ranked.append(((cost, 0 if split == half else 1, si), (left, right)))
    ranked.sort(key=lambda item: item[0])
    return [cut for _, cut in ranked]


def _best_bipartition(
    indices: List[int], points: Sequence[Point]
) -> Tuple[List[int], List[int]]:
    """Split ``indices`` into two near-equal halves with small diameter sum."""
    return _ranked_bipartitions(indices, points)[0]


def balanced_bipartition_topology(
    points: Sequence[Point], variant: int = 0
) -> TopologyNode:
    """Return the BB connection topology over a cluster's valve positions.

    Leaves carry ``sink`` = the index into ``points``; the caller maps
    these back to valve ids.  A single point yields a lone leaf.

    ``variant`` selects the k-th best bipartition at the *root* level
    (children always use the best cut); the candidate generator uses it
    to obtain topologically distinct trees when embedding choices
    degenerate (e.g. collinear sinks with point merging segments).
    Out-of-range variants clamp to the last available cut.
    """
    if not points:
        raise KernelPreconditionError("cannot build a topology over zero sinks")
    if variant < 0:
        raise KernelPreconditionError("variant must be non-negative")

    def build(indices: List[int], pick: int) -> TopologyNode:
        if len(indices) == 1:
            i = indices[0]
            return TopologyNode(sink=i, position=Point(*points[i]))
        cuts = _ranked_bipartitions(indices, points)
        left, right = cuts[min(pick, len(cuts) - 1)]
        return TopologyNode(children=[build(left, 0), build(right, 0)])

    return build(list(range(len(points))), variant)


def n_root_bipartitions(points: Sequence[Point]) -> int:
    """Return how many distinct root-level cuts exist for ``points``."""
    if len(points) < 2:
        return 0
    return len(_ranked_bipartitions(list(range(len(points))), points))
