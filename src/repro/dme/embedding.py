"""Top-down merging-node embedding (DME phase 2).

Walks the topology from the root, fixing a grid position for every
internal node.  Two practical issues (Section 4.1) are handled here:

* **Rounding** — merging segments may be off-grid (Lemma 1); positions
  are snapped to the nearest lattice point and the snap distance is
  recorded on the node (``snap_h``), to be repaired by detouring.
* **Blockages** — when the chosen cell is obstructed, a valid cell is
  searched on expanding Manhattan loops around it, growing the radius
  until a free cell is found or the loop leaves the chip everywhere
  (then :class:`EmbeddingError` is raised and the caller must fall back,
  e.g. to MST routing).
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.dme.tree import TopologyNode
from repro.geometry.point import Point
from repro.geometry.trr import TRR
from repro.grid.grid import RoutingGrid
from repro.robustness.errors import KernelPreconditionError, PacorError


class EmbeddingError(PacorError, RuntimeError):
    """Raised when no valid merging-node position exists on the chip."""


def _ring(center: Point, radius: int) -> Iterator[Point]:
    """Yield the cells at exact Manhattan distance ``radius`` from ``center``."""
    if radius == 0:
        yield center
        return
    cx, cy = center
    for dx in range(-radius, radius + 1):
        dy = radius - abs(dx)
        yield Point(cx + dx, cy + dy)
        if dy != 0:
            yield Point(cx + dx, cy - dy)


def find_free_cell_near(
    grid: RoutingGrid,
    target: Point,
    blocked: Optional[Set[Point]] = None,
) -> Point:
    """Return the free cell nearest ``target`` via expanding-loop search.

    This is the paper's obstacle-avoidance move: loops encircling the
    desired merging node expand outward until a valid cell appears; the
    introduced delta distance is eliminated later by path detouring.
    """
    max_radius = grid.width + grid.height
    for radius in range(max_radius + 1):
        candidates = [
            p
            for p in _ring(target, radius)
            if grid.is_free(p) and (blocked is None or p not in blocked)
        ]
        if candidates:
            # Deterministic tie-break for reproducible embeddings.
            return min(candidates)
    raise EmbeddingError(f"no free cell anywhere near {target}")


def _choose_in_region(
    region: TRR,
    toward: Point,
    policy: str,
) -> Point:
    """Pick an embedding point inside ``region`` according to ``policy``.

    ``nearest`` snaps the region point closest to ``toward``; ``lo`` and
    ``hi`` pick extreme sampled points of the region, which is how the
    candidate generator obtains geometrically distinct embeddings from
    one merging segment (Fig. 3 (b)-(d)).
    """
    if policy == "nearest":
        point, _ = region.nearest_grid_point(toward)
        return point
    samples = region.sample_grid_points(limit=8)
    if not samples:
        point, _ = region.nearest_grid_point(toward)
        return point
    if policy == "lo":
        return min(samples)
    if policy == "hi":
        return max(samples)
    raise KernelPreconditionError(f"unknown embedding policy {policy!r}")


def embed_tree(
    grid: RoutingGrid,
    root: TopologyNode,
    *,
    root_choice: Optional[Point] = None,
    policy: str = "nearest",
    blocked: Optional[Set[Point]] = None,
) -> None:
    """Assign grid positions to every node of a merged topology.

    Args:
        grid: routing grid whose obstacles must be avoided.
        root: topology annotated by
            :func:`repro.dme.merging.compute_merging_regions`.
        root_choice: preferred root position (one of the root merge
            region's sampled points); defaults to the region centre.
        policy: merging-node choice policy for internal nodes
            (``nearest`` / ``lo`` / ``hi``).
        blocked: extra cells to avoid (e.g. other clusters' valves).

    Raises:
        EmbeddingError: when some node cannot be placed on a free cell.
    """
    if root.merge_region is None:
        raise KernelPreconditionError("run compute_merging_regions before embedding")

    if root.is_leaf():
        return  # single-valve cluster: the leaf position is the tree

    # -- root --------------------------------------------------------------
    if root_choice is not None:
        desired = root_choice
    else:
        cu, cv = root.merge_region.center_rotated()
        desired, _ = root.merge_region.nearest_grid_point(
            _rotated_center_estimate(cu, cv)
        )
    snapped, snap = root.merge_region.nearest_grid_point(desired)
    position = find_free_cell_near(grid, snapped, blocked)
    root.position = position
    root.snap_h = snap + 2 * snapped.manhattan(position)

    # -- descend ------------------------------------------------------------
    stack = [root]
    while stack:
        node = stack.pop()
        assert node.position is not None
        for child in node.children:
            if child.is_leaf():
                continue  # valve positions are fixed
            assert child.merge_region is not None
            feasible = _feasible_region(child, node.position)
            target = _choose_in_region(feasible, node.position, policy)
            placed = find_free_cell_near(grid, target, blocked)
            child.snap_h += 2 * target.manhattan(placed)
            child.position = placed
        stack.extend(c for c in node.children if not c.is_leaf())


def _feasible_region(child: TopologyNode, parent_position: Point) -> TRR:
    """Intersect the child's merge region with the parent's reach.

    The reach is the Manhattan ball of the required edge length around
    the (possibly snapped/displaced) parent position; when snapping has
    drifted the parent so far that the intersection is empty, the ball is
    progressively inflated, and ultimately the bare merge region is used
    — the resulting length error is recorded implicitly via positions and
    repaired by the detour stage.
    """
    assert child.merge_region is not None
    ball = TRR.from_point(parent_position)
    for slack in (0, 2, 4, 8, 16):
        feasible = child.merge_region.intersect(ball.expanded(child.edge_h + slack))
        if feasible is not None:
            return feasible
    return child.merge_region


def _rotated_center_estimate(u: int, v: int) -> Point:
    """Map a rotated half-unit centre to the closest integer grid point."""
    return Point(round((u + v) / 4), round((u - v) / 4))
