"""Bounded-skew merging: spend the matching threshold during construction.

The paper builds *zero-skew* trees (up to Lemma-1 rounding) and repairs
residual mismatch by detouring afterwards.  When the threshold δ is
non-zero, some of that balancing wire is unnecessary: a tree whose sink
distances already differ by at most δ satisfies the constraint with less
wirelength.  This module implements bounded-skew DME merging as an
optional alternative to :func:`repro.dme.merging.compute_merging_regions`:

every subtree carries a *delay interval* ``[dmin, dmax]`` (half units)
with ``dmax - dmin <= skew_h``; a merge chooses the edge split ``e_a +
e_b = dist`` (or the minimum extension when the children are too
unbalanced) that keeps the combined interval within the budget while
minimising added wire.

The classic BST-DME computes exact merging *regions*; we keep the
paper's machinery (rectangle regions in rotated half units) and pick the
split by direct search over the integer ``e_a`` range, which is exact
for the cluster sizes PACOR handles.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dme.tree import TopologyNode
from repro.geometry.trr import TRR
from repro.robustness.errors import KernelPreconditionError


def compute_merging_regions_bounded(root: TopologyNode, skew_h: int) -> None:
    """Annotate ``root`` with bounded-skew merge regions and edge lengths.

    Args:
        root: validated connection topology (leaves positioned).
        skew_h: allowed sink-distance spread per subtree, in half units
            (``2 * delta`` for a threshold of ``delta`` grid units).
            ``skew_h = 0`` reproduces zero-skew merging.

    Fills the same fields as the zero-skew phase (``merge_region``,
    ``delay_h``, ``edge_h``); ``delay_h`` records the subtree's *maximum*
    sink distance, and the auxiliary ``snap_h`` is left untouched.
    """
    if skew_h < 0:
        raise KernelPreconditionError("skew budget must be non-negative")
    root.validate()
    _merge(root, skew_h)


def _interval(node: TopologyNode) -> Tuple[int, int]:
    return getattr(node, "_delay_interval", (node.delay_h, node.delay_h))


def _merge(node: TopologyNode, skew_h: int) -> None:
    if node.is_leaf():
        assert node.position is not None
        node.merge_region = TRR.from_point(node.position)
        node.delay_h = 0
        node._delay_interval = (0, 0)  # type: ignore[attr-defined]
        return

    a, b = node.children
    _merge(a, skew_h)
    _merge(b, skew_h)
    assert a.merge_region is not None and b.merge_region is not None
    amin, amax = _interval(a)
    bmin, bmax = _interval(b)
    dist = a.merge_region.distance(b.merge_region)

    best: Optional[Tuple[int, int, int, Tuple[int, int]]] = None
    # The zero-skew split balances the children's max delays; with slack
    # we stay as close to it as the budget allows, which keeps the merge
    # regions (and hence upper-level distances) near the zero-skew ones.
    e_zero = max(0, min(dist, (dist + bmax - amax) // 2))
    # Candidate splits without extension: e_a in [0, dist].
    for e_a in range(dist + 1):
        e_b = dist - e_a
        lo = min(amin + e_a, bmin + e_b)
        hi = max(amax + e_a, bmax + e_b)
        if hi - lo <= skew_h:
            anchor = abs(e_a - e_zero)
            key = (0, anchor)
            if best is None or key < best[:2]:
                best = (0, anchor, e_a, (lo, hi))
    if best is not None:
        _, _, e_a, interval = best
        e_b = dist - e_a
        region = a.merge_region.expanded(e_a).intersect(b.merge_region.expanded(e_b))
        assert region is not None
    elif amin > bmin:
        # Child a is too deep even at e_a = 0: extend b's edge just enough
        # to bring the intervals within the budget.
        e_a = 0
        ext = max(0, (amax - skew_h) - (bmin + dist))
        e_b = dist + ext
        interval = (
            min(amin, bmin + e_b),
            max(amax, bmax + e_b),
        )
        region = a.merge_region.intersect(b.merge_region.expanded(dist))
        if region is None:
            region = a.merge_region
    else:
        e_b = 0
        ext = max(0, (bmax - skew_h) - (amin + dist))
        e_a = dist + ext
        interval = (
            min(bmin, amin + e_a),
            max(bmax, amax + e_a),
        )
        region = b.merge_region.intersect(a.merge_region.expanded(dist))
        if region is None:
            region = b.merge_region

    a.edge_h = e_a
    b.edge_h = e_b
    node.merge_region = region
    node.delay_h = interval[1]
    node._delay_interval = interval  # type: ignore[attr-defined]
