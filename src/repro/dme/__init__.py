"""Deferred-merge embedding (DME) for length-matched Steiner trees.

PACOR adapts the zero-skew clock-tree DME algorithm (Chao/Hsu/Ho/Kahng,
cited as [24]) to compute candidate Steiner trees whose root-to-valve
channel lengths are balanced:

* :mod:`repro.dme.topology` — the balanced-bipartition (BB) connection
  topology over a cluster's valves.
* :mod:`repro.dme.merging` — the bottom-up merging-segment phase in exact
  rotated half-unit arithmetic.
* :mod:`repro.dme.embedding` — the top-down merging-node embedding with
  grid snapping (Lemma 1) and obstacle-avoiding expanding-loop search.
* :mod:`repro.dme.candidates` — enumeration of multiple distinct
  embeddings per cluster (Fig. 3), the input to candidate selection.
* :mod:`repro.dme.tree` — topology/embedded-tree data structures, full
  paths (Def. 5) and the estimated length mismatch ΔL (Eq. 1).
"""

from repro.dme.bounded_skew import compute_merging_regions_bounded
from repro.dme.candidates import generate_candidates
from repro.dme.embedding import EmbeddingError, embed_tree
from repro.dme.merging import compute_merging_regions
from repro.dme.topology import balanced_bipartition_topology
from repro.dme.tree import CandidateTree, TopologyNode

__all__ = [
    "TopologyNode",
    "CandidateTree",
    "balanced_bipartition_topology",
    "compute_merging_regions",
    "compute_merging_regions_bounded",
    "embed_tree",
    "EmbeddingError",
    "generate_candidates",
]
