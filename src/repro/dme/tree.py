"""Tree data structures for the DME stage.

A :class:`TopologyNode` is one node of the binary connection topology
produced by balanced bipartition; the merging phase annotates it with a
merge region and per-child required edge lengths, and the embedding phase
assigns grid positions.  A fully embedded tree is wrapped in
:class:`CandidateTree`, which exposes what the selection stage (Section
4.2) needs: edges with bounding boxes, full paths per sink (Def. 5) and
the estimated length mismatch ΔL (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect
from repro.geometry.trr import TRR
from repro.robustness.errors import KernelPreconditionError


@dataclass
class TopologyNode:
    """A node of the (binary) DME connection topology.

    Leaves carry ``sink`` — the index of a valve within the cluster — and
    a fixed position.  Internal nodes have exactly two children.  The
    merging phase fills ``merge_region`` (a :class:`TRR` in rotated half
    units), ``delay_h`` (the subtree's balanced sink distance, in half
    units) and ``edge_h`` (required length of the edge *up to the
    parent*, in half units); the embedding phase fills ``position``.
    """

    sink: Optional[int] = None
    position: Optional[Point] = None
    children: List["TopologyNode"] = field(default_factory=list)
    merge_region: Optional[TRR] = None
    delay_h: int = 0
    edge_h: int = 0
    snap_h: int = 0

    def is_leaf(self) -> bool:
        """Return True for sink (valve) nodes."""
        return self.sink is not None

    def validate(self) -> None:
        """Check the leaf/internal invariants recursively."""
        if self.is_leaf():
            if self.children:
                raise KernelPreconditionError("leaf topology nodes must not have children")
            if self.position is None:
                raise KernelPreconditionError("leaf topology nodes need a valve position")
        else:
            if len(self.children) != 2:
                raise KernelPreconditionError("internal topology nodes need exactly two children")
            for child in self.children:
                child.validate()

    def walk(self) -> Iterator["TopologyNode"]:
        """Yield the subtree's nodes in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["TopologyNode"]:
        """Yield the subtree's leaves left-to-right."""
        for node in self.walk():
            if node.is_leaf():
                yield node


@dataclass(frozen=True)
class TreeEdge:
    """One embedded tree edge from a node to its parent.

    Attributes:
        parent: embedded position of the parent merging node.
        child: embedded position of the child node.
        required_length: target routed length in grid units (at least the
            Manhattan distance; larger when DME balancing demands wire
            extension/snaking on this edge).
    """

    parent: Point
    child: Point
    required_length: int

    @property
    def manhattan_length(self) -> int:
        """Return the Manhattan distance between the endpoints."""
        return manhattan(self.parent, self.child)

    def bounding_box(self) -> Rect:
        """Return the edge's bounding box (used by the overlap cost, Eq. 4)."""
        return Rect.from_points([self.parent, self.child])


class CandidateTree:
    """A fully embedded candidate Steiner tree for one cluster.

    The selection stage treats candidate trees as atoms: it needs the
    estimated mismatch ΔL (Eq. 1, with path lengths estimated by Manhattan
    distance), the edge bounding boxes (Eq. 4), and — once selected — the
    edges to hand to the negotiation router.
    """

    def __init__(self, cluster_id: int, root: TopologyNode) -> None:
        root.validate()
        self.cluster_id = cluster_id
        self.root = root
        for node in root.walk():
            if node.position is None:
                raise KernelPreconditionError("candidate trees must be fully embedded")

    @property
    def root_position(self) -> Point:
        """Return the embedded root position (escape-routing source)."""
        assert self.root.position is not None
        return self.root.position

    def edges(self) -> List[TreeEdge]:
        """Return every parent-child edge of the embedded tree."""
        out: List[TreeEdge] = []

        def visit(node: TopologyNode) -> None:
            for child in node.children:
                assert node.position is not None and child.position is not None
                required = max(
                    manhattan(node.position, child.position),
                    (child.edge_h + 1) // 2,
                )
                out.append(TreeEdge(node.position, child.position, required))
                visit(child)

        visit(self.root)
        return out

    def sink_positions(self) -> Dict[int, Point]:
        """Return valve-index -> embedded position for every sink."""
        return {
            node.sink: node.position  # type: ignore[misc, dict-item]
            for node in self.root.leaves()
        }

    def full_path_lengths(self) -> Dict[int, int]:
        """Return the estimated full-path length per sink (Def. 5).

        Estimated as the sum of each edge's required length from the sink
        up to the root — Manhattan distance when no extension is needed.
        """
        lengths: Dict[int, int] = {}

        def visit(node: TopologyNode, acc: int) -> None:
            if node.is_leaf():
                assert node.sink is not None
                lengths[node.sink] = acc
                return
            for child in node.children:
                assert node.position is not None and child.position is not None
                required = max(
                    manhattan(node.position, child.position),
                    (child.edge_h + 1) // 2,
                )
                visit(child, acc + required)

        visit(self.root, 0)
        return lengths

    def mismatch(self) -> int:
        """Return the estimated length mismatch ΔL (Eq. 1)."""
        lengths = self.full_path_lengths()
        return max(lengths.values()) - min(lengths.values())

    def total_estimated_length(self) -> int:
        """Return the summed required edge lengths (tree wirelength estimate)."""
        return sum(e.required_length for e in self.edges())

    def signature(self) -> Tuple[Tuple[Point, Point], ...]:
        """Return a hashable embedding signature for de-duplication."""
        return tuple(sorted((e.parent, e.child) for e in self.edges()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CandidateTree(cluster={self.cluster_id}, root={self.root_position}, "
            f"dL={self.mismatch()})"
        )
