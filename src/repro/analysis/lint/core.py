"""pacorlint engine: rule registry, suppression handling, file walking.

The PACOR flow is only correct if cross-cutting invariants hold
everywhere — kernels must be deterministic and replayable, failures
must surface through the :class:`~repro.robustness.errors.PacorError`
taxonomy, kernels must report through the observability counters.  Like
a DRC deck for physical design rules, ``pacorlint`` enforces those
invariants mechanically over the AST instead of relying on review.

Three rule kinds exist:

* :class:`FileRule` — checks one parsed module at a time (most rules).
* :class:`ProjectRule` — sees every parsed module plus the repo root at
  once, for cross-file contracts (counter coverage, schema drift).
* :class:`GraphRule` — a project rule additionally handed the shared
  :class:`~repro.analysis.graph.ProjectGraph` (import graph, symbol
  table, call graph), built once per run for the dataflow rules.

Suppressions are comments:

* ``# pacorlint: disable=RULE`` anywhere inside a statement — trailing
  any physical line of it — suppresses the named rule(s) for the whole
  *logical* line (a multi-line call suppressed on its last line is
  suppressed on its first);
* the same comment standing alone between statements suppresses the
  rule(s) for the whole file.

``RULE`` may be a comma-separated list, or ``all``.

Pre-existing violations that cannot be fixed in place live in a
checked-in **baseline** (``.pacorlint-baseline.json``): entries match
on ``(rule, path, message)`` — deliberately line-free, so unrelated
edits above a baselined site do not resurrect it — and each carries a
human-written ``reason``.  Baselined hits are reported separately and
do not fail the run.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.graph import ProjectGraph

_SUPPRESS_MARKER = "pacorlint:"

#: Default baseline filename, auto-loaded from the repo root.
BASELINE_FILENAME = ".pacorlint-baseline.json"


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_json(self) -> Dict[str, object]:
        """Return the reporter document of this violation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, rule: str, line: int) -> bool:
        """Return True when ``rule`` is disabled at ``line``."""
        if "all" in self.file_rules or rule in self.file_rules:
            return True
        at_line = self.line_rules.get(line, ())
        return "all" in at_line or rule in at_line


def _parse_directive(comment: str) -> Optional[Set[str]]:
    """Return the rule set of a ``# pacorlint: disable=...`` comment."""
    text = comment.lstrip("#").strip()
    if not text.startswith(_SUPPRESS_MARKER):
        return None
    directive = text[len(_SUPPRESS_MARKER) :].strip()
    if not directive.startswith("disable="):
        return None
    rules = {
        name.strip()
        for name in directive[len("disable=") :].split(",")
        if name.strip()
    }
    return rules or None


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# pacorlint: disable=...`` comments from ``source``.

    Comment tokens are read with :mod:`tokenize`, so markers inside
    string literals are ignored.  Classification follows *logical*
    lines, which tokenize delimits with ``NEWLINE`` (``NL`` is a
    non-logical break inside an open statement):

    * a comment inside an open logical line — trailing any physical
      line of a multi-line statement, or on a continuation line of its
      own — suppresses the rules on **every** physical line the
      statement spans, so violations reported at inner nodes are
      covered too;
    * a comment between statements (no logical line open) is
      file-level.

    A compound-statement header (``def``/``if``/...) is its own logical
    line ending at the colon, so a trailing comment there never leaks
    into the suite it introduces.
    """
    out = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    start: Optional[int] = None  # first line of the open logical line
    last_line = 1
    pending: List[Set[str]] = []  # directives seen inside the open line

    def flush(end_line: int) -> None:
        if start is None or not pending:
            return
        for rules in pending:
            for lineno in range(start, end_line + 1):
                out.line_rules.setdefault(lineno, set()).update(rules)

    for tok in tokens:
        last_line = max(last_line, tok.end[0])
        if tok.type == tokenize.COMMENT:
            rules = _parse_directive(tok.string)
            if rules is None:
                continue
            if start is None:
                out.file_rules.update(rules)
            else:
                pending.append(rules)
        elif tok.type == tokenize.NEWLINE:
            flush(tok.end[0])
            start = None
            pending = []
        elif tok.type in (
            tokenize.NL,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        elif start is None:
            start = tok.start[0]
    # A file truncated mid-statement still honours its suppressions.
    flush(last_line)
    return out


@dataclass
class ParsedFile:
    """One source file with its AST, source lines and suppressions."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def module(self) -> str:
        """Return the dotted module name (``repro.routing.astar``)."""
        parts = list(Path(self.rel).with_suffix("").parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class Rule:
    """Base class of every pacorlint rule.

    Subclasses set :attr:`id` (``DET001`` ...) and :attr:`rationale`
    (one line, shown by ``--list-rules``) and implement one of the
    check hooks below.
    """

    id: str = ""
    rationale: str = ""


class FileRule(Rule):
    """A rule checked one file at a time."""

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield violations found in ``parsed``."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule checked once over the whole parsed project."""

    def check_project(
        self, files: Sequence[ParsedFile], root: Path
    ) -> Iterator[Violation]:
        """Yield violations found across ``files`` (repo root ``root``)."""
        raise NotImplementedError


class GraphRule(Rule):
    """A project rule handed the shared :class:`ProjectGraph`.

    The graph (import graph + symbol table + call graph) is built once
    per lint run and shared by every graph rule, so adding a dataflow
    rule costs one traversal, not one graph construction.
    """

    def check_graph(
        self,
        graph: "ProjectGraph",
        files: Sequence[ParsedFile],
        root: Path,
    ) -> Iterator[Violation]:
        """Yield violations found by walking ``graph``."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Return the registry (id -> rule class), importing the built-ins."""
    # Imported here so `register` decorators run exactly once, after the
    # registry exists.
    from repro.analysis.lint import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing violation with its justification."""

    rule: str
    path: str
    message: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Return the (rule, path, message) match key."""
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, object]:
        """Return the baseline-file document of this entry."""
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """A checked-in set of accepted violations (``.pacorlint-baseline.json``).

    Entries match on ``(rule, path, message)`` — no line numbers, so
    edits elsewhere in a file cannot resurrect a baselined finding.  A
    matched violation is reported under ``baselined`` instead of
    failing the run; entries that match nothing are *stale* and should
    be pruned (``--update-baseline`` does).
    """

    entries: List[BaselineEntry] = field(default_factory=list)
    path: Optional[Path] = None

    def match(self, violation: Violation) -> Optional[BaselineEntry]:
        """Return the entry covering ``violation``, or None."""
        key = (violation.rule, violation.path, violation.message)
        for entry in self.entries:
            if entry.key == key:
                return entry
        return None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file.

        Raises:
            ValueError: the document is not a valid baseline.
        """
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or "entries" not in doc:
            raise ValueError(f"{path}: expected an object with 'entries'")
        entries: List[BaselineEntry] = []
        for i, raw in enumerate(doc["entries"]):
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: entries[{i}] is not an object")
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        message=str(raw["message"]),
                        reason=str(raw["reason"]),
                    )
                )
            except KeyError as exc:
                raise ValueError(
                    f"{path}: entries[{i}] missing key {exc}"
                ) from None
        return cls(entries=entries, path=path)

    def save(self, path: Path) -> None:
        """Write the baseline document, sorted for stable diffs."""
        doc = {
            "schema_version": 1,
            "tool": "pacorlint-baseline",
            "entries": [
                e.to_json()
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]
    files_checked: int
    suppressed: int
    rules: List[str]
    #: violations absorbed by the baseline, with their entries.
    baselined: List[Tuple[Violation, BaselineEntry]] = field(
        default_factory=list
    )
    #: baseline entries that matched no current violation.
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Return True when no unsuppressed, unbaselined violation exists."""
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        """Return the JSON reporter document (schema version 1)."""
        return {
            "schema_version": 1,
            "tool": "pacorlint",
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "violations": [v.to_json() for v in self.violations],
            "baselined": [
                {**v.to_json(), "reason": entry.reason}
                for v, entry in self.baselined
            ],
            "stale_baseline": [e.to_json() for e in self.stale_baseline],
        }


# Parsed sources cached across rules *and* runs, keyed by path and
# invalidated on (mtime_ns, size) change: every rule of a run — and a
# re-run in the same process (tests, `pacor lint` loops) — reuses one
# parse per file instead of one per rule.  Entries hold the immutable
# triple (source, tree, suppressions); ParsedFile itself is rebuilt per
# call because ``rel`` depends on the requested root.  Rules treat ASTs
# as read-only, which is what makes the sharing sound.
_ParseEntry = Tuple[Tuple[int, int], str, ast.Module, Suppressions]
_PARSE_CACHE: Dict[Path, _ParseEntry] = {}


def _parse_cached(path: Path) -> Tuple[str, ast.Module, Suppressions]:
    """Parse ``path`` once, reusing the cache while it is unchanged."""
    stat = path.stat()
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _PARSE_CACHE.get(path)
    if cached is not None and cached[0] == stamp:
        return cached[1], cached[2], cached[3]
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    suppressions = parse_suppressions(source)
    _PARSE_CACHE[path] = (stamp, source, tree, suppressions)
    return source, tree, suppressions


def collect_files(paths: Iterable[Path], root: Path) -> List[ParsedFile]:
    """Parse every ``*.py`` file under ``paths`` (files or directories).

    Files that fail to parse are skipped here; the runner reports them
    separately as internal errors.

    Raises:
        FileNotFoundError: a requested path does not exist.
    """
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for p in paths:
        p = p.resolve()
        if not p.exists():
            # Usage error surfaced by the runner as exit 2, not a flow
            # failure.
            raise FileNotFoundError(  # pacorlint: disable=ERR001
                f"no such file or directory: {p}"
            )
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                ordered.append(c)
    out: List[ParsedFile] = []
    for path in ordered:
        source, tree, suppressions = _parse_cached(path)
        try:
            rel = str(path.relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        out.append(
            ParsedFile(
                path=path,
                rel=rel,
                source=source,
                tree=tree,
                suppressions=suppressions,
            )
        )
    return out


def find_baseline(root: Path) -> Optional[Path]:
    """Return the repo-root baseline file when one is checked in."""
    candidate = root / BASELINE_FILENAME
    return candidate if candidate.is_file() else None


def run_lint(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run pacorlint over ``paths`` and return the result.

    Args:
        paths: files or directories to check.
        root: repo root used for relative paths and for project rules
            that read ``docs/``; defaults to the common parent guessed
            from ``paths``.
        rule_ids: subset of rule ids to run; all registered rules when
            None.
        baseline: accepted pre-existing violations; matched hits land
            in :attr:`LintResult.baselined` instead of failing the run.

    Raises:
        ValueError: an unknown rule id was requested.
        FileNotFoundError: a requested path does not exist.
        SyntaxError: a checked file does not parse.
    """
    registry = registered_rules()
    if rule_ids is None:
        selected = sorted(registry)
    else:
        unknown = sorted(set(rule_ids) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule ids: {unknown}; known: {sorted(registry)}"
            )
        selected = sorted(set(rule_ids))
    if root is None:
        root = _guess_root(paths)
    files = collect_files(paths, root)

    # The program graph is shared by every GraphRule and built at most
    # once per run, only when a selected rule needs it.
    graph: Optional["ProjectGraph"] = None
    raw: List[Violation] = []
    for rule_id in selected:
        rule = registry[rule_id]()
        if isinstance(rule, FileRule):
            for parsed in files:
                raw.extend(rule.check(parsed))
        elif isinstance(rule, GraphRule):
            if graph is None:
                from repro.analysis.graph import ProjectGraph

                graph = ProjectGraph.build(files)
            raw.extend(rule.check_graph(graph, files, root))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(files, root))

    by_rel = {parsed.rel: parsed for parsed in files}
    kept: List[Violation] = []
    baselined: List[Tuple[Violation, BaselineEntry]] = []
    matched_entries: Set[Tuple[str, str, str]] = set()
    suppressed = 0
    for violation in raw:
        parsed = by_rel.get(violation.path)
        if parsed is not None and parsed.suppressions.suppresses(
            violation.rule, violation.line
        ):
            suppressed += 1
            continue
        entry = baseline.match(violation) if baseline is not None else None
        if entry is not None:
            baselined.append((violation, entry))
            matched_entries.add(entry.key)
        else:
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    baselined.sort(key=lambda p: (p[0].path, p[0].line, p[0].col, p[0].rule))
    # An entry is stale only when its rule ran over its file in *this*
    # invocation and nothing matched; subset runs never flag staleness
    # they cannot judge.
    stale: List[BaselineEntry] = []
    if baseline is not None:
        stale = [
            entry
            for entry in baseline.entries
            if entry.key not in matched_entries
            and entry.rule in selected
            and entry.path in by_rel
        ]
    return LintResult(
        violations=kept,
        files_checked=len(files),
        suppressed=suppressed,
        rules=selected,
        baselined=baselined,
        stale_baseline=stale,
    )


def _guess_root(paths: Sequence[Path]) -> Path:
    """Return the repo root: nearest ancestor holding ``pyproject.toml``."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start
