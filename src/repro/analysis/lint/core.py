"""pacorlint engine: rule registry, suppression handling, file walking.

The PACOR flow is only correct if cross-cutting invariants hold
everywhere — kernels must be deterministic and replayable, failures
must surface through the :class:`~repro.robustness.errors.PacorError`
taxonomy, kernels must report through the observability counters.  Like
a DRC deck for physical design rules, ``pacorlint`` enforces those
invariants mechanically over the AST instead of relying on review.

Two rule kinds exist:

* :class:`FileRule` — checks one parsed module at a time (most rules).
* :class:`ProjectRule` — sees every parsed module plus the repo root at
  once, for cross-file contracts (counter coverage, schema drift).

Suppressions are comments:

* ``# pacorlint: disable=RULE`` trailing a code line suppresses the
  named rule(s) on that line;
* the same comment standing alone on its own line suppresses the
  rule(s) for the whole file.

``RULE`` may be a comma-separated list, or ``all``.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

_SUPPRESS_MARKER = "pacorlint:"


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_json(self) -> Dict[str, object]:
        """Return the reporter document of this violation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, rule: str, line: int) -> bool:
        """Return True when ``rule`` is disabled at ``line``."""
        if "all" in self.file_rules or rule in self.file_rules:
            return True
        at_line = self.line_rules.get(line, ())
        return "all" in at_line or rule in at_line


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# pacorlint: disable=...`` comments from ``source``.

    Comment tokens are read with :mod:`tokenize`, so markers inside
    string literals are ignored.  A comment that is the only token on
    its physical line is file-level; a trailing comment is line-level.
    """
    out = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        comment = tok.string.lstrip("#").strip()
        if not comment.startswith(_SUPPRESS_MARKER):
            continue
        directive = comment[len(_SUPPRESS_MARKER) :].strip()
        if not directive.startswith("disable="):
            continue
        rules = {
            name.strip()
            for name in directive[len("disable=") :].split(",")
            if name.strip()
        }
        if not rules:
            continue
        lineno = tok.start[0]
        before = lines[lineno - 1][: tok.start[1]] if lineno <= len(lines) else ""
        if before.strip():
            out.line_rules.setdefault(lineno, set()).update(rules)
        else:
            out.file_rules.update(rules)
    return out


@dataclass
class ParsedFile:
    """One source file with its AST, source lines and suppressions."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def module(self) -> str:
        """Return the dotted module name (``repro.routing.astar``)."""
        parts = list(Path(self.rel).with_suffix("").parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class Rule:
    """Base class of every pacorlint rule.

    Subclasses set :attr:`id` (``DET001`` ...) and :attr:`rationale`
    (one line, shown by ``--list-rules``) and implement one of the
    check hooks below.
    """

    id: str = ""
    rationale: str = ""


class FileRule(Rule):
    """A rule checked one file at a time."""

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield violations found in ``parsed``."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule checked once over the whole parsed project."""

    def check_project(
        self, files: Sequence[ParsedFile], root: Path
    ) -> Iterator[Violation]:
        """Yield violations found across ``files`` (repo root ``root``)."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Return the registry (id -> rule class), importing the built-ins."""
    # Imported here so `register` decorators run exactly once, after the
    # registry exists.
    from repro.analysis.lint import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation]
    files_checked: int
    suppressed: int
    rules: List[str]

    @property
    def clean(self) -> bool:
        """Return True when no unsuppressed violation was found."""
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        """Return the JSON reporter document (schema version 1)."""
        return {
            "schema_version": 1,
            "tool": "pacorlint",
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "violations": [v.to_json() for v in self.violations],
        }


def collect_files(paths: Iterable[Path], root: Path) -> List[ParsedFile]:
    """Parse every ``*.py`` file under ``paths`` (files or directories).

    Files that fail to parse are skipped here; the runner reports them
    separately as internal errors.

    Raises:
        FileNotFoundError: a requested path does not exist.
    """
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for p in paths:
        p = p.resolve()
        if not p.exists():
            # Usage error surfaced by the runner as exit 2, not a flow
            # failure.
            raise FileNotFoundError(  # pacorlint: disable=ERR001
                f"no such file or directory: {p}"
            )
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                ordered.append(c)
    out: List[ParsedFile] = []
    for path in ordered:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            rel = str(path.relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        out.append(
            ParsedFile(
                path=path,
                rel=rel,
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
        )
    return out


def run_lint(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run pacorlint over ``paths`` and return the result.

    Args:
        paths: files or directories to check.
        root: repo root used for relative paths and for project rules
            that read ``docs/``; defaults to the common parent guessed
            from ``paths``.
        rule_ids: subset of rule ids to run; all registered rules when
            None.

    Raises:
        ValueError: an unknown rule id was requested.
        FileNotFoundError: a requested path does not exist.
        SyntaxError: a checked file does not parse.
    """
    registry = registered_rules()
    if rule_ids is None:
        selected = sorted(registry)
    else:
        unknown = sorted(set(rule_ids) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule ids: {unknown}; known: {sorted(registry)}"
            )
        selected = sorted(set(rule_ids))
    if root is None:
        root = _guess_root(paths)
    files = collect_files(paths, root)

    raw: List[Violation] = []
    for rule_id in selected:
        rule = registry[rule_id]()
        if isinstance(rule, FileRule):
            for parsed in files:
                raw.extend(rule.check(parsed))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(files, root))

    by_rel = {parsed.rel: parsed for parsed in files}
    kept: List[Violation] = []
    suppressed = 0
    for violation in raw:
        parsed = by_rel.get(violation.path)
        if parsed is not None and parsed.suppressions.suppresses(
            violation.rule, violation.line
        ):
            suppressed += 1
        else:
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return LintResult(
        violations=kept,
        files_checked=len(files),
        suppressed=suppressed,
        rules=selected,
    )


def _guess_root(paths: Sequence[Path]) -> Path:
    """Return the repo root: nearest ancestor holding ``pyproject.toml``."""
    start = Path(paths[0]).resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start
