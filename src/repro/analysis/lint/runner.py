"""pacorlint command-line entry point.

Exit codes follow the repo's CLI conventions: 0 clean, 1 unsuppressed
violations found, 2 internal error / bad usage.

The baseline workflow: a checked-in ``.pacorlint-baseline.json`` at the
repo root is picked up automatically (``--baseline`` points elsewhere,
``--no-baseline`` ignores it).  ``--update-baseline`` rewrites the file
from the current violations, keeping the human-written ``reason`` of
entries that still match and stamping new entries with a TODO reason to
be justified before commit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.core import (
    Baseline,
    BaselineEntry,
    LintResult,
    find_baseline,
    registered_rules,
    run_lint,
)
from repro.analysis.lint.reporters import (
    render_human,
    render_json,
    render_rule_list,
)

_TODO_REASON = "TODO: justify this baseline entry"


def build_parser() -> argparse.ArgumentParser:
    """Return the pacorlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="pacorlint",
        description="AST-based invariant checker for the PACOR flow "
        "(see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of the human one",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="comma-separated subset of rule ids to run",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repo root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted violations "
        "(default: <root>/.pacorlint-baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current violations "
        "(keeps reasons of surviving entries) and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _resolve_baseline(
    args: argparse.Namespace, root: Optional[Path]
) -> Optional[Baseline]:
    """Load the effective baseline for this invocation, or None.

    Raises:
        FileNotFoundError: an explicit ``--baseline`` path is missing.
        ValueError: the baseline document is malformed.
    """
    if args.no_baseline:
        return None
    if args.baseline:
        path = Path(args.baseline)
        if not path.is_file():
            if args.update_baseline:
                return None  # creating it fresh
            raise FileNotFoundError(  # pacorlint: disable=ERR001
                f"baseline file not found: {path}"
            )
        return Baseline.load(path)
    if root is not None:
        found = find_baseline(root)
        if found is not None:
            return Baseline.load(found)
    return None


def _rewrite_baseline(
    result: LintResult, baseline: Optional[Baseline], path: Path
) -> int:
    """Write a fresh baseline covering every current violation."""
    entries: List[BaselineEntry] = []
    for violation, entry in result.baselined:
        entries.append(entry)  # still matching: keep its reason
    for violation in result.violations:
        entries.append(
            BaselineEntry(
                rule=violation.rule,
                path=violation.path,
                message=violation.message,
                reason=_TODO_REASON,
            )
        )
    # Dedup on the match key (several sites can share one message).
    unique = {entry.key: entry for entry in entries}
    Baseline(entries=list(unique.values())).save(path)
    print(
        f"pacorlint: wrote {len(unique)} baseline entries to {path}"
        + (
            f" ({sum(1 for e in unique.values() if e.reason == _TODO_REASON)}"
            " need a reason)"
            if any(e.reason == _TODO_REASON for e in unique.values())
            else ""
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run pacorlint; return the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list(registered_rules()))
        return 0
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    root = Path(args.root) if args.root else None
    try:
        from repro.analysis.lint.core import _guess_root

        effective_root = root if root is not None else _guess_root(
            [Path(p) for p in args.paths]
        )
        baseline = _resolve_baseline(args, effective_root)
        result = run_lint(
            [Path(p) for p in args.paths],
            root=effective_root,
            rule_ids=rule_ids,
            baseline=baseline,
        )
    except (ValueError, FileNotFoundError, SyntaxError) as exc:
        print(f"pacorlint: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = (
            Path(args.baseline)
            if args.baseline
            else (baseline.path if baseline is not None and baseline.path
                  else effective_root / ".pacorlint-baseline.json")
        )
        return _rewrite_baseline(result, baseline, target)
    print(render_json(result) if args.json else render_human(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
