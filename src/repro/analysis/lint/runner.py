"""pacorlint command-line entry point.

Exit codes follow the repo's CLI conventions: 0 clean, 1 unsuppressed
violations found, 2 internal error / bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.core import registered_rules, run_lint
from repro.analysis.lint.reporters import (
    render_human,
    render_json,
    render_rule_list,
)


def build_parser() -> argparse.ArgumentParser:
    """Return the pacorlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="pacorlint",
        description="AST-based invariant checker for the PACOR flow "
        "(see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of the human one",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="comma-separated subset of rule ids to run",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="repo root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run pacorlint; return the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list(registered_rules()))
        return 0
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = run_lint(
            [Path(p) for p in args.paths],
            root=Path(args.root) if args.root else None,
            rule_ids=rule_ids,
        )
    except (ValueError, FileNotFoundError, SyntaxError) as exc:
        print(f"pacorlint: error: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_human(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
