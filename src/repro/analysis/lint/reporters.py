"""pacorlint output: human-readable and JSON reporters."""

from __future__ import annotations

import json
from typing import Dict, Optional, Type

from repro.analysis.lint.core import LintResult, Rule, registered_rules


def render_human(result: LintResult) -> str:
    """Return the terminal report: one line per violation plus a summary."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}"
        for v in result.violations
    ]
    for entry in result.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"(no longer matches; prune it or run --update-baseline)"
        )
    noun = "violation" if len(result.violations) == 1 else "violations"
    summary = (
        f"pacorlint: {len(result.violations)} {noun} "
        f"({result.suppressed} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_checked} files "
        f"[rules: {', '.join(result.rules)}]"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Return the JSON report (schema version 1), indented and sorted."""
    return json.dumps(result.to_json(), indent=2, sort_keys=True)


def render_rule_list(registry: Optional[Dict[str, Type[Rule]]] = None) -> str:
    """Return the ``--list-rules`` catalogue."""
    if registry is None:
        registry = registered_rules()
    lines = []
    for rule_id in sorted(registry):
        lines.append(f"{rule_id}  {registry[rule_id].rationale}")
    return "\n".join(lines)
