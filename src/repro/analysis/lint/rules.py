"""Built-in pacorlint rules (the PACOR invariant deck).

Rule ids are stable and documented in ``docs/static_analysis.md``:

* ``DET001`` — no module-level (shared-state) ``random`` / ``numpy.random``
  calls; randomness must come from a seeded ``random.Random`` instance.
* ``DET002`` — no wall-clock reads outside the budget/tracing whitelist;
  anything else breaks bit-identical checkpoint replay.
* ``DET003`` — no iteration over bare sets in routing/DME/detour/escape
  kernels; unordered iteration feeds nondeterministic tie-breaks.  The
  kernel core (``repro.routing.core``) is exempt: its set iterations
  feed only order-insensitive reductions.
* ``PERF001`` — no Point-keyed dict/set search state in kernel hot
  loops; per-visit tuple hashing is the overhead the flat cell-id core
  removes.
* ``ERR001`` — raises in flow-stage packages use the
  :class:`~repro.robustness.errors.PacorError` taxonomy.
* ``OBS001`` — every kernel named in the counter↔algorithm table of
  ``docs/paper_mapping.md`` increments its counters.
* ``CHK001`` — serialized dataclasses keep ``to_json``/``from_json`` in
  sync with their field list (static schema-drift detection).
* ``FLT001`` — every named injection point in
  :data:`repro.robustness.faults.INJECTION_POINTS` is exercised by at
  least one test (dead chaos coverage is untested failure handling).

Dataflow rules built on :class:`~repro.analysis.graph.ProjectGraph`:

* ``RACE001`` — mutable module-level state written on a path reachable
  from a worker/thread entry point (``service.workers.run_job``, any
  ``Thread``/``Process`` target), class-level mutable defaults in those
  modules, and :class:`~repro.service.jobs.JobStore` mutator calls
  outside the service's documented lock.
* ``SPAWN001`` — objects crossing the process boundary (job payloads,
  checkpoints, results) must be statically pickle-safe: no lambdas,
  ``Callable`` fields, file handles, threading primitives or ambient
  ``Tracer``/``Metrics`` references anywhere in their field graphs.
* ``PURE001`` — kernel-core functions (``repro.routing.core``) must not
  write object state through their parameters; all persistent mutation
  goes through the ``SearchSpace``/``Occupancy`` commit APIs defined in
  ``repro.routing.core.space`` (which is therefore exempt).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.lint.core import (
    FileRule,
    GraphRule,
    ParsedFile,
    ProjectRule,
    Violation,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.analysis.graph import FunctionInfo, ProjectGraph

# --------------------------------------------------------------------------
# Shared helpers


def _dotted(node: ast.AST) -> Optional[str]:
    """Return the dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _repro_package(parsed: ParsedFile) -> Optional[str]:
    """Return the top-level package under ``repro`` (``routing`` ...).

    Returns ``""`` for ``repro`` top-level modules (``cli`` ...) and
    None for files outside the ``repro`` namespace.
    """
    module = parsed.module
    if module == "repro":
        return ""
    prefix = "repro."
    idx = module.find(prefix)
    if idx == -1:
        return None
    rest = module[idx + len(prefix) :]
    return rest.split(".", 1)[0] if "." in rest else rest


# --------------------------------------------------------------------------
# DET001 — unseeded randomness


@register
class UnseededRandomRule(FileRule):
    """Flag shared-state ``random`` / ``numpy.random`` module calls."""

    id = "DET001"
    rationale = (
        "module-level random.*/numpy.random calls draw from shared global "
        "state; use a seeded random.Random instance so runs replay"
    )

    _ALLOWED_ATTRS = {"Random", "SystemRandom"}
    _ALLOWED_NUMPY = {"default_rng", "Generator", "RandomState", "SeedSequence"}

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per offending reference."""
        random_aliases: Set[str] = set()
        np_aliases: Set[str] = set()
        direct_names: Set[str] = set()
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or alias.name)
                    if alias.name == "numpy":
                        np_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in self._ALLOWED_ATTRS:
                            direct_names.add(alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or alias.name)
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Attribute):
                base = _dotted(node.value)
                if (
                    base in random_aliases
                    and node.attr not in self._ALLOWED_ATTRS
                ):
                    yield self._violation(parsed, node, f"random.{node.attr}")
                elif (
                    base is not None
                    and "." in base
                    and base.split(".")[0] in np_aliases
                    and base.split(".")[-1] == "random"
                    and node.attr not in self._ALLOWED_NUMPY
                ):
                    name = _dotted(node) or node.attr
                    yield self._violation(parsed, node, name)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in direct_names
                ):
                    yield self._violation(
                        parsed, node, f"random.{node.func.id}"
                    )

    def _violation(
        self, parsed: ParsedFile, node: ast.AST, name: str
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=parsed.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(
                f"{name} uses shared global RNG state; construct a seeded "
                f"random.Random(seed) and thread it through"
            ),
        )


# --------------------------------------------------------------------------
# DET002 — wall-clock reads outside the whitelist


@register
class WallClockRule(FileRule):
    """Flag wall-clock reads that would break checkpoint replay."""

    id = "DET002"
    rationale = (
        "wall-clock reads outside robustness.budget/observability.tracing "
        "feed nondeterminism into resumable runs"
    )

    # Modules allowed to read clocks: the budget (decision clock, threaded
    # explicitly), the tracer (measurement epoch) and the service daemon
    # (job timestamps, dispatch polling, HTTP timeouts — operational state
    # that never feeds a routing decision; the workers' routing runs stay
    # on Budget clocks).  time.perf_counter is deliberately NOT forbidden:
    # pure duration measurement never feeds routing decisions, while
    # time/monotonic/now-style absolute clocks can.
    _WHITELIST = {
        "repro.robustness.budget",
        "repro.observability.tracing",
        "repro.service",
        # The determinism sanitizer wraps the clock functions to police
        # *other* callers; it must name them to patch them.
        "repro.analysis.sanitize",
    }
    _FORBIDDEN = {
        "time.time",
        "time.monotonic",
        "time.monotonic_ns",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per forbidden clock reference."""
        module = parsed.module
        # An entry whitelists the module itself and (for packages like
        # repro.service) every submodule under it.
        if any(
            module.endswith(allowed) or f"{allowed}." in module
            for allowed in self._WHITELIST
        ):
            return
        direct: Set[str] = set()
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if f"time.{alias.name}" in self._FORBIDDEN:
                        direct.add(alias.asname or alias.name)
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
                if name in self._FORBIDDEN:
                    yield Violation(
                        rule=self.id,
                        path=parsed.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name} reads the wall clock; only "
                            f"robustness.budget and observability.tracing "
                            f"may (checkpoint replay must be bit-identical)"
                        ),
                    )
            elif isinstance(node, ast.Name) and node.id in direct:
                yield Violation(
                    rule=self.id,
                    path=parsed.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"time.{node.id} reads the wall clock; only "
                        f"robustness.budget and observability.tracing may "
                        f"(checkpoint replay must be bit-identical)"
                    ),
                )


# --------------------------------------------------------------------------
# DET003 — set iteration in kernels


_KERNEL_PACKAGES = {"routing", "dme", "detour", "escape"}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}

# The kernel core is exempt from DET003: its set iterations feed only
# order-insensitive reductions — bounding-box min/max over target cells
# and idempotent byte writes into the fused blocked-mask — so iteration
# order can never reach a tie-break.  The property tests in
# tests/routing/test_core.py pin that equivalence.
_DET003_EXEMPT = "repro.routing.core"


@register
class SetIterationRule(FileRule):
    """Flag iteration over bare sets in routing/DME/detour/escape kernels."""

    id = "DET003"
    rationale = (
        "set iteration order is arbitrary and feeds tie-breaks in routing/"
        "DME/detour kernels; iterate sorted(...) with an explicit key"
    )

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per set-valued iteration site."""
        if _repro_package(parsed) not in _KERNEL_PACKAGES:
            return
        module = parsed.module
        if module == _DET003_EXEMPT or module.startswith(_DET003_EXEMPT + "."):
            return
        for scope in ast.walk(parsed.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(parsed, scope)

    def _check_scope(
        self, parsed: ParsedFile, scope: ast.AST
    ) -> Iterator[Violation]:
        set_names, tainted = self._set_bindings(scope)
        set_names -= tainted

        def is_set_expr(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in (
                    "set",
                    "frozenset",
                ):
                    return True
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SET_METHODS
                    and is_set_expr(node.func.value)
                ):
                    return True
                return False
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                return is_set_expr(node.left) or is_set_expr(node.right)
            if isinstance(node, ast.Name):
                return node.id in set_names
            return False

        def visit(node: ast.AST, inner_scope: bool) -> Iterator[Violation]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not inner_scope:
                    # Nested defs get their own scope pass.
                    continue
                if isinstance(child, ast.For) and is_set_expr(child.iter):
                    yield self._violation(parsed, child.iter)
                if isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    for gen in child.generators:
                        if is_set_expr(gen.iter):
                            yield self._violation(parsed, gen.iter)
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in ("list", "tuple")
                    and len(child.args) == 1
                    and is_set_expr(child.args[0])
                ):
                    yield self._violation(parsed, child.args[0])
                yield from visit(child, inner_scope)
            return

        yield from visit(scope, inner_scope=False)

    def _set_bindings(self, scope: ast.AST) -> Tuple[Set[str], Set[str]]:
        """Return (names bound to sets, names also bound to non-sets)."""
        set_names: Set[str] = set()
        tainted: Set[str] = set()

        def literal_is_set(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                return node.func.id in ("set", "frozenset")
            return False

        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if literal_is_set(node.value):
                            set_names.add(target.id)
                        else:
                            tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ann = node.annotation
                base = ann.value if isinstance(ann, ast.Subscript) else ann
                name = _dotted(base)
                short = name.split(".")[-1] if name else ""
                if short in _SET_ANNOTATIONS:
                    set_names.add(node.target.id)
                elif node.value is not None and literal_is_set(node.value):
                    set_names.add(node.target.id)
                else:
                    tainted.add(node.target.id)
        return set_names, tainted

    def _violation(self, parsed: ParsedFile, node: ast.AST) -> Violation:
        return Violation(
            rule=self.id,
            path=parsed.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(
                "iterating a set in a kernel: ordering is arbitrary and "
                "feeds tie-breaks; iterate sorted(...) with a deterministic "
                "key instead"
            ),
        )


# --------------------------------------------------------------------------
# PERF001 — Point-keyed search state in kernel hot loops


_HOT_MARKERS = {"heappush", "heappop", "heappushpop", "popleft"}
_DICT_ANNOTATIONS = {
    "dict",
    "Dict",
    "DefaultDict",
    "defaultdict",
    "MutableMapping",
    "Counter",
    "OrderedDict",
}
_PERF_SET_ANNOTATIONS = _SET_ANNOTATIONS


@register
class PointKeyedHotStateRule(FileRule):
    """Flag Point-keyed dict/set search state in kernel hot loops.

    The kernel core (:mod:`repro.routing.core`) exists so the per-visit
    bookkeeping of search loops — frontier membership, parent maps, cost
    maps, blocked sets — runs on flat ``int`` cell ids instead of
    ``Point`` tuples.  A ``Dict`` keyed by ``Point`` (or a ``Set`` of
    ``Point``) declared inside a hot kernel function pays tuple hashing
    on every cell visit, which is exactly the overhead the core removed;
    this rule keeps it from creeping back.

    A function counts as *hot* when it contains a ``while`` loop or
    references heap/deque primitives (``heappush``, ``heappop``,
    ``popleft``) — the signature of a per-cell search loop.  Cold
    helpers and one-shot construction passes may keep Point-keyed maps;
    they are not flagged.
    """

    id = "PERF001"
    rationale = (
        "Point-keyed dict/set state in kernel hot loops re-hashes tuples "
        "per visited cell; key by flat grid.index cell ids "
        "(repro.routing.core) instead"
    )

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per Point-keyed hot-loop container."""
        if _repro_package(parsed) not in _KERNEL_PACKAGES:
            return
        for scope in ast.walk(parsed.tree):
            if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_hot(scope):
                yield from self._check_scope(parsed, scope)

    @staticmethod
    def _is_hot(scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.While):
                return True
            if isinstance(node, ast.Attribute) and node.attr in _HOT_MARKERS:
                return True
            if isinstance(node, ast.Name) and node.id in _HOT_MARKERS:
                return True
        return False

    def _check_scope(
        self, parsed: ParsedFile, scope: ast.AST
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs get their own hotness decision.
                continue
            if isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                kind = self._point_keyed_kind(child.annotation)
                if kind is not None:
                    yield Violation(
                        rule=self.id,
                        path=parsed.rel,
                        line=child.lineno,
                        col=child.col_offset,
                        message=(
                            f"{child.target.id!r} is a Point-keyed {kind} in "
                            f"a kernel hot loop; per-visit Point hashing is "
                            f"the overhead repro.routing.core removes — key "
                            f"by flat grid.index cell ids"
                        ),
                    )
            yield from self._check_scope(parsed, child)

    def _point_keyed_kind(self, ann: ast.AST) -> Optional[str]:
        """Return 'dict'/'set' when ``ann`` is a Point-keyed container."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if not isinstance(ann, ast.Subscript):
            return None
        short = (_dotted(ann.value) or "").split(".")[-1]
        if short in _DICT_ANNOTATIONS:
            sl = ann.slice
            key = sl.elts[0] if isinstance(sl, ast.Tuple) and sl.elts else sl
            return "dict" if self._mentions_point(key) else None
        if short in _PERF_SET_ANNOTATIONS:
            return "set" if self._mentions_point(ann.slice) else None
        return None

    @staticmethod
    def _mentions_point(node: ast.AST) -> bool:
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and n.id == "Point":
                return True
            if isinstance(n, ast.Attribute) and n.attr == "Point":
                return True
        return False


# --------------------------------------------------------------------------
# ERR001 — PacorError taxonomy


# Packages whose TypeError/ValueError raises are accepted as pure
# geometry/data-model argument validation (the issue's whitelist); flow
# stages (core, routing, dme, detour, escape, robustness, observability,
# cli) must use the taxonomy.
_VALIDATION_PACKAGES = {
    "geometry",
    "designs",
    "valves",
    "flowlayer",
    "flownet",
    "synthesis",
    "selection",
    "grid",
    "analysis",
    "viz",
}

# The canonical taxonomy (kept in sync by tests/analysis).
_TAXONOMY_NAMES = {
    "PacorError",
    "DesignFormatError",
    "CheckpointFormatError",
    "FaultFormatError",
    "ConfigError",
    "KernelPreconditionError",
    "FlowDecompositionError",
    "GenerationError",
    "TraceFormatError",
    "ServiceError",
    "JobFormatError",
    "StageFailure",
    "BudgetExceeded",
    "RouterStuck",
    "OccupancyCorruption",
    "FaultInjected",
}

_GLOBALLY_ALLOWED = {"NotImplementedError", "StopIteration", "KeyboardInterrupt"}
_VALIDATION_ALLOWED = {"ValueError", "TypeError"}


@register
class TaxonomyRaiseRule(FileRule):
    """Require PacorError subclasses for raises in flow-stage packages."""

    id = "ERR001"
    rationale = (
        "flow stages must raise PacorError subclasses so the stage "
        "supervisor can classify failures; bare builtins escape degradation"
    )

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per non-taxonomy raise."""
        package = _repro_package(parsed)
        if package is None:
            package = ""
        in_validation = package in _VALIDATION_PACKAGES
        allowed = set(_TAXONOMY_NAMES) | _GLOBALLY_ALLOWED
        allowed |= self._local_subclasses(parsed.tree, allowed)
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._exception_name(node.exc)
            if name is None:
                continue  # re-raise of a bound variable or factory call
            short = name.split(".")[-1]
            if short in allowed:
                continue
            if short in _VALIDATION_ALLOWED and in_validation:
                continue
            hint = (
                "KernelPreconditionError keeps except-ValueError callers "
                "working"
                if short in _VALIDATION_ALLOWED
                else "pick or add a PacorError subclass"
            )
            yield Violation(
                rule=self.id,
                path=parsed.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"raise {short} in flow-stage package "
                    f"{package or 'repro'!r}: use the PacorError taxonomy "
                    f"({hint})"
                ),
            )

    def _exception_name(self, exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted(exc)
        if name is None:
            return None
        short = name.split(".")[-1]
        # Only classify identifiers that look like exception classes; a
        # lowercase name is a bound exception variable or factory helper.
        if not short[:1].isupper():
            return None
        return name

    def _local_subclasses(
        self, tree: ast.Module, allowed: Set[str]
    ) -> Set[str]:
        """Return file-local classes whose base chain reaches the taxonomy."""
        classes: Dict[str, List[str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = [
                    (_dotted(b) or "").split(".")[-1] for b in node.bases
                ]
                classes[node.name] = [b for b in bases if b]
        local: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, bases in classes.items():
                if name in local:
                    continue
                if any(b in allowed or b in local for b in bases):
                    local.add(name)
                    changed = True
        return local


# --------------------------------------------------------------------------
# OBS001 — counter coverage of the paper-mapping table


_TABLE_HEADING = "Kernel counters"
_BACKTICK = re.compile(r"`([^`]+)`")


@register
class CounterCoverageRule(ProjectRule):
    """Check the counter↔algorithm table against actual instrumentation."""

    id = "OBS001"
    rationale = (
        "every kernel named in docs/paper_mapping.md's counter table must "
        "increment its Metrics counters, or effort profiles silently lie"
    )

    def check_project(
        self, files: Sequence[ParsedFile], root: Path
    ) -> Iterator[Violation]:
        """Yield one violation per missing counter or uninstrumented kernel."""
        doc_path = root / "docs" / "paper_mapping.md"
        rel_doc = "docs/paper_mapping.md"
        if not doc_path.is_file():
            yield Violation(
                rule=self.id,
                path=rel_doc,
                line=1,
                col=0,
                message="docs/paper_mapping.md not found; the counter "
                "table is the OBS001 contract",
            )
            return
        rows = self._table_rows(doc_path.read_text(encoding="utf-8"))
        if not rows:
            yield Violation(
                rule=self.id,
                path=rel_doc,
                line=1,
                col=0,
                message=f"no counter table under a {_TABLE_HEADING!r} "
                "heading in docs/paper_mapping.md",
            )
            return
        increments = self._counter_sites(files)
        for lineno, counters, refs in rows:
            for counter in counters:
                sites = increments.get(counter, [])
                if not sites:
                    yield Violation(
                        rule=self.id,
                        path=rel_doc,
                        line=lineno,
                        col=0,
                        message=(
                            f"counter {counter!r} is documented but never "
                            f"incremented under src/repro"
                        ),
                    )
            for ref in refs:
                if not self._ref_instrumented(ref, counters, files):
                    yield Violation(
                        rule=self.id,
                        path=rel_doc,
                        line=lineno,
                        col=0,
                        message=(
                            f"kernel {ref} is named in the counter table "
                            f"but contains no increment of {sorted(counters)}"
                        ),
                    )

    def _table_rows(
        self, text: str
    ) -> List[Tuple[int, Set[str], List[str]]]:
        rows: List[Tuple[int, Set[str], List[str]]] = []
        in_section = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.startswith("#"):
                in_section = _TABLE_HEADING in line
                continue
            if not in_section or not line.lstrip().startswith("|"):
                continue
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if not cells or set(cells[0]) <= {"-", " ", ":"}:
                continue
            counters = {
                tok
                for tok in _BACKTICK.findall(cells[0])
                if "." in tok and not tok.startswith("repro.")
            }
            if not counters:
                continue  # header row
            refs = [
                tok
                for cell in cells[1:]
                for tok in _BACKTICK.findall(cell)
                if tok.startswith("repro.")
            ]
            rows.append((lineno, counters, refs))
        return rows

    def _counter_sites(
        self, files: Sequence[ParsedFile]
    ) -> Dict[str, List[Tuple[str, int]]]:
        """Map counter name -> [(module, line)] of ``.counter("name")``."""
        out: Dict[str, List[Tuple[str, int]]] = {}
        for parsed in files:
            for node in ast.walk(parsed.tree):
                name = self._counter_name(node)
                if name is not None:
                    out.setdefault(name, []).append(
                        (parsed.module, node.lineno)
                    )
        return out

    @staticmethod
    def _counter_name(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("counter", "adopt")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return node.args[0].value
        return None

    def _ref_instrumented(
        self,
        ref: str,
        counters: Set[str],
        files: Sequence[ParsedFile],
    ) -> bool:
        """Return True when ``ref``'s scope increments one of ``counters``."""
        prefix, _, symbol = ref.rpartition(".")
        for parsed in files:
            scope: Optional[ast.AST] = None
            if parsed.module == ref:
                scope = parsed.tree
            elif prefix and (
                parsed.module == prefix
                # Re-export: `repro.flownet.MinCostFlow` is defined in
                # `repro.flownet.mincostflow`, a submodule of the prefix.
                or parsed.module.startswith(prefix + ".")
            ):
                for node in ast.walk(parsed.tree):
                    if (
                        isinstance(
                            node,
                            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                        )
                        and node.name == symbol
                    ):
                        scope = node
                        break
                if scope is None:
                    continue
            if scope is None:
                continue
            for node in ast.walk(scope):
                name = self._counter_name(node)
                if name in counters:
                    return True
        return False


# --------------------------------------------------------------------------
# CHK001 — serialized dataclass schema drift


@register
class SerializedDataclassRule(FileRule):
    """Check to_json/from_json field coverage of serialized dataclasses."""

    id = "CHK001"
    rationale = (
        "a dataclass field missing from to_json or from_json silently "
        "drops state across a checkpoint round-trip"
    )

    def check(self, parsed: ParsedFile) -> Iterator[Violation]:
        """Yield one violation per field missing from either path."""
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            to_json = methods.get("to_json")
            from_json = methods.get("from_json")
            if to_json is None or from_json is None:
                continue
            fields = self._field_names(node)
            for direction, method in (("to_json", to_json), ("from_json", from_json)):
                if self._covers_everything(method):
                    continue
                mentioned = self._mentioned_names(method)
                for name in fields:
                    if name not in mentioned:
                        yield Violation(
                            rule=self.id,
                            path=parsed.rel,
                            line=method.lineno,
                            col=method.col_offset,
                            message=(
                                f"dataclass {node.name}: field {name!r} "
                                f"does not appear in {direction}; schema "
                                f"drift would drop it on round-trip"
                            ),
                        )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name and name.split(".")[-1] == "dataclass":
                return True
        return False

    @staticmethod
    def _field_names(node: ast.ClassDef) -> List[str]:
        out: List[str] = []
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                ann = item.annotation
                base = ann.value if isinstance(ann, ast.Subscript) else ann
                name = _dotted(base) or ""
                if name.split(".")[-1] == "ClassVar":
                    continue
                out.append(item.target.id)
        return out

    @staticmethod
    def _covers_everything(method: ast.AST) -> bool:
        """Return True for asdict(self)/cls(**doc)-style full coverage."""
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                name = (_dotted(node.func) or "").split(".")[-1]
                if name == "asdict":
                    return True
                if any(kw.arg is None for kw in node.keywords):
                    return True
        return False

    @staticmethod
    def _mentioned_names(method: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                out.add(node.value)
            elif isinstance(node, ast.Attribute):
                out.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg:
                out.add(node.arg)
            elif isinstance(node, ast.Name):
                out.add(node.id)
        return out


# --------------------------------------------------------------------------
# FLT001 — chaos-suite injection-point coverage


@register
class InjectionCoverageRule(ProjectRule):
    """Check every declared injection point is exercised by a test."""

    id = "FLT001"
    rationale = (
        "an injection point nothing injects into is dead chaos coverage: "
        "the failure path it guards ships untested"
    )

    _FAULTS_MODULE = "repro.robustness.faults"

    def check_project(
        self, files: Sequence[ParsedFile], root: Path
    ) -> Iterator[Violation]:
        """Yield one violation per injection point no test mentions."""
        declared = self._declared_points(files)
        if declared is None:
            # The faults module is not part of this lint run (subset
            # invocation); there is no contract to check.
            return
        path, lineno, points = declared
        tests_dir = root / "tests"
        if not tests_dir.is_dir():
            yield Violation(
                rule=self.id,
                path=path,
                line=lineno,
                col=0,
                message="tests/ directory not found; injection points "
                "cannot be exercised",
            )
            return
        covered: Set[str] = set()
        for test_file in sorted(tests_dir.rglob("*.py")):
            try:
                text = test_file.read_text(encoding="utf-8")
            except OSError:
                continue
            for point in points:
                # A quoted mention is the coverage signal: every way a
                # test arms a point (FaultSpec(point=...), fires(...))
                # spells the name as a string literal.
                if f'"{point}"' in text or f"'{point}'" in text:
                    covered.add(point)
        for point in points:
            if point not in covered:
                yield Violation(
                    rule=self.id,
                    path=path,
                    line=lineno,
                    col=0,
                    message=(
                        f"injection point {point!r} is declared in "
                        f"INJECTION_POINTS but no test under tests/ "
                        f"exercises it"
                    ),
                )

    def _declared_points(
        self, files: Sequence[ParsedFile]
    ) -> Optional[Tuple[str, int, List[str]]]:
        """Return (path, line, names) of the INJECTION_POINTS tuple."""
        for parsed in files:
            if parsed.module != self._FAULTS_MODULE:
                continue
            for node in ast.walk(parsed.tree):
                if not isinstance(node, ast.Assign):
                    continue
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "INJECTION_POINTS" not in targets:
                    continue
                if not isinstance(node.value, (ast.Tuple, ast.List)):
                    continue
                names = [
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                ]
                return (parsed.path, node.lineno, names)
        return None


# --------------------------------------------------------------------------
# RACE001 — mutable shared state on worker/thread-reachable paths


#: Methods that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}

#: Class-attribute names that are conventionally write-once.
_CLASS_DEFAULT_EXEMPT = {"__slots__"}


@register
class SharedStateRaceRule(GraphRule):
    """Flag mutable shared state reachable from worker/thread entries.

    Entry points are :func:`repro.service.workers.run_job` plus every
    function the call graph sees handed to a ``Thread``/``Process``
    (the daemon's dispatcher loop, future shard workers).  Three shapes
    are flagged on reachable paths:

    * ``global X`` rebinding and in-place mutation of module-level
      mutable containers — shared across every thread of the process;
    * class-level mutable defaults in modules that host reachable code
      — shared across every instance;
    * :class:`~repro.service.jobs.JobStore` mutator calls
      (``save``/``allocate``/``append_event``) outside the owning
      service class's documented lock.  The lock analysis is lexical
      (``with self._lock:``) plus a fixed-point over the intra-class
      call graph, so a private helper only ever invoked under the lock
      — or only from ``__init__``, before any thread exists — passes.
    """

    id = "RACE001"
    rationale = (
        "mutable module/class state written on a worker- or thread-"
        "reachable path races once negotiation shards; make it worker-"
        "local or guard it with the documented lock"
    )

    _ENTRY_POINTS = ("repro.service.workers.run_job",)
    _STORE_CLASS = "repro.service.jobs.JobStore"
    _STORE_MUTATORS = {"save", "allocate", "append_event"}
    _SERVICE_PREFIX = "repro.service"

    def check_graph(
        self,
        graph: "ProjectGraph",
        files: Sequence[ParsedFile],
        root: Path,
    ) -> Iterator[Violation]:
        """Yield one violation per racy write or un-locked store call."""
        by_module = {parsed.module: parsed for parsed in files}
        entries = set(self._ENTRY_POINTS) | set(graph.thread_targets)
        reached = graph.reachable(entries)
        reached_modules: Set[str] = set()
        for qname in sorted(reached):
            info = graph.functions.get(qname)
            if info is None:
                continue
            parsed = by_module.get(info.module)
            if parsed is None:
                continue
            reached_modules.add(info.module)
            yield from self._check_writes(graph, parsed, info)
        for module in sorted(reached_modules):
            yield from self._check_class_defaults(by_module[module])
        yield from self._check_store_locking(graph, by_module)

    # -- module-global writes ---------------------------------------------

    def _check_writes(
        self,
        graph: "ProjectGraph",
        parsed: ParsedFile,
        info: "FunctionInfo",
    ) -> Iterator[Violation]:
        mutable = graph.modules[info.module].mutable_globals
        local = self._local_names(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                written = [
                    name
                    for name in node.names
                    if self._name_stored(info.node, name)
                ]
                for name in written:
                    yield Violation(
                        rule=self.id,
                        path=parsed.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"module global {name!r} is rebound in "
                            f"{info.qname} on a worker/thread-reachable "
                            f"path; shared interpreter state races across "
                            f"threads — thread it through explicitly"
                        ),
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = self._subscript_root(target)
                    if name and name in mutable and name not in local:
                        yield self._mutation(parsed, info, node, name)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mutable
                    and func.value.id not in local
                ):
                    yield self._mutation(parsed, info, node, func.value.id)

    def _mutation(
        self,
        parsed: ParsedFile,
        info: "FunctionInfo",
        node: ast.AST,
        name: str,
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=parsed.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(
                f"module-level mutable {name!r} is mutated in "
                f"{info.qname} on a worker/thread-reachable path; "
                f"unsynchronized shared containers race — make it "
                f"worker-local or guard it"
            ),
        )

    @staticmethod
    def _subscript_root(target: ast.AST) -> Optional[str]:
        """Return the root Name of a ``X[...]``(``.attr``) write target."""
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return None
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        return target.id if isinstance(target, ast.Name) else None

    @staticmethod
    def _name_stored(func: ast.AST, name: str) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                return True
        return False

    @staticmethod
    def _local_names(func: ast.AST) -> Set[str]:
        """Names bound locally in ``func`` (params and plain stores)."""
        out: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                out.add(arg.arg)
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                out.add(node.id)
        return out - declared_global

    # -- class-level mutable defaults -------------------------------------

    def _check_class_defaults(
        self, parsed: ParsedFile
    ) -> Iterator[Violation]:
        from repro.analysis.graph import ProjectGraph

        for node in parsed.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(item, ast.Assign):
                    names = [
                        t.id for t in item.targets if isinstance(t, ast.Name)
                    ]
                    value = item.value
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names = [item.target.id]
                    value = item.value
                else:
                    continue
                names = [
                    n for n in names if n not in _CLASS_DEFAULT_EXEMPT
                ]
                if not names or value is None:
                    continue
                if not ProjectGraph._is_mutable_literal(value):
                    continue
                for name in names:
                    yield Violation(
                        rule=self.id,
                        path=parsed.rel,
                        line=item.lineno,
                        col=item.col_offset,
                        message=(
                            f"class {node.name} default {name!r} is a "
                            f"mutable container shared by every instance "
                            f"on a worker/thread-reachable module; use an "
                            f"immutable default or per-instance init"
                        ),
                    )

    # -- JobStore access outside the documented lock ----------------------

    def _check_store_locking(
        self,
        graph: "ProjectGraph",
        by_module: Dict[str, ParsedFile],
    ) -> Iterator[Violation]:
        for cls_qname in sorted(graph.classes):
            info = graph.classes[cls_qname]
            if not (
                info.module == self._SERVICE_PREFIX
                or info.module.startswith(self._SERVICE_PREFIX + ".")
            ):
                continue
            parsed = by_module.get(info.module)
            if parsed is None:
                continue
            lock_attrs = self._lock_attrs(info.node)
            if not lock_attrs:
                continue
            attr_types = graph.self_attr_types(info.module, info)
            store_attrs = {
                attr
                for attr, typ in attr_types.items()
                if graph.canonical(typ) == self._STORE_CLASS
            }
            if not store_attrs:
                continue
            yield from self._check_lock_discipline(
                graph, parsed, info, lock_attrs, store_attrs
            )

    @staticmethod
    def _lock_attrs(cls_node: ast.ClassDef) -> Set[str]:
        """Attribute names bound to threading locks in ``__init__``."""
        out: Set[str] = set()
        for item in cls_node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__init__"
            ):
                for node in ast.walk(item):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Call)
                        and (_dotted(node.value.func) or "").split(".")[-1]
                        in ("Lock", "RLock")
                    ):
                        out.add(node.targets[0].attr)
        return out

    def _check_lock_discipline(
        self,
        graph: "ProjectGraph",
        parsed: ParsedFile,
        info: "ClassInfo",  # type: ignore[name-defined]  # noqa: F821
        lock_attrs: Set[str],
        store_attrs: Set[str],
    ) -> Iterator[Violation]:
        methods = {
            f.name: f
            for f in graph.functions.values()
            if f.cls == info.qname
        }
        # Per method: store-mutator sites and intra-class call sites,
        # each annotated with "lexically inside `with self.<lock>`".
        mutator_sites: Dict[str, List[Tuple[ast.Call, bool]]] = {}
        call_sites: Dict[str, List[Tuple[str, bool]]] = {}
        for name, func in methods.items():
            locked_nodes = self._nodes_under_lock(func.node, lock_attrs)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                f = node.func
                if not isinstance(f, ast.Attribute):
                    continue
                receiver = f.value
                if (
                    f.attr in self._STORE_MUTATORS
                    and isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                    and receiver.attr in store_attrs
                ):
                    mutator_sites.setdefault(name, []).append(
                        (node, id(node) in locked_nodes)
                    )
                elif (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and f.attr in methods
                ):
                    call_sites.setdefault(f.attr, []).append(
                        (name, id(node) in locked_nodes)
                    )
        # Fixed point: a method "runs under the lock" when every caller
        # either holds it lexically at the call site, is __init__ (no
        # threads yet), or itself runs under the lock.
        held = {
            name
            for name, func in methods.items()
            if name.startswith("_")
            and name != "__init__"
            and call_sites.get(name)
            and func.qname not in graph.thread_targets
        }
        changed = True
        while changed:
            changed = False
            for name in sorted(held):
                ok = all(
                    under or caller == "__init__" or caller in held
                    for caller, under in call_sites.get(name, ())
                )
                if not ok:
                    held.discard(name)
                    changed = True
        for name in sorted(mutator_sites):
            if name == "__init__" or name in held:
                continue
            for node, under in mutator_sites[name]:
                if under:
                    continue
                yield Violation(
                    rule=self.id,
                    path=parsed.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"JobStore.{node.func.attr} called in "  # type: ignore[attr-defined]
                        f"{info.qname}.{name} outside the documented "
                        f"lock; record writes race the dispatcher — wrap "
                        f"the call in `with self.{sorted(lock_attrs)[0]}:`"
                    ),
                )

    @staticmethod
    def _nodes_under_lock(
        func: ast.AST, lock_attrs: Set[str]
    ) -> Set[int]:
        """Return ids of nodes lexically inside ``with self.<lock>:``."""
        out: Set[int] = set()

        def locked_with(node: ast.With) -> bool:
            for item in node.items:
                dotted = _dotted(item.context_expr)
                if dotted and dotted in {
                    f"self.{attr}" for attr in lock_attrs
                }:
                    return True
            return False

        def visit(node: ast.AST, locked: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_locked = locked or (
                    isinstance(child, ast.With) and locked_with(child)
                )
                if child_locked:
                    out.add(id(child))
                    for sub in ast.walk(child):
                        out.add(id(sub))
                    continue
                visit(child, child_locked)

        visit(func, False)
        return out


# --------------------------------------------------------------------------
# SPAWN001 — pickle safety of process-boundary payloads


#: Generic containers whose type arguments are traversed.
_SPAWN_CONTAINERS = {
    "Optional",
    "Union",
    "List",
    "Sequence",
    "Tuple",
    "Dict",
    "Mapping",
    "MutableMapping",
    "Set",
    "FrozenSet",
    "Iterable",
    "list",
    "tuple",
    "dict",
    "set",
    "frozenset",
}

#: Leaf type names that never survive (or should never cross) pickling
#: to a spawn child, grouped by diagnostic.
_SPAWN_IO_TYPES = {
    "IO",
    "TextIO",
    "BinaryIO",
    "TextIOWrapper",
    "BufferedReader",
    "BufferedWriter",
    "FileIO",
}
_SPAWN_THREADING_TYPES = {
    "Lock",
    "RLock",
    "Thread",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}
_SPAWN_AMBIENT_PREFIX = "repro.observability."


@register
class SpawnSafetyRule(GraphRule):
    """Statically vet the field graphs of process-boundary payloads.

    The roster mirrors ``tests/service/test_spawn_pickle.py`` — the
    objects the service actually ships across ``multiprocessing``
    boundaries (job payloads, checkpoints, results).  Every annotated
    field — dataclass fields, ``self.x: T`` annotations, and ``self.x =
    param`` constructor captures — is traversed recursively through
    container generics and nested project classes, and flagged when it
    can hold a lambda, an arbitrary ``Callable``, an open file handle,
    a threading primitive, or an ambient observability object
    (``Tracer``/``Metrics``/``Span``/``Counter``): those either fail to
    pickle outright or silently detach from the parent's registries in
    the child.
    """

    id = "SPAWN001"
    rationale = (
        "process-boundary payloads must pickle under spawn: no lambdas, "
        "Callable fields, file handles, threading primitives or ambient "
        "Tracer/Metrics references in their field graphs"
    )

    _ROSTER = (
        "repro.core.config.PacorConfig",
        "repro.core.result.PacorResult",
        "repro.designs.design.Design",
        "repro.robustness.budget.Budget",
        "repro.robustness.checkpoint.Checkpoint",
        "repro.robustness.faultmap.FaultMap",
        "repro.service.jobs.JobRecord",
    )

    def check_graph(
        self,
        graph: "ProjectGraph",
        files: Sequence[ParsedFile],
        root: Path,
    ) -> Iterator[Violation]:
        """Yield one violation per pickle-unsafe field."""
        by_module = {parsed.module: parsed for parsed in files}
        visited: Set[str] = set()
        for qname in self._ROSTER:
            yield from self._check_class(graph, by_module, qname, visited)

    def _check_class(
        self,
        graph: "ProjectGraph",
        by_module: Dict[str, ParsedFile],
        qname: str,
        visited: Set[str],
    ) -> Iterator[Violation]:
        qname = graph.canonical(qname)
        if qname in visited or qname not in graph.classes:
            return
        visited.add(qname)
        info = graph.classes[qname]
        parsed = by_module.get(info.module)
        if parsed is None:
            return
        for name, ann, value, lineno in self._fields(graph, info):
            if isinstance(value, ast.Lambda):
                yield Violation(
                    rule=self.id,
                    path=parsed.rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"{qname}.{name} holds a lambda; lambdas do not "
                        f"pickle under spawn — use a module-level function"
                    ),
                )
            if ann is None:
                continue
            for leaf in self._leaf_types(ann):
                offense = self._classify(graph, info.module, leaf)
                if offense is not None:
                    yield Violation(
                        rule=self.id,
                        path=parsed.rel,
                        line=lineno,
                        col=0,
                        message=(
                            f"{qname}.{name} is typed {leaf}: {offense}"
                        ),
                    )
                    continue
                resolved = graph.resolve(info.module, leaf)
                if resolved in graph.classes and resolved not in visited:
                    yield from self._check_class(
                        graph, by_module, resolved, visited
                    )

    def _fields(
        self, graph: "ProjectGraph", info: "ClassInfo"  # type: ignore[name-defined]  # noqa: F821
    ) -> Iterator[Tuple[str, Optional[ast.AST], Optional[ast.AST], int]]:
        """Yield (name, annotation, default/assigned value, line)."""
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                ann = item.annotation
                base = ann.value if isinstance(ann, ast.Subscript) else ann
                if (_dotted(base) or "").split(".")[-1] == "ClassVar":
                    continue
                yield item.target.id, ann, item.value, item.lineno
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        yield target.id, None, item.value, item.lineno
        init = graph.functions.get(f"{info.qname}.__init__")
        if init is None:
            return
        param_anns: Dict[str, ast.AST] = {}
        param_defaults: Dict[str, ast.AST] = {}
        args = init.node.args  # type: ignore[attr-defined]
        positional = [*args.posonlyargs, *args.args]
        for arg in positional:
            if arg.annotation is not None:
                param_anns[arg.arg] = arg.annotation
        for arg, default in zip(
            positional[len(positional) - len(args.defaults) :], args.defaults
        ):
            param_defaults[arg.arg] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.annotation is not None:
                param_anns[arg.arg] = arg.annotation
            if default is not None:
                param_defaults[arg.arg] = default
        for node in ast.walk(init.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            ann: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, ann = node.target, node.value, node.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            lineno = getattr(node, "lineno", 1)
            if isinstance(value, ast.Name) and value.id in param_anns:
                yield (
                    target.attr,
                    param_anns[value.id],
                    param_defaults.get(value.id),
                    lineno,
                )
            elif ann is not None or isinstance(value, ast.Lambda):
                yield target.attr, ann, value, lineno
            elif value is not None:
                # `self.x = x if x is not None else Default()` still
                # captures the parameter: type it by that parameter.
                captured = next(
                    (
                        n.id
                        for n in ast.walk(value)
                        if isinstance(n, ast.Name) and n.id in param_anns
                    ),
                    None,
                )
                if captured is not None:
                    yield (
                        target.attr,
                        param_anns[captured],
                        param_defaults.get(captured),
                        lineno,
                    )

    def _leaf_types(self, ann: ast.AST) -> Iterator[str]:
        """Yield dotted leaf type names of an annotation tree."""
        if isinstance(ann, ast.Constant):
            if isinstance(ann.value, str):
                try:
                    yield from self._leaf_types(
                        ast.parse(ann.value, mode="eval").body
                    )
                except SyntaxError:
                    return
            return
        if isinstance(ann, ast.Subscript):
            outer = (_dotted(ann.value) or "").split(".")[-1]
            if outer in _SPAWN_CONTAINERS:
                sl = ann.slice
                elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
                for elt in elts:
                    yield from self._leaf_types(elt)
            else:
                # Callable[...], Type[...] and friends classify by the
                # outer name itself.
                dotted = _dotted(ann.value)
                if dotted is not None:
                    yield dotted
            return
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            yield from self._leaf_types(ann.left)
            yield from self._leaf_types(ann.right)
            return
        dotted = _dotted(ann)
        if dotted is not None:
            yield dotted

    def _classify(
        self, graph: "ProjectGraph", module: str, leaf: str
    ) -> Optional[str]:
        """Return the diagnostic for a forbidden leaf type, or None."""
        short = leaf.split(".")[-1]
        if short == "Callable":
            return (
                "an arbitrary callable only pickles when it is a "
                "module-level function; lambdas and bound methods break "
                "spawn workers"
            )
        if short in _SPAWN_IO_TYPES:
            return "open file handles cannot cross the process boundary"
        resolved = graph.resolve(module, leaf)
        if resolved is not None and resolved.startswith(
            _SPAWN_AMBIENT_PREFIX
        ):
            return (
                "ambient observability objects detach from the parent's "
                "registries in the child; attach tracers/metrics after "
                "spawn instead"
            )
        if short in _SPAWN_THREADING_TYPES:
            bindings = graph.modules.get(module)
            head = leaf.split(".")[0]
            bound = (
                bindings.bindings.get(head, head) if bindings else head
            )
            if bound.startswith("threading") or short in ("Lock", "RLock"):
                return "threading primitives cannot be pickled"
        return None


# --------------------------------------------------------------------------
# PURE001 — kernel-core purity outside the commit APIs


#: The module that *implements* the commit APIs (SearchSpace adoption,
#: SpaceCache patching, Occupancy bridging) and is therefore exempt.
_PURE_EXEMPT_MODULE = "repro.routing.core.space"
_PURE_SCOPE = "repro.routing.core"


@register
class KernelPurityRule(GraphRule):
    """Forbid kernel-core writes to object state outside commit APIs.

    The wave/scalar engines receive their ``SearchSpace`` (and scratch
    arrays) as parameters.  Writing *attributes* of a parameter —
    ``space.blocked[...] = 1``, ``occ._owner[...] = net`` — mutates
    persistent objects behind the back of the dirty-set bookkeeping
    that :class:`~repro.routing.core.space.SpaceCache` relies on; the
    sanctioned path is the ``SearchSpace``/``Occupancy`` commit APIs in
    ``repro.routing.core.space`` (exempt from this rule).  Bare
    subscript writes into array *parameters* (``dist[v] = d``) stay
    legal: those are caller-allocated scratch buffers local to one
    kernel invocation.  ``global``/``nonlocal`` rebinding is forbidden
    outright; module-level memo caches are RACE001's concern.
    """

    id = "PURE001"
    rationale = (
        "kernel-core functions must not write object state through "
        "their parameters; route mutations through the SearchSpace/"
        "Occupancy commit APIs so SpaceCache invalidation stays sound"
    )

    def check_graph(
        self,
        graph: "ProjectGraph",
        files: Sequence[ParsedFile],
        root: Path,
    ) -> Iterator[Violation]:
        """Yield one violation per out-of-API state write."""
        by_module = {parsed.module: parsed for parsed in files}
        for info in graph.functions_in(_PURE_SCOPE):
            if info.module == _PURE_EXEMPT_MODULE or info.module.startswith(
                _PURE_EXEMPT_MODULE + "."
            ):
                continue
            parsed = by_module.get(info.module)
            if parsed is None:
                continue
            yield from self._check_function(parsed, info)

    def _check_function(
        self, parsed: ParsedFile, info: "FunctionInfo"
    ) -> Iterator[Violation]:
        params = self._param_names(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params |= self._param_names(node)
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = (
                    "global" if isinstance(node, ast.Global) else "nonlocal"
                )
                yield Violation(
                    rule=self.id,
                    path=parsed.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{info.qname} rebinds {kind} state "
                        f"({', '.join(node.names)}); kernel-core "
                        f"functions must stay pure outside the commit "
                        f"APIs"
                    ),
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    hit = self._param_attribute_write(target, params)
                    if hit is not None:
                        root_name, attr = hit
                        yield Violation(
                            rule=self.id,
                            path=parsed.rel,
                            line=target.lineno,
                            col=target.col_offset,
                            message=(
                                f"{info.qname} writes "
                                f"{root_name}.{attr} through a "
                                f"parameter, bypassing the SearchSpace/"
                                f"Occupancy commit APIs; SpaceCache "
                                f"dirty-set bookkeeping cannot see this "
                                f"write"
                            ),
                        )

    @staticmethod
    def _param_names(func: ast.AST) -> Set[str]:
        args = getattr(func, "args", None)
        if args is None:
            return set()
        names = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        return names - {"self", "cls"}

    @staticmethod
    def _param_attribute_write(
        target: ast.AST, params: Set[str]
    ) -> Optional[Tuple[str, str]]:
        """Return (param, attr) when ``target`` writes ``param.attr...``."""
        attr: Optional[str] = None
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute):
                attr = node.attr
            node = node.value
        if (
            attr is not None
            and isinstance(node, ast.Name)
            and node.id in params
        ):
            return node.id, attr
        return None
