"""pacorlint — AST-based invariant checker for the PACOR flow.

Run it as ``python -m repro.analysis src/repro`` or ``pacor lint``; see
``docs/static_analysis.md`` for the rule catalogue and suppression
syntax, and :mod:`repro.analysis.lint.core` for the framework.
"""

from repro.analysis.lint.core import (
    Baseline,
    BaselineEntry,
    FileRule,
    GraphRule,
    LintResult,
    ParsedFile,
    ProjectRule,
    Rule,
    Suppressions,
    Violation,
    collect_files,
    find_baseline,
    parse_suppressions,
    register,
    registered_rules,
    run_lint,
)
from repro.analysis.lint.reporters import (
    render_human,
    render_json,
    render_rule_list,
)
from repro.analysis.lint.runner import main

__all__ = [
    "Rule",
    "FileRule",
    "ProjectRule",
    "GraphRule",
    "Baseline",
    "BaselineEntry",
    "find_baseline",
    "Violation",
    "Suppressions",
    "ParsedFile",
    "LintResult",
    "register",
    "registered_rules",
    "parse_suppressions",
    "collect_files",
    "run_lint",
    "render_human",
    "render_json",
    "render_rule_list",
    "main",
]
