"""First-order pressure-propagation delay model.

The length-matching constraint exists because pressure propagates slowly
through PDMS control channels (Section 1 of the paper, citing Lim et
al.); valves sharing a pin actuate when the pressure front arrives, so
channel-length mismatch translates directly into *switching skew*.

This module provides a first-order delay model to quantify that skew on
routed solutions.  Channel pressurisation behaves like charging a
distributed fluidic RC line: for a uniform channel the fill time grows
super-linearly with length.  We model

    delay(L) = tau0 * L ** alpha

with ``alpha = 2`` (diffusive RC limit) by default and ``alpha = 1``
available as the lumped/wave limit.  The absolute constant ``tau0``
only scales results; the *skew ratios* between matched and unmatched
clusters are what the model is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.verify import network_lengths
from repro.core.result import PacorResult
from repro.designs.design import Design


@dataclass(frozen=True)
class DelayModel:
    """Pressure-front arrival-time model for control channels.

    Attributes:
        tau0: seconds per (grid unit)**alpha; default 1e-4 s (0.1 ms per
            unit in the linear limit) — representative of mm-scale PDMS
            channels, but only ratios are meaningful.
        alpha: length exponent; 2.0 = diffusive RC line, 1.0 = lumped.
    """

    tau0: float = 1e-4
    alpha: float = 2.0

    def delay(self, length: int) -> float:
        """Return the front arrival time over ``length`` grid units."""
        if length < 0:
            raise ValueError("channel length must be non-negative")
        return self.tau0 * (length ** self.alpha)


@dataclass
class ClusterSkew:
    """Switching-skew report for one multi-valve net.

    Attributes:
        net_id: the net.
        arrival: per valve id, the modelled pressure arrival time (s).
        skew: max-min arrival spread (s) — the synchronisation error.
        matched: the router's matched flag for the net.
    """

    net_id: int
    arrival: Dict[int, float]
    skew: float
    matched: Optional[bool]


def cluster_skews(
    design: Design,
    result: PacorResult,
    model: Optional[DelayModel] = None,
) -> List[ClusterSkew]:
    """Return the modelled switching skew of every routed multi-valve net.

    Channel lengths are measured as network distance through the drawn
    segments (the verifier's physical metric), then mapped through the
    delay model.
    """
    model = model or DelayModel()
    by_id = design.valve_by_id()
    out: List[ClusterSkew] = []
    for net in result.nets:
        if not net.routed or net.pin is None or len(net.valve_ids) < 2:
            continue
        valves = [by_id[v] for v in net.valve_ids]
        lengths = network_lengths(
            net.segments, net.pin, [v.position for v in valves]
        )
        arrival = {}
        for valve in valves:
            distance = lengths[valve.position]
            if distance is None:
                continue
            arrival[valve.id] = model.delay(distance)
        if len(arrival) < 2:
            continue
        values = list(arrival.values())
        out.append(
            ClusterSkew(
                net_id=net.net_id,
                arrival=arrival,
                skew=max(values) - min(values),
                matched=net.matched,
            )
        )
    return out


def worst_skew(
    design: Design,
    result: PacorResult,
    model: Optional[DelayModel] = None,
    *,
    matched_only: bool = False,
) -> float:
    """Return the worst modelled switching skew over the result's nets."""
    skews = cluster_skews(design, result, model)
    if matched_only:
        skews = [s for s in skews if s.matched]
    return max((s.skew for s in skews), default=0.0)
