"""``python -m repro.analysis`` runs pacorlint (see docs/static_analysis.md)."""

import sys

from repro.analysis.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
