"""Project-level program graphs for pacorlint dataflow rules.

The per-file rules in :mod:`repro.analysis.lint.rules` see one module at
a time, which is enough for local invariants (seeded RNGs, taxonomy
raises) but blind to the properties the service era actually risks:
*which code runs on a worker or dispatcher thread*, *which objects cross
the process boundary*, and *which kernel function writes shared state*.
Those are reachability questions over the whole of ``src/repro``.

:class:`ProjectGraph` answers them.  It is built once per lint run from
the already-parsed :class:`~repro.analysis.lint.core.ParsedFile` list
and offers three views:

* an **import graph** — per-module binding tables mapping local names to
  fully-qualified targets, with ``from X import Y`` re-exports recorded
  as aliases so names resolve through package ``__init__`` façades;
* a **symbol table** — every module-level function, class and method
  under a stable qualified name (``repro.service.jobs.JobStore.save``);
* a **call graph** — edges resolved through the binding tables, local
  variable types (constructor calls and annotations), parameter
  annotations and ``self`` attribute types inferred from ``__init__``.
  Functions passed as arguments (``Thread(target=self._loop)``,
  tracer listeners) also become edges, so callback-driven control flow
  stays reachable.

The resolution is deliberately *conservative-by-omission*: an edge is
added only when the callee resolves to a known symbol.  Dynamic dispatch
the analysis cannot see simply produces no edge — rules built on top
(RACE001/SPAWN001/PURE001) are tuned so that missing edges cost recall,
never precision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import ParsedFile

#: Mutable-container constructors whose module-level bindings count as
#: shared mutable state (see :meth:`ModuleInfo.mutable_globals`).
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}

#: Names that are never class references even when they resolve.
_BUILTIN_NAMES = {
    "len", "range", "sorted", "enumerate", "zip", "min", "max", "sum",
    "abs", "print", "isinstance", "issubclass", "getattr", "setattr",
    "hasattr", "repr", "str", "int", "float", "bool", "tuple", "list",
    "dict", "set", "frozenset", "open", "iter", "next", "super", "type",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """Return the dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One module-level function or method in the symbol table."""

    qname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qname for methods

    @property
    def name(self) -> str:
        """Return the unqualified function name."""
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition in the symbol table."""

    qname: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # resolved qnames


@dataclass
class ModuleInfo:
    """One parsed module with its name-binding table."""

    name: str
    parsed: ParsedFile
    #: local name -> fully-qualified target (import bindings).
    bindings: Dict[str, str] = field(default_factory=dict)
    #: module-global name -> definition line, for names bound to mutable
    #: containers at module level.
    mutable_globals: Dict[str, int] = field(default_factory=dict)


class ProjectGraph:
    """Import graph + symbol table + call graph over parsed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qname -> callee qnames.
        self.calls: Dict[str, Set[str]] = {}
        #: ``from X import Y`` re-exports: "mod.Y" -> "X.Y".
        self.aliases: Dict[str, str] = {}
        #: functions passed as Thread/Process ``target=``.
        self.thread_targets: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def build(cls, files: Sequence[ParsedFile]) -> "ProjectGraph":
        """Build the graph over ``files`` (one pass symbols, one calls)."""
        graph = cls()
        for parsed in files:
            graph._index_module(parsed)
        for parsed in files:
            graph._resolve_bases(parsed)
        for parsed in files:
            graph._index_calls(parsed)
        return graph

    def _resolve_bases(self, parsed: ParsedFile) -> None:
        """Resolve base-class names of every class in ``parsed``.

        Runs as its own pass so inherited-method resolution works no
        matter which module the call graph visits first.
        """
        module = parsed.module
        for node in parsed.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = self.classes[f"{module}.{node.name}"]
            info.bases = [
                resolved
                for base in node.bases
                if (name := _dotted(base)) is not None
                and (resolved := self.resolve(module, name)) is not None
                and resolved in self.classes
            ]

    def _index_module(self, parsed: ParsedFile) -> None:
        """Record bindings, symbols and mutable globals of one module."""
        mod = ModuleInfo(name=parsed.module, parsed=parsed)
        self.modules[parsed.module] = mod
        package = self._package_of(parsed)
        for node in parsed.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    mod.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(package, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    mod.bindings[local] = target
                    self.aliases[f"{parsed.module}.{local}"] = target
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{parsed.module}.{node.name}"
                self.functions[qname] = FunctionInfo(
                    qname=qname, module=parsed.module, node=node
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(parsed.module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._index_global(mod, node)

    def _index_class(self, module: str, node: ast.ClassDef) -> None:
        qname = f"{module}.{node.name}"
        info = ClassInfo(qname=qname, module=module, node=node)
        self.classes[qname] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mq = f"{qname}.{item.name}"
                self.functions[mq] = FunctionInfo(
                    qname=mq, module=module, node=item, cls=qname
                )

    def _index_global(
        self, mod: ModuleInfo, node: ast.AST
    ) -> None:
        """Record module-level names bound to mutable containers."""
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target]
            value = node.value
        else:
            return
        if value is None or not self._is_mutable_literal(value):
            return
        for target in targets:
            mod.mutable_globals[target.id] = node.lineno

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        """Return True for dict/list/set literals and their constructors."""
        if isinstance(
            node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp,
                   ast.DictComp)
        ):
            return True
        if isinstance(node, ast.Call):
            name = (_dotted(node.func) or "").split(".")[-1]
            return name in _MUTABLE_FACTORIES
        return False

    @staticmethod
    def _package_of(parsed: ParsedFile) -> str:
        """Return the package a module's relative imports resolve against."""
        module = parsed.module
        if parsed.rel.endswith("__init__.py"):
            return module
        return module.rsplit(".", 1)[0] if "." in module else ""

    @staticmethod
    def _import_base(package: str, node: ast.ImportFrom) -> Optional[str]:
        """Return the absolute module an ImportFrom pulls names from."""
        if node.level == 0:
            return node.module or ""
        parts = package.split(".") if package else []
        up = node.level - 1
        if up > len(parts):
            return None
        base_parts = parts[: len(parts) - up] if up else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    # ------------------------------------------------------------------
    # Resolution

    def canonical(self, qname: str) -> str:
        """Follow re-export aliases to the defining module's qname."""
        seen: Set[str] = set()
        while qname in self.aliases and qname not in seen:
            seen.add(qname)
            qname = self.aliases[qname]
        return qname

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted reference used inside ``module``.

        Returns the canonical qualified name when it lands on a known
        function, class or module; None otherwise.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in mod.bindings:
            target = mod.bindings[head]
            candidate = f"{target}.{rest}" if rest else target
        else:
            candidate = f"{module}.{dotted}"
        candidate = self.canonical(candidate)
        if (
            candidate in self.functions
            or candidate in self.classes
            or candidate in self.modules
        ):
            return candidate
        # One more hop for attribute access through a re-exported module
        # binding (``core.astar_search`` where core/__init__ re-exports).
        prefix, _, leaf = candidate.rpartition(".")
        if prefix:
            rebased = self.canonical(f"{prefix}.{leaf}")
            if rebased in self.functions or rebased in self.classes:
                return rebased
        return None

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on ``class_qname``, walking base classes."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            cls = stack.pop()
            if cls in seen:
                continue
            seen.add(cls)
            qname = f"{cls}.{method}"
            if qname in self.functions:
                return qname
            info = self.classes.get(cls)
            if info is not None:
                stack.extend(info.bases)
        return None

    # ------------------------------------------------------------------
    # Call extraction

    def _index_calls(self, parsed: ParsedFile) -> None:
        """Add call edges for every function defined in ``parsed``."""
        module = parsed.module
        for node in parsed.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(module, None, node)
            elif isinstance(node, ast.ClassDef):
                info = self.classes[f"{module}.{node.name}"]
                attr_types = self.self_attr_types(module, info)
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scan_function(
                            module, info, item, attr_types=attr_types
                        )

    def self_attr_types(
        self, module: str, info: ClassInfo
    ) -> Dict[str, str]:
        """Infer ``self.x`` attribute types from ``__init__`` and the body.

        Sources, in increasing precedence: class-body annotations
        (dataclass fields), ``self.x: T`` annotations, and
        ``self.x = ClassName(...)`` constructor assignments.
        """
        types: Dict[str, str] = {}
        for item in info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                resolved = self._annotation_class(module, item.annotation)
                if resolved is not None:
                    types[item.target.id] = resolved
        init = self.functions.get(f"{info.qname}.__init__")
        if init is None:
            return types
        params = self._param_types(module, init.node)
        for node in ast.walk(init.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if isinstance(target, ast.Attribute):
                    resolved = self._annotation_class(module, node.annotation)
                    if (
                        resolved is not None
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        types[target.attr] = resolved
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
                or value is None
            ):
                continue
            inferred = self._value_class(module, value, params)
            if inferred is not None:
                types[target.attr] = inferred
        return types

    def _param_types(self, module: str, func: ast.AST) -> Dict[str, str]:
        """Map parameter names to resolved class qnames (annotations)."""
        out: Dict[str, str] = {}
        args = getattr(func, "args", None)
        if args is None:
            return out
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                resolved = self._annotation_class(module, arg.annotation)
                if resolved is not None:
                    out[arg.arg] = resolved
        return out

    def _annotation_class(
        self, module: str, ann: ast.AST
    ) -> Optional[str]:
        """Resolve a (possibly Optional-wrapped) annotation to a class."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            outer = (_dotted(ann.value) or "").split(".")[-1]
            if outer == "Optional":
                return self._annotation_class(module, ann.slice)
            return None
        name = _dotted(ann)
        if name is None:
            return None
        resolved = self.resolve(module, name)
        return resolved if resolved in self.classes else None

    def _value_class(
        self,
        module: str,
        value: ast.AST,
        params: Dict[str, str],
    ) -> Optional[str]:
        """Infer the class of an assigned value (ctor call or parameter)."""
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                resolved = self.resolve(module, name)
                if resolved in self.classes:
                    return resolved
        elif isinstance(value, ast.Name):
            return params.get(value.id)
        return None

    def _scan_function(
        self,
        module: str,
        cls: Optional[ClassInfo],
        func: ast.AST,
        attr_types: Optional[Dict[str, str]] = None,
    ) -> None:
        """Record call edges of one function (including nested defs).

        Nested functions and lambdas are attributed to the enclosing
        function: they are closures the function wires up (callbacks,
        signal handlers), so anything they touch is reachable once the
        enclosing function ran.
        """
        qname = (
            f"{cls.qname}.{func.name}"  # type: ignore[attr-defined]
            if cls is not None
            else f"{module}.{func.name}"  # type: ignore[attr-defined]
        )
        edges = self.calls.setdefault(qname, set())
        local_types = dict(self._param_types(module, func))
        attr_types = attr_types or {}
        # First pass: local variable types from ctor calls / annotations.
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._value_class(
                        module, node.value, local_types
                    )
                    if inferred is not None:
                        local_types[target.id] = inferred
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = self._annotation_class(module, node.annotation)
                if resolved is not None:
                    local_types[node.target.id] = resolved
        # Second pass: resolve call sites, plus *references* to known
        # functions anywhere in the body — dispatch tables
        # (``{"escape": self._stage_escape}``), callbacks and thread
        # targets all reach their function without a direct call.
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = self._resolve_call(
                    module, cls, node.func, local_types, attr_types
                )
                if callee is not None:
                    edges.add(callee)
                if self._is_spawn_call(node):
                    for value in [
                        *node.args,
                        *[kw.value for kw in node.keywords],
                    ]:
                        ref = self._resolve_reference(
                            module, cls, value, local_types, attr_types
                        )
                        if ref is not None:
                            edges.add(ref)
                            self.thread_targets.add(ref)
            elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                ref = self._resolve_reference(
                    module, cls, node, local_types, attr_types
                )
                if ref is not None:
                    edges.add(ref)

    @staticmethod
    def _is_spawn_call(node: ast.Call) -> bool:
        """Return True for Thread(...)/Process(...) constructions."""
        name = (_dotted(node.func) or "").split(".")[-1]
        return name in ("Thread", "Process", "Timer")

    def _resolve_call(
        self,
        module: str,
        cls: Optional[ClassInfo],
        func: ast.AST,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
    ) -> Optional[str]:
        """Resolve a call target to a function qname, or None."""
        if isinstance(func, ast.Name):
            if func.id in _BUILTIN_NAMES:
                return None
            resolved = self.resolve(module, func.id)
            if resolved in self.functions:
                return resolved
            if resolved in self.classes:
                ctor = self.resolve_method(resolved, "__init__")
                return ctor or resolved
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method(...) / cls attribute dispatch.
        if (
            cls is not None
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            return self.resolve_method(cls.qname, func.attr)
        # self.attr.method(...) via inferred attribute types.
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            owner = attr_types.get(func.value.attr)
            if owner is not None:
                return self.resolve_method(owner, func.attr)
            return None
        # localvar.method(...) via inferred local types.
        if isinstance(func.value, ast.Name):
            owner = local_types.get(func.value.id)
            if owner is not None:
                return self.resolve_method(owner, func.attr)
        # module.attr(...) through the binding table.
        dotted = _dotted(func)
        if dotted is not None:
            resolved = self.resolve(module, dotted)
            if resolved in self.functions:
                return resolved
            if resolved in self.classes:
                ctor = self.resolve_method(resolved, "__init__")
                return ctor or resolved
        return None

    def _resolve_reference(
        self,
        module: str,
        cls: Optional[ClassInfo],
        value: ast.AST,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
    ) -> Optional[str]:
        """Resolve a *function-valued argument* (callback) to a qname."""
        if isinstance(value, ast.Lambda):
            return None  # its body is scanned as part of the encloser
        if (
            cls is not None
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in ("self", "cls")
        ):
            return self.resolve_method(cls.qname, value.attr)
        if isinstance(value, (ast.Name, ast.Attribute)):
            dotted = _dotted(value)
            if dotted is None or dotted.split(".")[0] in _BUILTIN_NAMES:
                return None
            resolved = self.resolve(module, dotted)
            if resolved in self.functions:
                return resolved
        return None

    # ------------------------------------------------------------------
    # Reachability

    def reachable(self, entries: Iterable[str]) -> Set[str]:
        """Return the function qnames transitively callable from entries.

        Entries that name a class include its ``__init__``.  Unknown
        entries are ignored (subset lint runs may omit their modules).
        """
        stack: List[str] = []
        for entry in entries:
            entry = self.canonical(entry)
            if entry in self.functions:
                stack.append(entry)
            elif entry in self.classes:
                ctor = self.resolve_method(entry, "__init__")
                if ctor is not None:
                    stack.append(ctor)
        seen: Set[str] = set()
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            stack.extend(self.calls.get(qname, set()) - seen)
        return seen

    def functions_in(self, module_prefix: str) -> List[FunctionInfo]:
        """Return functions defined in ``module_prefix`` (or below)."""
        return [
            info
            for info in self.functions.values()
            if info.module == module_prefix
            or info.module.startswith(module_prefix + ".")
        ]


def build_graph(files: Sequence[ParsedFile]) -> ProjectGraph:
    """Build a :class:`ProjectGraph` over ``files`` (module-level API)."""
    return ProjectGraph.build(files)


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
]
