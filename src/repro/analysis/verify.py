"""Independent verification of routed solutions.

The router's own bookkeeping is never trusted here: every check works
from the raw cell sets in the :class:`~repro.core.result.NetReport`
entries plus the original design.  In particular, length matching is
re-measured as *network distance* — BFS inside the net's routed cells
from the control pin to each valve — which is the physical length a
pressure front travels, independent of how the router composed paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.core.result import NetReport, PacorResult, Segment
from repro.designs.design import Design
from repro.geometry.point import Point
from repro.robustness.errors import PacorError
from repro.valves.compatibility import pairwise_compatible


class VerificationError(PacorError, AssertionError):
    """Raised when a routed solution violates a hard constraint."""


def network_lengths(
    segments: Iterable[Segment], origin: Point, targets: List[Point]
) -> Dict[Point, Optional[int]]:
    """Return BFS distances from ``origin`` to ``targets`` along segments.

    Connectivity follows the *drawn* channel steps, not raw cell
    adjacency: two same-net cells that merely touch are separate channels
    with legal spacing (the grid pitch includes the spacing rule).
    Unreachable targets map to None.  This is the pressure-propagation
    length through the routed channel network.
    """
    adjacency: Dict[Point, List[Point]] = {}
    for a, b in segments:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    if origin not in adjacency:
        return {t: (0 if t == origin else None) for t in targets}
    dist: Dict[Point, int] = {origin: 0}
    queue = deque([origin])
    remaining = set(targets)
    remaining.discard(origin)
    while queue and remaining:
        p = queue.popleft()
        for q in adjacency.get(p, ()):
            if q not in dist:
                dist[q] = dist[p] + 1
                remaining.discard(q)
                queue.append(q)
    return {t: dist.get(t) for t in targets}


def verify_result(
    design: Design, result: PacorResult, *, strict_matching: bool = True
) -> List[str]:
    """Validate a routed solution end to end.

    Args:
        design: the original problem instance.
        result: the flow's output.
        strict_matching: when True, a net the router reports as matched
            must also satisfy δ under network-distance re-measurement.

    Returns:
        A list of informational notes (empty is fine).

    Raises:
        VerificationError: on any hard violation.
    """
    notes: List[str] = []
    by_id = design.valve_by_id()
    pin_cells = set(design.control_pins)

    # 1. Channels never cross: nets' cells are pairwise disjoint.
    seen: Dict[Point, int] = {}
    for net in result.nets:
        for cell in net.cells:
            if cell in seen:
                raise VerificationError(
                    f"cell {cell} shared by nets {seen[cell]} and {net.net_id}"
                )
            seen[cell] = net.net_id

    # 2. Channels stay on free cells of the chip.
    for net in result.nets:
        for cell in net.cells:
            if not design.grid.in_bounds(cell):
                raise VerificationError(f"net {net.net_id} leaves the chip at {cell}")
            if design.grid.is_obstacle(cell):
                raise VerificationError(
                    f"net {net.net_id} crosses obstacle cell {cell}"
                )

    used_pins: Set[Point] = set()
    for net in result.nets:
        valves = [by_id[v] for v in net.valve_ids]

        # 3. Valves sharing a pin must be pairwise compatible (Section 2).
        if not pairwise_compatible(valves):
            raise VerificationError(
                f"net {net.net_id} drives incompatible valves {net.valve_ids}"
            )

        if not net.routed:
            notes.append(f"net {net.net_id} unrouted ({len(net.valve_ids)} valves)")
            continue

        # 4. Pin legality: a feasible pin, used exactly once.
        if net.pin is None:
            raise VerificationError(f"routed net {net.net_id} has no pin")
        if net.pin not in pin_cells:
            raise VerificationError(
                f"net {net.net_id} uses non-candidate pin {net.pin}"
            )
        if net.pin in used_pins:
            raise VerificationError(f"pin {net.pin} assigned to two nets")
        used_pins.add(net.pin)
        if net.pin not in net.cells:
            raise VerificationError(
                f"net {net.net_id} does not reach its pin {net.pin}"
            )

        # 5a. Drawn segments stay within the reported cell set.
        for a, b in net.segments:
            if a not in net.cells or b not in net.cells:
                raise VerificationError(
                    f"net {net.net_id} has a drawn segment outside its cells"
                )
            if a.manhattan(b) != 1:
                raise VerificationError(
                    f"net {net.net_id} has a non-adjacent segment {a}-{b}"
                )

        # 5b. Connectivity: every valve reachable from the pin along the
        # drawn channels.
        lengths = network_lengths(
            net.segments, net.pin, [v.position for v in valves]
        )
        for valve in valves:
            if valve.position not in net.cells:
                raise VerificationError(
                    f"valve {valve.id} not on net {net.net_id}'s channels"
                )
            if lengths[valve.position] is None:
                raise VerificationError(
                    f"valve {valve.id} disconnected from pin in net {net.net_id}"
                )

        # 6. Length matching, re-measured as network distance.
        if net.length_matching and net.matched and len(valves) >= 2:
            values = [lengths[v.position] for v in valves]
            spread = max(values) - min(values)  # type: ignore[operator, arg-type]
            if spread > result.delta:
                message = (
                    f"net {net.net_id} reported matched but network-distance "
                    f"spread is {spread} > delta={result.delta}"
                )
                if strict_matching:
                    raise VerificationError(message)
                notes.append(message)
    return notes
