"""Solution verification, metrics and report tables.

* :mod:`repro.analysis.verify` — independent end-to-end validation of a
  routed solution: non-crossing channels, obstacle avoidance,
  connectivity, pin legality, valve compatibility per pin, and
  length-matching measured as *network distance* inside the routed
  channels (the physical pressure-propagation length).
* :mod:`repro.analysis.metrics` — aggregate comparisons across methods.
* :mod:`repro.analysis.report` — Table-1/Table-2 style text tables.
"""

from repro.analysis.congestion import CongestionMap, congestion_map, congestion_svg
from repro.analysis.metrics import MethodComparison, compare_methods
from repro.analysis.pressure import ClusterSkew, DelayModel, cluster_skews, worst_skew
from repro.analysis.stats import (
    DesignBounds,
    design_lower_bounds,
    escape_lower_bound,
    quality_ratio,
    steiner_lower_bound,
)
from repro.analysis.report import format_table, table1_rows, table2_rows
from repro.analysis.verify import VerificationError, network_lengths, verify_result

__all__ = [
    "verify_result",
    "network_lengths",
    "VerificationError",
    "compare_methods",
    "MethodComparison",
    "format_table",
    "table1_rows",
    "table2_rows",
    "DelayModel",
    "ClusterSkew",
    "cluster_skews",
    "worst_skew",
    "DesignBounds",
    "design_lower_bounds",
    "steiner_lower_bound",
    "escape_lower_bound",
    "quality_ratio",
    "CongestionMap",
    "congestion_map",
    "congestion_svg",
]
