"""Cross-method metric aggregation (the "Avg." row of Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.result import PacorResult


@dataclass
class MethodComparison:
    """Normalised averages of one method against a reference method.

    The paper's "Avg." row normalises every method's metric to PACOR's
    (reference = 1.0); ratios average only over designs where both values
    are non-zero.
    """

    method: str
    matched_ratio: float
    matched_length_ratio: float
    total_length_ratio: float
    runtime_ratio: float


def _safe_ratio_avg(pairs: Sequence[tuple]) -> float:
    ratios = [a / b for a, b in pairs if b]
    return sum(ratios) / len(ratios) if ratios else 0.0


def compare_methods(
    results: Dict[str, List[PacorResult]], reference: str = "PACOR"
) -> List[MethodComparison]:
    """Return per-method averages normalised to ``reference``.

    ``results`` maps method name -> per-design results (same design
    order for every method).
    """
    if reference not in results:
        raise ValueError(f"reference method {reference!r} missing from results")
    ref = results[reference]
    comparisons = []
    for method, runs in results.items():
        if len(runs) != len(ref):
            raise ValueError(f"method {method!r} has a different design count")
        comparisons.append(
            MethodComparison(
                method=method,
                matched_ratio=_safe_ratio_avg(
                    [(r.matched_clusters, f.matched_clusters) for r, f in zip(runs, ref)]
                ),
                matched_length_ratio=_safe_ratio_avg(
                    [
                        (r.total_matched_length, f.total_matched_length)
                        for r, f in zip(runs, ref)
                    ]
                ),
                total_length_ratio=_safe_ratio_avg(
                    [(r.total_length, f.total_length) for r, f in zip(runs, ref)]
                ),
                runtime_ratio=_safe_ratio_avg(
                    [(r.runtime_s, f.runtime_s) for r, f in zip(runs, ref)]
                ),
            )
        )
    return comparisons
