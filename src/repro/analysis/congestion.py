"""Congestion analysis of routed solutions.

Reports how densely the chip's routing resource is used: per-tile
channel occupancy (for heat-mapping), overall utilisation, and the
congestion hot-spots that explain where negotiation/rip-up had to work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.result import PacorResult
from repro.designs.design import Design
from repro.geometry.point import Point


@dataclass
class CongestionMap:
    """Tile-level occupancy of a routed chip.

    Attributes:
        tile: tile edge length in grid cells.
        tiles_x, tiles_y: tile-grid dimensions.
        occupancy: per tile (tx, ty), channel cells / free capacity,
            in [0, 1]; tiles with zero capacity (all obstacle) are 0.
        utilisation: overall channel cells / free cells.
    """

    tile: int
    tiles_x: int
    tiles_y: int
    occupancy: Dict[Tuple[int, int], float]
    utilisation: float

    def hotspots(self, threshold: float = 0.5) -> List[Tuple[int, int]]:
        """Return tiles with occupancy above ``threshold``, densest first."""
        return sorted(
            (t for t, v in self.occupancy.items() if v > threshold),
            key=lambda t: -self.occupancy[t],
        )

    def max_occupancy(self) -> float:
        """Return the densest tile's occupancy."""
        return max(self.occupancy.values(), default=0.0)


def congestion_map(design: Design, result: PacorResult, tile: int = 8) -> CongestionMap:
    """Compute the tile-level congestion of a routed solution."""
    if tile < 1:
        raise ValueError("tile size must be positive")
    grid = design.grid
    tiles_x = (grid.width + tile - 1) // tile
    tiles_y = (grid.height + tile - 1) // tile

    capacity: Dict[Tuple[int, int], int] = {}
    used: Dict[Tuple[int, int], int] = {}
    for ty in range(tiles_y):
        for tx in range(tiles_x):
            capacity[(tx, ty)] = 0
            used[(tx, ty)] = 0
    for y in range(grid.height):
        for x in range(grid.width):
            if grid.is_free(Point(x, y)):
                capacity[(x // tile, y // tile)] += 1
    total_used = 0
    for net in result.nets:
        for cell in net.cells:
            used[(cell.x // tile, cell.y // tile)] += 1
            total_used += 1

    occupancy = {
        t: (used[t] / capacity[t] if capacity[t] else 0.0) for t in capacity
    }
    free_total = sum(capacity.values())
    return CongestionMap(
        tile=tile,
        tiles_x=tiles_x,
        tiles_y=tiles_y,
        occupancy=occupancy,
        utilisation=total_used / free_total if free_total else 0.0,
    )


def congestion_svg(design: Design, result: PacorResult, *, tile: int = 8, cell: int = 6) -> str:
    """Return an SVG heat map of tile occupancy (white → dark red)."""
    cmap = congestion_map(design, result, tile)
    width = design.grid.width * cell
    height = design.grid.height * cell
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    for (tx, ty), value in sorted(cmap.occupancy.items()):
        if value <= 0:
            continue
        # White (0) to dark red (1).
        shade = int(255 * (1 - min(value, 1.0)))
        parts.append(
            f'<rect x="{tx * tile * cell}" y="{ty * tile * cell}" '
            f'width="{tile * cell}" height="{tile * cell}" '
            f'fill="rgb(255,{shade},{shade})"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
