"""Runtime determinism sanitizer for the routing flow.

The static rules in :mod:`repro.analysis.lint` prove properties about
the *source*; this module polices the same invariants at *runtime*.
:func:`install` rewires three seams of the flow with checking shims:

* **Overlay write protection** — the :class:`~repro.grid.occupancy.
  Occupancy` owner/overlay ndarrays are flipped read-only
  (``setflags(write=False)``) outside the sanctioned mutators
  (``occupy_ids``, ``release_ids``, ``release_cell_ids``,
  ``import_state``, ``repair``).  Any code that pokes the arrays
  directly — bypassing the dirty-set protocol every mutator feeds into
  :class:`~repro.routing.core.space.SpaceCache` — dies on the spot with
  numpy's ``ValueError: assignment destination is read-only`` instead
  of corrupting the persistent fused mask three queries later.  Tests
  that corrupt the overlay *on purpose* use :func:`unprotected`.

* **Checkout verification** — every :meth:`SpaceCache.space` checkout
  is compared bit-for-bit against a freshly fused
  :class:`~repro.routing.core.space.SearchSpace` built from the same
  arguments (the cache's documented equivalence invariant).  A mismatch
  means some mutation dodged ``mark_dirty`` and raises
  :class:`SanitizerError` naming the stale cells.  Each comparison
  increments the ``sanitize.space_checks`` counter (see
  ``docs/observability.md``).

* **Clock and thread policing** — ``time.time``/``time.monotonic``
  (and their ``_ns`` twins) are wrapped to reject calls from ``repro``
  modules outside the DET002 whitelist, turning a wall-clock-dependent
  branch in kernel code into an immediate error instead of a flaky
  result.  Occupancy mutators additionally record the mutating thread:
  a second thread may only mutate while holding a lock registered via
  :func:`register_lock` (the service daemon registers its own).

Activation: ``pacor --sanitize ...``, the ``REPRO_SANITIZE=1``
environment variable (honoured by the pytest suite's ``conftest`` and
by service worker children, which re-import this module under spawn),
or an explicit :func:`install` call.  :func:`uninstall` restores every
patched seam; both are idempotent.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List

import numpy as np

from repro.grid.occupancy import Occupancy
from repro.observability import context as obs
from repro.robustness.errors import PacorError
from repro.routing.core.space import SearchSpace, SpaceCache


class SanitizerError(PacorError):
    """A runtime determinism invariant was violated under the sanitizer."""


_ENV_FLAG = "REPRO_SANITIZE"

_OCC_MUTATORS = (
    "occupy_ids",
    "release_ids",
    "release_cell_ids",
    "import_state",
    "repair",
)

# Mirrors the DET002 static whitelist: modules allowed to read the wall
# clock directly (prefix match, like the rule's).
_CLOCK_WHITELIST = (
    "repro.robustness.budget",
    "repro.observability.tracing",
    "repro.service",
    "repro.analysis.sanitize",
)

_CLOCK_NAMES = ("time", "monotonic", "time_ns", "monotonic_ns")

# install()/uninstall() run before any routing threads or workers exist
# (CLI front door, pytest_configure, or the top of run_job in a fresh
# child process), so the module state below is single-threaded by
# construction; the inline RACE001 waivers all ride on that.
_installed = False
_saved: Dict[str, Any] = {}
_locks: List[Any] = []


def enabled() -> bool:
    """Return True while the sanitizer shims are installed."""
    return _installed


def register_lock(lock: Any) -> None:
    """Register a lock that legitimises cross-thread occupancy mutation.

    The service daemon registers its own RLock at construction; any
    thread holding a registered lock may mutate occupancies created by
    another thread.  No-op (but harmless) when the sanitizer is off.
    """
    if lock not in _locks:
        _locks.append(lock)  # pacorlint: disable=RACE001


def _protect(occ: Occupancy, writable: bool) -> None:
    """Flip write access on the occupancy's live ndarrays."""
    occ._owner.setflags(write=writable)
    occ._overlay.setflags(write=writable)


def _cross_thread_allowed() -> bool:
    """Return True when the current thread holds a registered lock."""
    for lock in _locks:
        is_owned = getattr(lock, "_is_owned", None)
        if is_owned is not None and is_owned():
            return True
    return False


def _check_thread(occ: Occupancy, method: str) -> None:
    """Enforce the cross-thread mutation policy for one mutator call."""
    me = threading.get_ident()
    owner = getattr(occ, "_sanitize_thread", None)
    if owner is None:
        occ._sanitize_thread = me
    elif owner != me and not _cross_thread_allowed():
        raise SanitizerError(
            f"Occupancy.{method} called from thread {me} but the overlay "
            f"belongs to thread {owner}; cross-thread mutation requires "
            "holding a lock registered with "
            "repro.analysis.sanitize.register_lock (the service lock)"
        )


def _wrap_mutator(name: str, orig: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap one Occupancy mutator: thread check + window of writability."""

    @functools.wraps(orig)
    def wrapper(self: Occupancy, *args: Any, **kwargs: Any) -> Any:
        _check_thread(self, name)
        _protect(self, True)
        try:
            return orig(self, *args, **kwargs)
        finally:
            # Re-fetch the attributes: import_state/repair rebind the
            # arrays, and the fresh ones must be protected too.
            _protect(self, False)

    return wrapper


def _wrap_occ_init(orig: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap Occupancy.__init__: protect the arrays from birth."""

    @functools.wraps(orig)
    def wrapper(self: Occupancy, *args: Any, **kwargs: Any) -> None:
        orig(self, *args, **kwargs)
        self._sanitize_thread = threading.get_ident()
        _protect(self, False)

    return wrapper


def _wrap_space(orig: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap SpaceCache.space: verify each checkout against a fresh fuse."""

    @functools.wraps(orig)
    def wrapper(
        self: SpaceCache,
        *,
        net: int = -1,
        extra_obstacles: Any = None,
        extra_obstacle_ids: Any = None,
        fault_ids: Any = None,
    ) -> SearchSpace:
        # Materialise one-shot iterables so both fusions see them.
        if extra_obstacles is not None:
            extra_obstacles = list(extra_obstacles)
        if extra_obstacle_ids is not None and not isinstance(
            extra_obstacle_ids, np.ndarray
        ):
            extra_obstacle_ids = list(extra_obstacle_ids)
        if fault_ids is not None and not isinstance(fault_ids, np.ndarray):
            fault_ids = list(fault_ids)
        view = orig(
            self,
            net=net,
            extra_obstacles=extra_obstacles,
            extra_obstacle_ids=extra_obstacle_ids,
            fault_ids=fault_ids,
        )
        reference = SearchSpace(
            self.grid,
            net=net,
            occupancy=self.occupancy,
            extra_obstacles=extra_obstacles,
            extra_obstacle_ids=extra_obstacle_ids,
            fault_ids=fault_ids,
        )
        obs.counter("sanitize.space_checks").inc()
        if not np.array_equal(view.blocked, reference.blocked):
            stale = np.flatnonzero(view.blocked != reference.blocked)
            sample = ", ".join(str(int(c)) for c in stale[:8])
            raise SanitizerError(
                f"SpaceCache checkout for net {net} diverged from a fresh "
                f"fuse at {stale.size} cell(s) (ids: {sample}); an "
                "occupancy mutation bypassed the dirty-set protocol"
            )
        return view

    return wrapper


def _caller_module(frame_depth: int) -> str:
    """Return the ``__name__`` of the caller ``frame_depth`` frames up."""
    import sys

    frame = sys._getframe(frame_depth)
    return str(frame.f_globals.get("__name__", ""))


def _clock_allowed(module: str) -> bool:
    """Return True when ``module`` may read the wall clock directly."""
    if not module.startswith("repro.") and module != "repro":
        return True  # stdlib, numpy, pytest ... not ours to police
    return any(
        module == allowed or module.startswith(allowed + ".")
        for allowed in _CLOCK_WHITELIST
    )


def _wrap_clock(name: str, orig: Callable[[], Any]) -> Callable[[], Any]:
    """Wrap one ``time`` module function with the caller-module guard."""

    @functools.wraps(orig)
    def wrapper() -> Any:
        module = _caller_module(2)
        if not _clock_allowed(module):
            raise SanitizerError(
                f"time.{name}() called from {module}; wall-clock reads in "
                "flow code make results time-dependent — take the clock "
                "from Budget (see DET002 in docs/static_analysis.md)"
            )
        return orig()

    return wrapper


def install() -> None:
    """Install every sanitizer shim (idempotent).

    Must run before routing threads or worker processes are created —
    the CLI flag, the pytest hook and the worker entry point all sit at
    process start, where that holds by construction.
    """
    global _installed  # pacorlint: disable=RACE001
    if _installed:
        return
    _saved["occ_init"] = Occupancy.__init__  # pacorlint: disable=RACE001
    Occupancy.__init__ = _wrap_occ_init(Occupancy.__init__)
    for name in _OCC_MUTATORS:
        orig = getattr(Occupancy, name)
        _saved[f"occ_{name}"] = orig  # pacorlint: disable=RACE001
        setattr(Occupancy, name, _wrap_mutator(name, orig))
    _saved["space"] = SpaceCache.space  # pacorlint: disable=RACE001
    SpaceCache.space = _wrap_space(SpaceCache.space)
    for name in _CLOCK_NAMES:
        orig = getattr(time, name)
        _saved[f"time_{name}"] = orig  # pacorlint: disable=RACE001
        setattr(time, name, _wrap_clock(name, orig))
    _installed = True


def uninstall() -> None:
    """Remove every sanitizer shim and re-open existing arrays."""
    global _installed  # pacorlint: disable=RACE001
    if not _installed:
        return
    Occupancy.__init__ = _saved.pop("occ_init")
    for name in _OCC_MUTATORS:
        setattr(Occupancy, name, _saved.pop(f"occ_{name}"))
    SpaceCache.space = _saved.pop("space")
    for name in _CLOCK_NAMES:
        setattr(time, name, _saved.pop(f"time_{name}"))
    _locks.clear()  # pacorlint: disable=RACE001
    _installed = False


def install_from_env() -> bool:
    """Install when ``REPRO_SANITIZE`` is set truthy; return whether on.

    The hook the pytest suite and the worker children share: spawn-start
    workers re-import everything, so the parent's shims do not reach
    them — the environment variable does.
    """
    flag = os.environ.get(_ENV_FLAG, "").strip().lower()
    if flag in ("", "0", "false", "no"):
        return _installed
    install()
    return True


@contextmanager
def unprotected(occ: Occupancy) -> Iterator[Occupancy]:
    """Temporarily re-open an occupancy's arrays for direct writes.

    The escape hatch for tests that corrupt the overlay on purpose
    (e.g. to exercise ``find_inconsistencies``/``repair``).  The caller
    owns the consequences: writes made here bypass the dirty-set
    protocol, and the next verified :meth:`SpaceCache.space` checkout
    will flag them unless the caller invalidates the cache.  No-op when
    the sanitizer is off.
    """
    if not _installed:
        yield occ
        return
    _protect(occ, True)
    try:
        yield occ
    finally:
        _protect(occ, False)
