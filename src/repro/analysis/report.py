"""Plain-text report tables in the layout of the paper's Table 1/Table 2."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.result import PacorResult
from repro.designs.design import Design


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def table1_rows(designs: Sequence[Design]) -> List[List[object]]:
    """Return Table-1 rows: Design, Size, #Valves, #CP, #Obs."""
    return [
        [
            d.name,
            d.size_label,
            len(d.valves),
            len(d.control_pins),
            d.grid.obstacle_count(),
        ]
        for d in designs
    ]


def table2_rows(
    results_by_method: Dict[str, List[PacorResult]],
    method_order: Sequence[str] = ("w/o Sel", "Detour First", "PACOR"),
) -> List[List[object]]:
    """Return Table-2 rows: per design, the three methods' metrics.

    Columns: Design, #Clusters, then per method #Matched, matched length,
    total length and runtime — mirroring the paper's layout.
    """
    methods = [m for m in method_order if m in results_by_method]
    if not methods:
        raise ValueError("no known methods in results")
    n_designs = len(results_by_method[methods[0]])
    rows: List[List[object]] = []
    for i in range(n_designs):
        first = results_by_method[methods[0]][i]
        row: List[object] = [first.design_name, first.n_lm_clusters]
        for metric in ("matched_clusters", "total_matched_length", "total_length"):
            for m in methods:
                row.append(getattr(results_by_method[m][i], metric))
        for m in methods:
            row.append(f"{results_by_method[m][i].runtime_s:.2f}")
        rows.append(row)
    return rows


def table2_headers(
    method_order: Sequence[str] = ("w/o Sel", "Detour First", "PACOR"),
) -> List[str]:
    """Return the header row matching :func:`table2_rows`."""
    headers = ["Design", "#Clusters"]
    for metric in ("#Matched", "MatchedLen", "TotalLen"):
        headers.extend(f"{metric}({m})" for m in method_order)
    headers.extend(f"Runtime({m})" for m in method_order)
    return headers
