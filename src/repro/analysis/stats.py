"""Instance statistics and wirelength lower bounds.

Absolute channel lengths mean little without a yardstick.  This module
computes per-design lower bounds on the total channel length any
crossing-free solution must pay:

* **internal connectivity** — each multi-valve cluster needs a
  rectilinear Steiner tree over its valves; RSMT length is bounded below
  by both the semiperimeter of the valves' bounding box and 2/3 of the
  Manhattan MST weight (Hwang's bound).
* **escape** — each cluster additionally needs a channel to a control
  pin; at least the Manhattan distance from the cluster's valve set to
  the nearest candidate pin.

The bound ignores congestion, so real solutions land above it; the ratio
``total_length / lower_bound`` is a scale-free quality number reported by
the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.result import PacorResult
from repro.designs.design import Design
from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect
from repro.routing.mst import manhattan_mst
from repro.valves.clustering import cluster_valves


def steiner_lower_bound(points: Sequence[Point]) -> int:
    """Return a lower bound on the rectilinear Steiner tree length."""
    if len(points) <= 1:
        return 0
    box = Rect.from_points(points)
    semiperimeter = (box.width - 1) + (box.height - 1)
    edges = manhattan_mst(list(points))
    mst_weight = sum(manhattan(points[a], points[b]) for a, b in edges)
    # RSMT >= 2/3 * MST (tight for rectilinear metrics).
    return max(semiperimeter, (2 * mst_weight + 2) // 3)


def escape_lower_bound(points: Sequence[Point], pins: Sequence[Point]) -> int:
    """Return the minimum channel length from a valve set to any pin."""
    if not points or not pins:
        return 0
    return min(manhattan(p, pin) for p in points for pin in pins)


@dataclass
class DesignBounds:
    """Wirelength lower bounds for one design.

    Attributes:
        internal: per cluster id, the Steiner lower bound.
        escape: per cluster id, the pin-reach lower bound.
        total: sum of all bounds — no solution can be shorter.
    """

    internal: Dict[int, int]
    escape: Dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.internal.values()) + sum(self.escape.values())


def design_lower_bounds(design: Design) -> DesignBounds:
    """Compute the wirelength lower bounds of a design."""
    clusters = cluster_valves(design.valves, design.lm_groups)
    internal: Dict[int, int] = {}
    escape: Dict[int, int] = {}
    for cluster in clusters:
        points = [v.position for v in cluster.valves]
        internal[cluster.id] = steiner_lower_bound(points)
        escape[cluster.id] = escape_lower_bound(points, design.control_pins)
    return DesignBounds(internal=internal, escape=escape)


def quality_ratio(design: Design, result: PacorResult) -> float:
    """Return ``total routed length / lower bound`` (>= 1 when complete).

    Only meaningful at (near-)full completion: unrouted nets pay no
    length, which would deflate the ratio.
    """
    bound = design_lower_bounds(design).total
    if bound == 0:
        return 1.0
    return result.total_length / bound
