"""Integer grid points under the Manhattan metric."""

from __future__ import annotations

from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """An immutable point on the routing grid.

    Points are plain ``(x, y)`` tuples (a :class:`~typing.NamedTuple`), so
    they hash, sort and unpack like tuples and can be used directly as
    dictionary keys in routing data structures.
    """

    x: int
    y: int

    def manhattan(self, other: "Point") -> int:
        """Return the L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def neighbors4(self) -> Iterator["Point"]:
        """Yield the four axis-aligned neighbours (may fall off-grid)."""
        yield Point(self.x + 1, self.y)
        yield Point(self.x - 1, self.y)
        yield Point(self.x, self.y + 1)
        yield Point(self.x, self.y - 1)

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


class Point3(NamedTuple):
    """A point on an upper routing layer of a multi-layer grid.

    The canonical cell representation is *mixed-arity*: a cell on layer
    0 is always a plain :class:`Point` ``(x, y)``, a cell on layer ``z >
    0`` is a ``Point3`` ``(x, y, z)``.  The rule gives every physical
    cell exactly one tuple form, so sets, sorting and JSON stay
    deterministic, planar design objects (valves, pins) interoperate
    with routed cells via plain set operations, and single-layer runs
    never see a 3-tuple at all.
    """

    x: int
    y: int
    z: int

    def manhattan(self, other: "Point3") -> int:
        """Return the L1 distance to ``other`` (z counted like x/y)."""
        return manhattan(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y},z{self.z})"


def cell_point(x: int, y: int, z: int = 0):
    """Return the canonical cell tuple: ``Point`` on layer 0, else ``Point3``."""
    if z:
        return Point3(x, y, z)
    return Point(x, y)


def cell_z(p) -> int:
    """Return the layer of a cell tuple (``0`` for plain 2-tuples)."""
    return p[2] if len(p) == 3 else 0


def manhattan(a: Point, b: Point) -> int:
    """Return the L1 distance between two points (tuple-likes accepted).

    Accepts mixed arities: a plain ``(x, y)`` tuple is a layer-0 cell,
    so its implicit z is 0.
    """
    az = a[2] if len(a) == 3 else 0
    bz = b[2] if len(b) == 3 else 0
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) + abs(az - bz)
