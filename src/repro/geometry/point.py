"""Integer grid points under the Manhattan metric."""

from __future__ import annotations

from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """An immutable point on the routing grid.

    Points are plain ``(x, y)`` tuples (a :class:`~typing.NamedTuple`), so
    they hash, sort and unpack like tuples and can be used directly as
    dictionary keys in routing data structures.
    """

    x: int
    y: int

    def manhattan(self, other: "Point") -> int:
        """Return the L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def neighbors4(self) -> Iterator["Point"]:
        """Yield the four axis-aligned neighbours (may fall off-grid)."""
        yield Point(self.x + 1, self.y)
        yield Point(self.x - 1, self.y)
        yield Point(self.x, self.y + 1)
        yield Point(self.x, self.y - 1)

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


def manhattan(a: Point, b: Point) -> int:
    """Return the L1 distance between two points (tuple-likes accepted)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
