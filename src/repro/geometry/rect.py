"""Inclusive integer rectangles in chip coordinates.

Rectangles are used for obstacle blocks, Steiner-tree edge bounding boxes
(the overlap cost of Eq. (4) in the paper), and chip extents.  Bounds are
*inclusive*: ``Rect(0, 0, 0, 0)`` is the single cell ``(0, 0)`` and has
area 1.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional

from repro.geometry.point import Point


class Rect(NamedTuple):
    """An axis-aligned rectangle with inclusive integer bounds."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Return the bounding box of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of an empty point set is undefined")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> int:
        """Number of columns covered (inclusive bounds)."""
        return self.xhi - self.xlo + 1

    @property
    def height(self) -> int:
        """Number of rows covered (inclusive bounds)."""
        return self.yhi - self.ylo + 1

    @property
    def area(self) -> int:
        """Number of grid cells covered."""
        return self.width * self.height

    def is_valid(self) -> bool:
        """Return True when the bounds describe a non-empty rectangle."""
        return self.xlo <= self.xhi and self.ylo <= self.yhi

    def contains(self, p: Point) -> bool:
        """Return True when point ``p`` lies inside (inclusive)."""
        return self.xlo <= p[0] <= self.xhi and self.ylo <= p[1] <= self.yhi

    def intersect(self, other: "Rect") -> Optional["Rect"]:
        """Return the overlap rectangle, or None when disjoint."""
        r = Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )
        return r if r.is_valid() else None

    def overlap_area(self, other: "Rect") -> int:
        """Return the number of cells shared with ``other``."""
        r = self.intersect(other)
        return r.area if r is not None else 0

    def inflated(self, margin: int) -> "Rect":
        """Return a copy grown by ``margin`` cells on every side."""
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def cells(self) -> Iterator[Point]:
        """Yield every grid cell covered by the rectangle."""
        for y in range(self.ylo, self.yhi + 1):
            for x in range(self.xlo, self.xhi + 1):
                yield Point(x, y)
