"""Tilted rectangle regions (TRRs) in rotated half-unit coordinates.

Under the Manhattan metric, the ball of radius *r* around a point is a
square tilted by 45 degrees.  The classic trick (used by the original DME
papers and here) is to rotate the plane::

    u = x + y        v = x - y

after which Manhattan distance in ``(x, y)`` becomes Chebyshev distance in
``(u, v)`` and every tilted rectangle region — merging segments included —
becomes an *axis-aligned* rectangle.

DME merging radii are multiples of one half (Lemma 1 in the paper: two
nodes at odd Manhattan distance have an off-grid merging segment).  To keep
every computation in exact integer arithmetic we store rotated coordinates
*doubled*, in "half units"::

    U = 2 * (x + y)      V = 2 * (x - y)

so a Manhattan radius of ``r`` grid units corresponds to an expansion of
``2 * r`` half units, and a radius of one half is the integer 1.  A rotated
half-unit point ``(U, V)`` maps back to a grid point iff ``U`` and ``V``
are even and ``U + V`` is divisible by 4.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.geometry.point import Point


def to_rotated(p: Point) -> Tuple[int, int]:
    """Return the rotated half-unit coordinates ``(U, V)`` of a grid point."""
    return 2 * (p[0] + p[1]), 2 * (p[0] - p[1])


def is_grid_rotated(u: int, v: int) -> bool:
    """Return True when half-unit ``(u, v)`` maps back to an integer grid point."""
    return u % 2 == 0 and v % 2 == 0 and (u + v) % 4 == 0


def from_rotated(u: int, v: int) -> Point:
    """Map half-unit rotated coordinates back to a grid point.

    Raises :class:`ValueError` when ``(u, v)`` is off-grid (see Lemma 1);
    use :meth:`TRR.nearest_grid_point` for snapping behaviour.
    """
    if not is_grid_rotated(u, v):
        raise ValueError(f"rotated half-unit point ({u},{v}) is off-grid")
    return Point((u + v) // 4, (u - v) // 4)


class TRR(NamedTuple):
    """A tilted rectangle region, stored as ``[ulo, uhi] x [vlo, vhi]``.

    All bounds are in rotated half units.  A degenerate TRR with
    ``ulo == uhi`` and ``vlo == vhi`` is a single point; one with exactly
    one degenerate axis is a Manhattan arc (a merging segment).
    """

    ulo: int
    uhi: int
    vlo: int
    vhi: int

    @classmethod
    def from_point(cls, p: Point) -> "TRR":
        """Return the degenerate region containing only grid point ``p``."""
        u, v = to_rotated(p)
        return cls(u, u, v, v)

    def is_valid(self) -> bool:
        """Return True when the region is non-empty."""
        return self.ulo <= self.uhi and self.vlo <= self.vhi

    def is_point(self) -> bool:
        """Return True when the region degenerates to a single point."""
        return self.ulo == self.uhi and self.vlo == self.vhi

    def expanded(self, radius_half_units: int) -> "TRR":
        """Return the Manhattan dilation by ``radius_half_units`` / 2 grid units."""
        if radius_half_units < 0:
            raise ValueError("expansion radius must be non-negative")
        r = radius_half_units
        return TRR(self.ulo - r, self.uhi + r, self.vlo - r, self.vhi + r)

    def intersect(self, other: "TRR") -> Optional["TRR"]:
        """Return the intersection region, or None when disjoint."""
        t = TRR(
            max(self.ulo, other.ulo),
            min(self.uhi, other.uhi),
            max(self.vlo, other.vlo),
            min(self.vhi, other.vhi),
        )
        return t if t.is_valid() else None

    def distance(self, other: "TRR") -> int:
        """Return the Manhattan gap to ``other`` in half units.

        This is the Chebyshev distance between the two axis-aligned
        rectangles in rotated space; zero when they touch or overlap.
        """
        gap_u = max(0, other.ulo - self.uhi, self.ulo - other.uhi)
        gap_v = max(0, other.vlo - self.vhi, self.vlo - other.vhi)
        return max(gap_u, gap_v)

    def nearest_rotated(self, u: int, v: int) -> Tuple[int, int]:
        """Clamp rotated half-unit point ``(u, v)`` into the region."""
        cu = min(max(u, self.ulo), self.uhi)
        cv = min(max(v, self.vlo), self.vhi)
        return cu, cv

    def center_rotated(self) -> Tuple[int, int]:
        """Return the (rounded) rotated centre of the region."""
        return (self.ulo + self.uhi) // 2, (self.vlo + self.vhi) // 2

    def corners_rotated(self) -> List[Tuple[int, int]]:
        """Return the four rotated corners (duplicates removed)."""
        pts = {
            (self.ulo, self.vlo),
            (self.ulo, self.vhi),
            (self.uhi, self.vlo),
            (self.uhi, self.vhi),
        }
        return sorted(pts)

    def grid_points(self) -> Iterator[Point]:
        """Yield every *on-grid* point inside the region.

        Useful for small regions (merging segments); the iteration cost is
        proportional to the rotated-space area.
        """
        for u in range(self.ulo, self.uhi + 1):
            for v in range(self.vlo, self.vhi + 1):
                if is_grid_rotated(u, v):
                    yield from_rotated(u, v)

    def nearest_grid_point(self, target: Point) -> Tuple[Point, int]:
        """Return the on-grid point of (or nearest to) the region closest to ``target``.

        Returns ``(point, snap_half_units)`` where ``snap_half_units`` is
        the Manhattan distance (in half units) from the exact clamped
        location to the returned grid point — the rounding error of
        Lemma 1 that later stages must repair by detouring.
        """
        tu, tv = to_rotated(target)
        cu, cv = self.nearest_rotated(tu, tv)
        best: Optional[Point] = None
        best_snap = None
        # Search a small neighbourhood of the clamped location for a valid
        # lattice point; offsets up to 2 half units always contain one.
        for du in range(-2, 3):
            for dv in range(-2, 3):
                u, v = cu + du, cv + dv
                if not is_grid_rotated(u, v):
                    continue
                # Prefer points still inside the region, then small snaps.
                inside = self.ulo <= u <= self.uhi and self.vlo <= v <= self.vhi
                snap = max(abs(du), abs(dv)) + (0 if inside else 1)
                if best_snap is None or snap < best_snap:
                    best_snap = snap
                    best = from_rotated(u, v)
        assert best is not None and best_snap is not None
        return best, best_snap

    def sample_grid_points(self, limit: int = 8) -> List[Point]:
        """Return up to ``limit`` well-spread on-grid points of the region.

        Used to enumerate distinct merging-node choices when building
        candidate Steiner trees (Fig. 3 of the paper).  Corners and the
        centre are tried first, then a coarse sweep of the region.
        """
        found: List[Point] = []
        seen = set()

        def try_rotated(u: int, v: int) -> None:
            for du in range(-2, 3):
                for dv in range(-2, 3):
                    uu, vv = u + du, v + dv
                    if (
                        self.ulo <= uu <= self.uhi
                        and self.vlo <= vv <= self.vhi
                        and is_grid_rotated(uu, vv)
                    ):
                        p = from_rotated(uu, vv)
                        if p not in seen:
                            seen.add(p)
                            found.append(p)
                        return

        cu, cv = self.center_rotated()
        try_rotated(cu, cv)
        for u, v in self.corners_rotated():
            try_rotated(u, v)
        if len(found) < limit:
            # Coarse sweep for long merging segments.
            du_span = max(1, (self.uhi - self.ulo) // 4)
            dv_span = max(1, (self.vhi - self.vlo) // 4)
            for u in range(self.ulo, self.uhi + 1, du_span):
                for v in range(self.vlo, self.vhi + 1, dv_span):
                    if len(found) >= limit:
                        break
                    try_rotated(u, v)
        return found[:limit]
