"""Geometry primitives for Manhattan-metric routing.

The control layer is routed on a uniform grid under the Manhattan (L1)
metric.  The DME stage of PACOR additionally works with *merging segments*
and *tilted rectangle regions* (Manhattan balls), which are axis-aligned
rectangles after the 45-degree rotation ``(u, v) = (x + y, x - y)``.  This
package provides:

* :class:`Point` — an immutable integer grid point with L1 helpers.
* :class:`Rect` — an inclusive integer rectangle in chip coordinates.
* :class:`TRR` — a tilted rectangle region stored in rotated *half-unit*
  coordinates so that all DME arithmetic stays exact (merging radii are
  multiples of one half, see Lemma 1 of the paper).
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect
from repro.geometry.trr import (
    TRR,
    from_rotated,
    is_grid_rotated,
    to_rotated,
)

__all__ = [
    "Point",
    "manhattan",
    "Rect",
    "TRR",
    "to_rotated",
    "from_rotated",
    "is_grid_rotated",
]
