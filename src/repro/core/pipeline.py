"""The three Table-2 methods as one-call runners.

* ``PACOR`` — the full flow (candidate selection on, detouring last).
* ``w/o Sel`` — candidate selection disabled: each cluster keeps its
  locally best candidate, losing the global routability view.
* ``Detour First`` — paths are detoured immediately after the
  negotiation-based routing, before MST/escape routing, as discussed in
  Section 7.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.core.config import DetourStage, PacorConfig
from repro.core.pacor import PacorRouter
from repro.core.result import PacorResult
from repro.designs.design import Design
from repro.observability.metrics import Metrics
from repro.observability.tracing import Tracer
from repro.robustness.errors import ConfigError
from repro.robustness.faultmap import FaultMap


def _run(
    design: Design,
    config: PacorConfig,
    method: str,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    fault_map: Optional[FaultMap] = None,
) -> PacorResult:
    router = PacorRouter(
        design, config, tracer=tracer, metrics=metrics, fault_map=fault_map
    )
    router._method_name = method
    return router.run()


def run_pacor(
    design: Design,
    config: Optional[PacorConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    fault_map: Optional[FaultMap] = None,
) -> PacorResult:
    """Run the full PACOR flow on ``design``."""
    config = config or PacorConfig()
    config = replace(
        config, enable_selection=True, detour_stage=DetourStage.FINAL
    )
    return _run(
        design,
        config,
        "PACOR",
        tracer=tracer,
        metrics=metrics,
        fault_map=fault_map,
    )


def run_without_selection(
    design: Design,
    config: Optional[PacorConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    fault_map: Optional[FaultMap] = None,
) -> PacorResult:
    """Run the "w/o Sel" baseline: no candidate-tree selection strategy."""
    config = config or PacorConfig()
    config = replace(
        config, enable_selection=False, detour_stage=DetourStage.FINAL
    )
    return _run(
        design,
        config,
        "w/o Sel",
        tracer=tracer,
        metrics=metrics,
        fault_map=fault_map,
    )


def run_detour_first(
    design: Design,
    config: Optional[PacorConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    fault_map: Optional[FaultMap] = None,
) -> PacorResult:
    """Run the "Detour First" baseline: detour right after negotiation."""
    config = config or PacorConfig()
    config = replace(
        config, enable_selection=True, detour_stage=DetourStage.AFTER_NEGOTIATION
    )
    return _run(
        design,
        config,
        "Detour First",
        tracer=tracer,
        metrics=metrics,
        fault_map=fault_map,
    )


METHODS: Dict[str, Callable[..., PacorResult]] = {
    "w/o Sel": run_without_selection,
    "Detour First": run_detour_first,
    "PACOR": run_pacor,
}
"""The Table-2 methods in the paper's column order."""


def run_method(
    design: Design,
    method: str,
    config: Optional[PacorConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    fault_map: Optional[FaultMap] = None,
) -> PacorResult:
    """Run one named Table-2 method, optionally instrumented."""
    try:
        runner = METHODS[method]
    except KeyError:
        # The internal KeyError is an implementation detail; `from None`
        # keeps it out of the user's traceback.
        raise ConfigError(
            f"unknown method {method!r}; choose from {list(METHODS)}",
            field="method",
        ) from None
    return runner(
        design, config, tracer=tracer, metrics=metrics, fault_map=fault_map
    )
