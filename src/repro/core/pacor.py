"""The PACOR flow orchestration (Fig. 2).

Stages, in order:

1. **Valve clustering** — minimum clique cover; LM groups preserved.
2. **Length-matching cluster routing** — DME candidate trees, MWCP
   selection, negotiation-based routing (clusters of two valves are
   routed as a direct edge).  Clusters that fail negotiation are demoted
   to ordinary MST routing.
3. **MST cluster routing** — ordinary clusters; failed attachments are
   de-clustered into singleton nets.
4. **Escape routing** — one global min-cost flow per round; failed
   sources trigger blocking-net rip-up and re-route, with LM clusters
   rippable only in later rounds and at higher cost.
5. **Path detouring** — Algorithm 2 on every routed LM cluster (at the
   final stage for PACOR; right after negotiation for "Detour First").
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DetourStage, PacorConfig, SelectionSolver
from repro.core.result import (
    NetReport,
    PacorResult,
    is_via_segment,
    segments_of_path,
)
from repro.designs.design import Design
from repro.designs.io import design_to_json
from repro.detour import check_equal, detour_cluster
from repro.detour.cluster import (
    RoutedTree,
    routed_tree_from_candidate,
    routed_tree_from_pair,
)
from repro.dme import generate_candidates
from repro.dme.tree import CandidateTree
from repro.escape import (
    EscapeSource,
    find_blocking_nets,
    solve_escape,
    solve_escape_sequential,
)
from repro.geometry.point import Point, cell_point
from repro.grid.occupancy import FAULT_NET, FREE, Occupancy
from repro.observability import context as obs
from repro.observability.metrics import Metrics
from repro.observability.tracing import Tracer
from repro.robustness import faults
from repro.robustness.budget import Budget
from repro.robustness.checkpoint import Checkpoint
from repro.robustness.errors import (
    BudgetExceeded,
    CheckpointFormatError,
    FaultFormatError,
    PacorError,
    RouterStuck,
)
from repro.robustness.faultmap import FaultEvent, FaultMap
from repro.robustness.incidents import Incident, Severity
from repro.routing.astar import ALL_SOURCES_BLOCKED, astar_route_detailed
from repro.routing.mst import route_cluster_mst
from repro.routing.negotiation import NegotiationRouter, RouteRequest
from repro.routing.path import Path
from repro.selection import (
    SelectionInstance,
    solve_exact,
    solve_greedy,
    solve_local_search,
)
from repro.valves.clustering import Cluster, cluster_valves
from repro.valves.valve import Valve

_RIP_HISTORY_PENALTY = 50.0
"""History cost on a ripped net's old cells when it re-routes."""


@dataclass
class _Net:
    """Internal bookkeeping for one routable net."""

    net_id: int
    origin_cluster: int
    valves: List[Valve]
    length_matching: bool
    kind: str  # "lm-tree" | "lm-pair" | "ordinary" | "singleton"
    tree: Optional[RoutedTree] = None
    paths: List[Path] = field(default_factory=list)  # internal MST channels
    pin: Optional[Point] = None
    escape_path: Optional[Path] = None
    routed: bool = False
    demoted: bool = False
    # True when the demotion was forced by an exhausted compute budget
    # rather than a real routability failure; a resumed run reverts such
    # nets to LM routing and retries them with the fresh budget.
    budget_demoted: bool = False
    # True when a physical fault made the net unroutable for good (every
    # valve stuck); dead nets are excluded from all further stages.
    dead: bool = False
    # Report produced by the post-flow repair pass; when set, _collect
    # exports it verbatim instead of deriving one from the net state.
    # Never serialised: repair runs after the last checkpointable stage.
    repaired_report: Optional[NetReport] = None

    def drawn_paths(self) -> List[Path]:
        """Return every drawn channel path of the net (escape included)."""
        out: List[Path] = []
        if self.tree is not None:
            out.extend(self.tree.edge_paths.values())
        else:
            out.extend(self.paths)
        if self.escape_path is not None:
            out.append(self.escape_path)
        return out


class PacorRouter:
    """Runs the full control-layer routing flow on one design."""

    def __init__(
        self,
        design: Design,
        config: Optional[PacorConfig] = None,
        *,
        budget: Optional[Budget] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        fault_map: Optional[FaultMap] = None,
    ) -> None:
        design.validate()
        self.design = design
        self.config = config or PacorConfig()
        self.grid = design.grid
        self.occupancy = Occupancy(self.grid)
        self.delta = self.config.resolved_delta(design.delta)
        # Physical fault state.  The map is normalised against the design
        # up front (faulty valve-position cells become stuck valves), its
        # declared cells are mounted under the FAULT_NET pseudo-net so
        # every stage's occupancy overlay blocks them, and timed events
        # are popped at stage boundaries by _apply_fault_events.
        self.fault_map = (
            fault_map.normalized(design) if fault_map is not None else None
        )
        self._stuck_valves: Set[int] = (
            set(self.fault_map.stuck_valves)
            if self.fault_map is not None
            else set()
        )
        # Nets ripped by a mid-flow fault, pending the post-flow repair
        # pass: net id -> human-readable cause; released cell ids are
        # remembered separately to seed the repair bounding box.
        self._fault_damaged: Dict[int, str] = {}
        self._fault_old_cells: Dict[int, Set[int]] = {}
        if self.fault_map is not None:
            mount = set(
                self.fault_map.cell_ids(self.grid.width, self.grid.height)
            )
            for site in self.fault_map.via_stuck:
                self.grid.set_via_blocked(site)
            valve_by_id = design.valve_by_id()
            for vid in self.fault_map.stuck_valves:
                mount.add(self.grid.index(valve_by_id[vid].position))
            if mount:
                self.occupancy.occupy_ids(mount, FAULT_NET)
        self.events: List[str] = []
        self.incidents: List[Incident] = []
        self.budget = budget if budget is not None else self.config.make_budget()
        # Observability: an explicitly passed instrument wins; otherwise
        # whatever the context module has installed (the no-op singletons
        # by default).  The budget's expansion counter is adopted as the
        # registry's ``astar.expansions``, so the compute limit and the
        # exported metric can never disagree.
        self.tracer = tracer if tracer is not None else obs.tracer()
        self.metrics = metrics if metrics is not None else obs.metrics()
        self.metrics.adopt("astar.expansions", self.budget.expansion_counter)
        # Spans/counters carried over from an interrupted run's
        # checkpoint; the CLI reports them on resume.
        self.carried_spans = 0
        self.carried_counters = 0
        self.nets: Dict[int, _Net] = {}
        self._next_net_id = 0
        self._method_name = "PACOR"
        self._failure_reasons: Dict[int, str] = {}
        # During escape routing, newly de-clustered singletons must join
        # the pending-escape queue; _spawn_singleton registers them here.
        self._escape_pending: Optional[Set[int]] = None
        # Checkpoint/resume state.  ``checkpoints`` holds the snapshot
        # taken after each executed stage (keyed by stage name);
        # ``interrupt_checkpoint`` is the first snapshot whose stage was
        # cut short by an exhausted budget — the one a resume should
        # start from.
        self._n_multi_clusters = 0
        self._resume_stage: Optional[str] = None
        self._last_escape_pending: Optional[List[int]] = None
        self.checkpoints: Dict[str, Checkpoint] = {}
        self.interrupt_checkpoint: Optional[Checkpoint] = None

    # -- public API ---------------------------------------------------------

    def _stage_sequence(self) -> List[str]:
        """Return the ordered stage names this config executes."""
        sequence = ["clustering", "lm-routing"]
        if self.config.detour_stage is DetourStage.AFTER_NEGOTIATION:
            sequence.append("detour")
        sequence.extend(["mst-routing", "escape"])
        if self.config.detour_stage is DetourStage.FINAL:
            sequence.append("detour")
        return sequence

    def _stage_fn(self, stage: str) -> Callable:
        return {
            "clustering": self._stage_clustering,
            "lm-routing": self._stage_lm_routing,
            "mst-routing": self._stage_mst_routing,
            "escape": self._stage_escape,
            "detour": self._stage_detour,
        }[stage]

    def run(self) -> PacorResult:
        """Execute every stage and return the aggregated result.

        Every stage runs under a supervisor: an exception or exhausted
        compute budget inside one stage records an
        :class:`~repro.robustness.incidents.Incident`, degrades the
        affected nets, and lets the remaining stages continue — the
        method always returns a (possibly ``degraded``) result instead
        of raising or hanging.

        After each stage a :class:`~repro.robustness.checkpoint.Checkpoint`
        of the full mid-flow state is captured (``self.checkpoints``); the
        first stage a budget interruption cuts short additionally pins
        ``self.interrupt_checkpoint`` (mirrored on
        ``result.checkpoint``), from which :meth:`resume` re-enters the
        flow with a fresh budget, skipping the completed stages.

        The whole run executes under the router's tracer/metrics pair
        (installed process-wide for the duration, so the kernels see
        them): one ``flow`` root span covers the run, one ``stage`` span
        wraps each executed stage, and checkpoints taken at stage
        boundaries carry the active trace/span id for resume stitching.
        """
        started = time.perf_counter()
        self.budget.start()
        sequence = self._stage_sequence()
        start_idx = sequence.index(self._resume_stage) if self._resume_stage else 0
        with obs.use(self.tracer, self.metrics):
            with self.tracer.span(
                "route",
                category="flow",
                design=self.design.name,
                method=self._method_name,
                resumed=self._resume_stage is not None,
            ):
                for idx in range(start_idx, len(sequence)):
                    stage = sequence[idx]
                    # Stage-boundary fault events fire *before* the stage
                    # (and before its checkpoint cursor), so a resumed run
                    # never re-applies them: the snapshot's fault map has
                    # them popped already.
                    self._apply_fault_events(stage)
                    incidents_before = len(self.incidents)
                    with self.tracer.span(stage, category="stage") as stage_span:
                        self._supervised(stage, self._stage_fn(stage))
                        # Every checkpoint below must snapshot a
                        # *consistent* overlay, so the repair check runs
                        # after each stage, clustering included.
                        self._check_occupancy(stage)
                        if stage == "clustering" and not self.nets:
                            break  # nothing to route; skip the rest
                        interrupted = any(
                            i.kind == "budget-exceeded"
                            for i in self.incidents[incidents_before:]
                        )
                        stage_span.set(
                            incidents=len(self.incidents) - incidents_before,
                            interrupted=interrupted,
                        )
                        cursor_idx = idx if interrupted else idx + 1
                        if cursor_idx < len(sequence):
                            snapshot = self._capture_checkpoint(
                                sequence[cursor_idx],
                                completed=sequence[:cursor_idx],
                            )
                            self.checkpoints[stage] = snapshot
                            if interrupted and self.interrupt_checkpoint is None:
                                self.interrupt_checkpoint = snapshot
                # Post-flow faults ("final" boundary) and the repair pass
                # for every net a mid-flow fault ripped.  Supervised like
                # a stage: a repair crash degrades, never raises.
                self._apply_fault_events("final")
                if self._fault_damaged:
                    with self.tracer.span("repair", category="stage"):
                        self._supervised("repair", self._repair_damaged)
                        self._check_occupancy("repair")
            return self._collect(time.perf_counter() - started)

    # -- checkpoint/resume ----------------------------------------------------

    @classmethod
    def resume(
        cls,
        design: Design,
        checkpoint: Checkpoint,
        *,
        budget: Optional[Budget] = None,
        carry_counters: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> PacorResult:
        """Rehydrate ``checkpoint`` and re-enter the flow where it stopped.

        The interrupted stage is re-executed on the restored state —
        already-routed nets are kept and skipped, only the unfinished
        work is retried — and the remaining stages follow.  A run
        interrupted exactly at a stage boundary therefore produces the
        same result as the uninterrupted run.

        Args:
            design: the design the checkpoint was taken on (validated
                against the snapshot's embedded design document).
            checkpoint: the snapshot to resume from.
            budget: the fresh compute budget for the continuation; when
                None the checkpointed config's budget limits are
                recreated (with zeroed counters).
            carry_counters: restore the consumed expansion/rip-round
                counters into ``budget``, so the limits bound the total
                spend across all attempts instead of per attempt.
            tracer: tracer for the continuation; when the checkpoint
                carries a trace id, the resumed spans stitch onto the
                interrupted trace (same id, parented root).
            metrics: metrics registry for the continuation; checkpointed
                counter values are folded in so the exported totals
                cover both attempts.
        """
        router = cls.from_checkpoint(
            design,
            checkpoint,
            budget=budget,
            carry_counters=carry_counters,
            tracer=tracer,
            metrics=metrics,
        )
        return router.run()

    @classmethod
    def from_checkpoint(
        cls,
        design: Design,
        checkpoint: Checkpoint,
        *,
        budget: Optional[Budget] = None,
        carry_counters: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> "PacorRouter":
        """Build a router with ``checkpoint``'s state restored, unrun.

        Raises:
            CheckpointFormatError: the snapshot does not fit ``design``
                (different design document), names an unknown stage, or
                references valves/cells the design does not have.
        """
        if design_to_json(design) != checkpoint.design:
            raise CheckpointFormatError(
                f"checkpoint was taken on design "
                f"{checkpoint.design_name!r} and does not match the "
                f"design {design.name!r} being resumed",
                field="design",
            )
        try:
            config = PacorConfig.from_json(dict(checkpoint.config))
        except (TypeError, ValueError) as exc:
            raise CheckpointFormatError(
                f"invalid config document ({exc})", field="config"
            ) from exc
        router = cls(design, config, budget=budget, tracer=tracer, metrics=metrics)
        if carry_counters:
            router.budget.restore_counters(checkpoint.budget)
        obs_doc = checkpoint.observability
        if obs_doc:
            # ``astar.expansions`` is the budget's own counter: restoring
            # it here would pre-charge the fresh budget's limit (and
            # double-count under carry_counters, where the budget restore
            # above already folded it in), so it stays excluded.
            carried = {
                str(name): value
                for name, value in dict(obs_doc.get("counters") or {}).items()
                if name != "astar.expansions"
            }
            router.carried_counters = router.metrics.restore_counters(carried)
            trace_id = obs_doc.get("trace_id")
            if trace_id and router.tracer.enabled:
                router.tracer.link_resume(str(trace_id), obs_doc.get("span_id"))
                router.carried_spans = int(obs_doc.get("spans_recorded") or 0)
        if checkpoint.stage not in router._stage_sequence():
            raise CheckpointFormatError(
                f"unknown resume stage {checkpoint.stage!r} for this "
                f"config (expected one of {router._stage_sequence()})",
                field="stage",
            )
        router._method_name = checkpoint.method
        router._n_multi_clusters = checkpoint.n_multi_clusters
        router._next_net_id = checkpoint.next_net_id
        router.events = list(checkpoint.events)
        router.incidents = [
            Incident.from_json(doc) for doc in checkpoint.incidents
        ]
        router._failure_reasons = {
            int(net_id): reason
            for net_id, reason in checkpoint.failure_reasons.items()
        }
        if checkpoint.fault_map is not None:
            # Applied events were popped before the snapshot; re-arming
            # the restored map fires only the not-yet-applied ones.  The
            # mounted FAULT_NET cells travel in the occupancy snapshot,
            # so no re-mount happens here.
            try:
                router.fault_map = FaultMap.from_json(checkpoint.fault_map)
            except FaultFormatError as exc:
                raise CheckpointFormatError(
                    f"invalid fault map ({exc})", field="fault_map"
                ) from exc
            router._stuck_valves = set(router.fault_map.stuck_valves)
        valve_by_id = design.valve_by_id()
        for doc in checkpoint.nets:
            net = router._net_from_doc(doc, valve_by_id)
            router.nets[net.net_id] = net
        try:
            router.occupancy.import_state(checkpoint.occupancy)
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointFormatError(
                f"invalid occupancy snapshot ({exc})", field="occupancy"
            ) from exc
        if checkpoint.stage == "lm-routing":
            # Clusters the exhausted budget demoted never really failed;
            # give them their LM status back so the re-entered stage
            # retries them with the fresh budget.
            for net in router.nets.values():
                if net.budget_demoted and len(net.valves) >= 2:
                    net.demoted = False
                    net.budget_demoted = False
                    net.kind = "lm-pair" if len(net.valves) == 2 else "lm-tree"
                    net.tree = None
                    net.paths = []
        router._resume_stage = checkpoint.stage
        return router

    def _capture_checkpoint(
        self, cursor: str, completed: Sequence[str]
    ) -> Checkpoint:
        """Snapshot the full mid-flow state; ``cursor`` runs next on resume."""
        budget_doc: Dict[str, object] = dict(self.budget.export_counters())
        budget_doc.update(
            {
                "wall_clock_s": self.budget.wall_clock_s,
                "astar_expansions": self.budget.astar_expansions,
                "rip_rounds": self.budget.rip_rounds,
            }
        )
        observability: Optional[Dict[str, object]] = None
        if self.tracer.enabled or self.metrics.enabled:
            observability = {
                "trace_id": self.tracer.trace_id if self.tracer.enabled else None,
                "span_id": self.tracer.current_span_id(),
                "spans_recorded": (
                    len(self.tracer.spans) if self.tracer.enabled else 0
                ),
                "counters": (
                    self.metrics.counter_values() if self.metrics.enabled else {}
                ),
            }
        snapshot = Checkpoint(
            design=design_to_json(self.design),
            method=self._method_name,
            config=self.config.to_json(),
            stage=cursor,
            completed_stages=list(completed),
            n_multi_clusters=self._n_multi_clusters,
            next_net_id=self._next_net_id,
            nets=[
                self._net_to_doc(net)
                for net in sorted(self.nets.values(), key=lambda n: n.net_id)
            ],
            occupancy=self.occupancy.export_state(),
            pending_escape=(
                list(self._last_escape_pending)
                if cursor == "escape" and self._last_escape_pending is not None
                else None
            ),
            budget=budget_doc,
            events=list(self.events),
            incidents=[incident.to_json() for incident in self.incidents],
            failure_reasons={
                str(net_id): reason
                for net_id, reason in self._failure_reasons.items()
            },
            observability=observability,
            fault_map=(
                self.fault_map.to_json() if self.fault_map is not None else None
            ),
        )
        if self.metrics.enabled:
            # Snapshot size is worth watching (it scales with the design
            # and the routed state), but measuring re-serialises the
            # whole document — only done when metrics are on.
            self.metrics.counter("checkpoint.bytes").inc(
                len(json.dumps(snapshot.to_json()))
            )
        return snapshot

    @staticmethod
    def _path_doc(path: Path) -> List[List[int]]:
        # Layer-0 cells stay [x, y]; upper-layer cells carry z as
        # [x, y, z] — planar snapshots are byte-identical to before.
        return [list(c) for c in path.cells]

    @staticmethod
    def _path_from_doc(doc: Sequence[Sequence[int]]) -> Path:
        return Path(
            [
                cell_point(int(c[0]), int(c[1]), int(c[2]))
                if len(c) == 3
                else Point(int(c[0]), int(c[1]))
                for c in doc
            ]
        )

    def _net_to_doc(self, net: _Net) -> Dict[str, object]:
        tree_doc: Optional[Dict[str, object]] = None
        if net.tree is not None:
            tree_doc = {
                "cluster_id": net.tree.cluster_id,
                "edge_paths": {
                    str(key): self._path_doc(path)
                    for key, path in net.tree.edge_paths.items()
                },
                "sequences": {
                    str(sink): list(keys)
                    for sink, keys in net.tree.sequences.items()
                },
                "root": [net.tree.root.x, net.tree.root.y],
            }
        return {
            "net_id": net.net_id,
            "origin_cluster": net.origin_cluster,
            "valve_ids": [v.id for v in net.valves],
            "length_matching": net.length_matching,
            "kind": net.kind,
            "tree": tree_doc,
            "paths": [self._path_doc(p) for p in net.paths],
            "pin": [net.pin.x, net.pin.y] if net.pin is not None else None,
            "escape_path": (
                self._path_doc(net.escape_path)
                if net.escape_path is not None
                else None
            ),
            "routed": net.routed,
            "demoted": net.demoted,
            "budget_demoted": net.budget_demoted,
            "dead": net.dead,
        }

    def _net_from_doc(
        self, doc: Dict[str, object], valve_by_id: Dict[int, Valve]
    ) -> _Net:
        # A truncated or hand-edited snapshot must surface as a one-line
        # CheckpointFormatError (CLI exit 2), never a raw KeyError
        # traceback — the whole parse runs under one trap.
        try:
            return self._net_from_doc_unchecked(doc, valve_by_id)
        except CheckpointFormatError:
            raise
        except KeyError as exc:
            raise CheckpointFormatError(
                f"net document {doc.get('net_id', '?')} is missing "
                f"field {exc}",
                field="nets",
            ) from None
        except (TypeError, ValueError, IndexError) as exc:
            raise CheckpointFormatError(
                f"net document {doc.get('net_id', '?')} is malformed "
                f"({type(exc).__name__}: {exc})",
                field="nets",
            ) from None

    def _net_from_doc_unchecked(
        self, doc: Dict[str, object], valve_by_id: Dict[int, Valve]
    ) -> _Net:
        valve_ids = doc["valve_ids"]
        try:
            valves = [valve_by_id[int(vid)] for vid in valve_ids]  # type: ignore[union-attr]
        except KeyError as exc:
            raise CheckpointFormatError(
                f"net {doc.get('net_id')} references unknown valve {exc}",
                field="nets",
            ) from None
        escape_path = (
            self._path_from_doc(doc["escape_path"])  # type: ignore[arg-type]
            if doc.get("escape_path") is not None
            else None
        )
        tree: Optional[RoutedTree] = None
        tree_doc = doc.get("tree")
        if tree_doc is not None:
            tree = RoutedTree(
                cluster_id=int(tree_doc["cluster_id"]),  # type: ignore[index]
                edge_paths={
                    int(key): self._path_from_doc(path_doc)
                    for key, path_doc in tree_doc["edge_paths"].items()  # type: ignore[index]
                },
                sequences={
                    int(sink): [int(k) for k in keys]
                    for sink, keys in tree_doc["sequences"].items()  # type: ignore[index]
                },
                root=Point(*tree_doc["root"]),  # type: ignore[index]
                escape_path=escape_path,
                via_length=self.grid.via_length,
            )
        pin_doc = doc.get("pin")
        return _Net(
            net_id=int(doc["net_id"]),  # type: ignore[arg-type]
            origin_cluster=int(doc["origin_cluster"]),  # type: ignore[arg-type]
            valves=valves,
            length_matching=bool(doc["length_matching"]),
            kind=str(doc["kind"]),
            tree=tree,
            paths=[self._path_from_doc(p) for p in doc.get("paths", [])],  # type: ignore[union-attr]
            pin=Point(int(pin_doc[0]), int(pin_doc[1])) if pin_doc else None,
            escape_path=escape_path,
            routed=bool(doc["routed"]),
            demoted=bool(doc["demoted"]),
            budget_demoted=bool(doc.get("budget_demoted", False)),
            dead=bool(doc.get("dead", False)),
        )

    def _budget_spent(self) -> bool:
        """Return True when any configured budget limit is exhausted."""
        try:
            self.budget.check()
        except BudgetExceeded:
            return True
        return False

    # -- stage supervision ----------------------------------------------------

    def _supervised(self, stage: str, fn: Callable, *args):
        """Run one stage, turning any escape of control into an incident.

        Stages handle their *expected* failures internally (demotion,
        de-clustering, solver fallback); whatever still escapes —
        exhausted budgets, structured errors, foreign exceptions — is
        recorded here and the flow moves on with what it has.
        """
        try:
            return fn(*args)
        except BudgetExceeded as exc:
            self._incident(stage, "budget-exceeded", str(exc))
        except PacorError as exc:
            self._incident(
                stage, "stage-failure", str(exc), severity=Severity.FATAL
            )
            self.occupancy.repair()
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            self._incident(
                stage,
                "stage-failure",
                f"unexpected {type(exc).__name__}: {exc}",
                severity=Severity.FATAL,
            )
            self.occupancy.repair()
        return None

    def _incident(
        self,
        stage: str,
        kind: str,
        message: str,
        *,
        net_id: Optional[int] = None,
        severity: Severity = Severity.DEGRADED,
    ) -> None:
        """Record a structured incident (and mirror it into the log)."""
        self.incidents.append(
            Incident(
                stage=stage,
                kind=kind,
                message=message,
                net_id=net_id,
                severity=severity,
                span_id=self.tracer.current_span_id(),
            )
        )
        self._log(f"[{stage}] {kind}: {message}")

    def _check_occupancy(self, stage: str) -> None:
        """Detect (and repair) corrupted occupancy bookkeeping."""
        bad = self.occupancy.repair()
        if bad:
            self._incident(
                stage,
                "occupancy-corruption",
                f"occupancy bookkeeping inconsistent at {len(bad)} cells; "
                f"rebuilt net buckets from the owner array",
            )

    def _isolate_net_fault(self, stage: str, net: _Net, exc: Exception) -> None:
        """Contain a per-net fault: strip the net's routing, keep going."""
        self._incident(
            stage,
            "net-failure",
            f"{type(exc).__name__}: {exc}",
            net_id=net.net_id,
        )
        valve_cells = {v.position for v in net.valves}
        self.occupancy.release_cells(
            self.occupancy.cells_of(net.net_id) - valve_cells
        )
        net.paths = []
        net.tree = None
        self._failure_reasons[net.net_id] = (
            f"isolated fault during {stage}: {type(exc).__name__}"
        )

    # -- physical faults -----------------------------------------------------

    def _apply_fault_events(self, stage: str) -> None:
        """Fire the physical faults due at this stage boundary.

        Two sources feed the same application path: timed events of the
        run's :class:`~repro.robustness.faultmap.FaultMap` whose stage
        matches, and the seeded chaos injector's ``cell_blockage`` /
        ``valve_stuck`` points (satellite of the fault model — the
        injector picks deterministic victims, so a seeded storm run is
        reproducible).  Fault-free runs take the two cheap early-outs
        and touch nothing.
        """
        events: List[FaultEvent] = []
        if self.fault_map is not None:
            events.extend(self.fault_map.pop_events(stage))
        events.extend(self._injected_events(stage))
        for event in events:
            if event.valve is not None:
                self._apply_valve_stuck(stage, int(event.valve))
            elif event.cell is not None:
                self._apply_cell_fault(stage, event.cell)

    def _injected_events(self, stage: str) -> List[FaultEvent]:
        """Poll the chaos injector for physical faults at this boundary."""
        out: List[FaultEvent] = []
        if faults.fires("valve_stuck"):
            victim = self._pick_stuck_victim()
            if victim is not None:
                out.append(FaultEvent(stage=stage, valve=victim))
        if faults.fires("cell_blockage"):
            cell = self._pick_blockage_victim()
            if cell is not None:
                out.append(FaultEvent(stage=stage, cell=cell))
        return out

    def _pick_stuck_victim(self) -> Optional[int]:
        """Return the lowest-id valve that is not already stuck."""
        for valve in sorted(self.design.valves, key=lambda v: v.id):
            if valve.id not in self._stuck_valves:
                return valve.id
        return None

    def _pick_blockage_victim(self) -> Optional[Point]:
        """Return a deterministic cell for an injected blockage.

        Preferably the minimal routed cell id owned by a live net (so the
        fault actually damages something, exercising the repair path);
        before any routing exists, the minimal free cell.  Valve
        positions and pins are excluded — a valve hit is the
        ``valve_stuck`` point's job.
        """
        skip = {self.grid.index(v.position) for v in self.design.valves}
        skip.update(
            self.grid.index(n.pin)
            for n in self.nets.values()
            if n.pin is not None
        )
        best: Optional[int] = None
        for net_id, bucket in self.occupancy.id_buckets():
            if net_id == FAULT_NET:
                continue
            for cid in bucket:
                if cid not in skip and (best is None or cid < best):
                    best = cid
        if best is None:
            mask = self.grid.obstacle_mask()
            for cid in range(self.grid.size):
                if not mask[cid] and self.occupancy.owner_id(cid) == FREE:
                    if cid not in skip:
                        best = cid
                        break
        if best is None:
            return None
        return self.grid.point(best)

    def _apply_cell_fault(self, stage: str, cell: Point) -> None:
        """Block one cell mid-flow, ripping whatever routes through it."""
        if not self.grid.in_bounds(cell):
            return
        valve_at = next(
            (v for v in self.design.valves if v.position == cell), None
        )
        if valve_at is not None:
            # A fault on a valve seat is the valve failing, not a channel
            # blockage — same normalisation FaultMap.normalized applies.
            self._apply_valve_stuck(stage, valve_at.id)
            return
        cid = self.grid.index(cell)
        if self.occupancy.owner_id(cid) == FAULT_NET:
            return  # already faulty
        if self.fault_map is None:
            self.fault_map = FaultMap()
        self.fault_map.add_cell(cell)
        owner = self.occupancy.owner_id(cid)
        if owner != FREE:
            net = self.nets.get(owner)
            if net is not None:
                self._damage_net(
                    stage, net, f"cell ({cell.x}, {cell.y}) blocked by fault"
                )
        self.occupancy.release_cell_ids([cid])
        self.occupancy.occupy_ids([cid], FAULT_NET)
        self._incident(
            stage,
            "physical-fault",
            f"cell ({cell.x}, {cell.y}) blocked",
            net_id=owner if owner >= 0 else None,
            severity=Severity.INFO,
        )

    def _apply_valve_stuck(self, stage: str, vid: int) -> None:
        """Mark one valve stuck mid-flow, shrinking or killing its net."""
        if vid in self._stuck_valves:
            return
        valve = self.design.valve_by_id().get(vid)
        if valve is None:
            return
        self._stuck_valves.add(vid)
        if self.fault_map is None:
            self.fault_map = FaultMap()
        self.fault_map.add_valve(vid)
        owner_net = next(
            (
                n
                for n in self.nets.values()
                if not n.dead and any(v.id == vid for v in n.valves)
            ),
            None,
        )
        if owner_net is not None:
            survivors = [v for v in owner_net.valves if v.id != vid]
            if survivors:
                self._damage_net(
                    stage, owner_net, f"valve {vid} stuck mid-flow"
                )
                owner_net.valves = survivors
                if len(survivors) == 1:
                    owner_net.kind = "singleton"
            else:
                self._kill_net(owner_net, vid)
        # The stuck valve's seat becomes a faulty cell: nothing may ever
        # route through an inoperable valve.
        cid = self.grid.index(valve.position)
        if self.occupancy.owner_id(cid) != FAULT_NET:
            self.occupancy.release_cell_ids([cid])
            self.occupancy.occupy_ids([cid], FAULT_NET)
        self._incident(
            stage,
            "physical-fault",
            f"valve {vid} stuck",
            net_id=owner_net.net_id if owner_net is not None else None,
            severity=Severity.INFO,
        )

    def _damage_net(self, stage: str, net: _Net, note: str) -> None:
        """Rip a fault-hit net and queue it for the post-flow repair pass."""
        if net.dead or net.net_id in self._fault_damaged:
            return
        valve_ids = {self.grid.index(v.position) for v in net.valves}
        old_ids = set(self.occupancy.cells_of_ids(net.net_id))
        self.occupancy.release_cell_ids(old_ids - valve_ids)
        net.tree = None
        net.paths = []
        net.escape_path = None
        net.routed = False
        self._fault_damaged[net.net_id] = note
        self._fault_old_cells[net.net_id] = old_ids
        self._failure_reasons[net.net_id] = note
        self._log(f"fault: net {net.net_id} damaged ({note})")

    def _kill_net(self, net: _Net, vid: int) -> None:
        """Retire a net whose last operable valve just failed."""
        self.occupancy.release_ids(net.net_id)
        net.tree = None
        net.paths = []
        net.escape_path = None
        net.routed = False
        net.dead = True
        self._fault_damaged.pop(net.net_id, None)
        self._fault_old_cells.pop(net.net_id, None)
        self._failure_reasons[net.net_id] = (
            f"valve {vid} stuck (physical fault)"
        )
        self._log(f"fault: net {net.net_id} dead (no operable valves left)")

    def _repair_damaged(self) -> None:
        """Heal every fault-damaged net through the repair ladder.

        Runs once, after the last stage: the surviving occupancy is
        final by then, so the ladder re-routes only the ripped nets
        against it — the incremental alternative to a full re-route.
        """
        damaged = sorted(
            nid for nid in self._fault_damaged if not self.nets[nid].dead
        )
        if not damaged:
            return
        # Imported lazily: repro.robustness must stay import-cycle-free
        # (repair pulls in the routing stack, which imports occupancy,
        # which imports the robustness package during initialisation).
        from repro.robustness.repair import NetRepair, RepairEngine

        engine = RepairEngine(self.design, budget=self.budget)
        fault_cids = set(self.occupancy.cells_of_ids(FAULT_NET))
        used_pins = {
            n.pin for n in self.nets.values() if n.routed and n.pin is not None
        }
        for nid in damaged:
            net = self.nets[nid]
            candidates = (
                []
                if net.pin is not None
                else [p for p in self.design.control_pins if p not in used_pins]
            )
            spec = NetRepair(
                net_id=nid,
                origin_cluster=net.origin_cluster,
                valve_ids=[v.id for v in net.valves],
                terminals=[v.position for v in net.valves],
                pin=net.pin,
                candidate_pins=candidates,
                length_matching=net.length_matching and not net.demoted,
                delta=self.delta,
                old_cell_ids=set(self._fault_old_cells.get(nid, set())),
                failure_note=self._fault_damaged[nid],
            )
            report, rung = engine.repair_net(self.occupancy, spec, fault_cids)
            if report is None:
                self._failure_reasons[nid] = (
                    f"{self._fault_damaged[nid]}; repair ladder exhausted"
                )
                net.routed = False
                # The failed ladder released the whole bucket; give the
                # surviving valves their seats back.
                self.occupancy.occupy([v.position for v in net.valves], nid)
                self._incident(
                    "repair",
                    "net-failure",
                    f"net {nid} could not be re-routed around the fault",
                    net_id=nid,
                )
            else:
                if net.length_matching and not spec.length_matching:
                    # The net was demoted before the fault: report it
                    # under the origin cluster's LM constraint, unmatched.
                    report = replace(
                        report, length_matching=True, matched=False
                    )
                net.routed = True
                net.pin = spec.pin
                if spec.pin is not None:
                    used_pins.add(spec.pin)
                net.repaired_report = report
                self._log(f"repair: net {nid} re-routed via {rung} rung")

    # -- stage 1: clustering --------------------------------------------------

    def _stage_clustering(self) -> List[Cluster]:
        # Stuck valves cannot be actuated: they are filtered out of the
        # clustering input (an LM group shrunk below two survivors simply
        # yields smaller clusters) and each becomes a dead net so the
        # result still accounts for it.
        stuck = self._stuck_valves
        live_valves = [v for v in self.design.valves if v.id not in stuck]
        live_groups = [
            kept
            for group in self.design.lm_groups
            if (kept := [vid for vid in group if vid not in stuck])
        ]
        if not live_valves:
            self._log("clustering: every valve stuck; nothing to route")
            clusters: List[Cluster] = []
            self._next_net_id = 0
        else:
            clusters = cluster_valves(live_valves, live_groups)
            self._next_net_id = max(c.id for c in clusters) + 1
        valve_by_id = self.design.valve_by_id()
        for vid in sorted(stuck):
            net_id = self._next_net_id
            self._next_net_id += 1
            self.nets[net_id] = _Net(
                net_id=net_id,
                origin_cluster=net_id,
                valves=[valve_by_id[vid]],
                length_matching=False,
                kind="singleton",
                dead=True,
            )
            self._failure_reasons[net_id] = (
                f"valve {vid} stuck (physical fault)"
            )
        for cluster in clusters:
            self.occupancy.occupy([v.position for v in cluster.valves], cluster.id)
            lm = cluster.size >= 2 and (
                cluster.length_matching or self.config.match_all_clusters
            )
            if lm:
                kind = "lm-pair" if cluster.size == 2 else "lm-tree"
            elif cluster.size >= 2:
                kind = "ordinary"
            else:
                kind = "singleton"
            self.nets[cluster.id] = _Net(
                net_id=cluster.id,
                origin_cluster=cluster.id,
                valves=list(cluster.valves),
                length_matching=lm,
                kind=kind,
            )
        self._n_multi_clusters = sum(1 for c in clusters if c.size >= 2)
        self._log(
            f"clustering: {len(clusters)} clusters "
            f"({self._n_multi_clusters} multi-valve)"
        )
        return clusters

    # -- stage 2: length-matching routing -------------------------------------

    def _stage_lm_routing(self) -> None:
        # Nets that already carry a routed tree (possible only when the
        # stage is re-entered by a resumed run) are complete; only the
        # still-unrouted LM clusters go through candidates/negotiation.
        lm_nets = [
            n
            for n in self.nets.values()
            if n.kind in ("lm-tree", "lm-pair") and n.tree is None
        ]
        if not lm_nets:
            return

        all_valve_cells = {v.position for v in self.design.valves}
        # A valve whose surroundings leave a single free cell (typical for
        # valves embedded in flow channels) depends on that cell for every
        # connection; merging nodes must never squat on it.
        critical_access: Set[Point] = set()
        for valve in self.design.valves:
            free = [
                q
                for q in valve.position.neighbors4()
                if self.grid.is_free(q) and q not in all_valve_cells
            ]
            if len(free) == 1:
                critical_access.add(free[0])

        # Candidate generation (clusters of 3+ valves).
        candidate_sets: Dict[int, List[CandidateTree]] = {}
        with self.tracer.span("dme-candidates", category="kernel") as cand_span:
            for net in [n for n in lm_nets if n.kind == "lm-tree"]:
                # Internal merging nodes must avoid every valve cell —
                # other clusters' terminals for routability, and the
                # cluster's own sinks because a merging node *on* a sink
                # collapses the balanced tree into a physical loop (the
                # sink would sit at zero distance from the node while the
                # model assumes the full balanced length).
                try:
                    cands = generate_candidates(
                        self.grid,
                        net.net_id,
                        [v.position for v in net.valves],
                        k=self.config.k_candidates,
                        blocked=all_valve_cells | critical_access,
                        skew_bound_h=(
                            2 * self.delta if self.config.bounded_skew_dme else 0
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 - per-net isolation
                    self._incident(
                        "lm-routing",
                        "net-failure",
                        f"candidate generation failed "
                        f"({type(exc).__name__}: {exc})",
                        net_id=net.net_id,
                    )
                    self._demote_lm(net, reason="candidate generation failed")
                    continue
                if cands:
                    candidate_sets[net.net_id] = cands
                else:
                    self._demote_lm(net, reason="no embeddable DME candidate")
            cand_span.set(clusters=len(candidate_sets))

        # Candidate selection (Section 4.2) — or first-candidate baseline.
        chosen: Dict[int, CandidateTree] = {}
        if candidate_sets:
            ordered_ids = sorted(candidate_sets)
            if self.config.enable_selection and len(ordered_ids) >= 1:
                instance = SelectionInstance(
                    [candidate_sets[i] for i in ordered_ids], lam=self.config.lam
                )
                solver = {
                    SelectionSolver.EXACT: solve_exact,
                    SelectionSolver.GREEDY: solve_greedy,
                    SelectionSolver.LOCAL: solve_local_search,
                }[self.config.selection_solver]
                with self.tracer.span(
                    "mwcp-selection",
                    category="kernel",
                    solver=self.config.selection_solver.value,
                    clusters=len(ordered_ids),
                ):
                    selection = solver(instance)
                for idx, cid in enumerate(ordered_ids):
                    chosen[cid] = candidate_sets[cid][selection.choice[idx]]
                self._log(
                    f"selection: {self.config.selection_solver.value} objective "
                    f"{selection.objective:.3f} over {len(ordered_ids)} clusters"
                )
            else:
                for cid in ordered_ids:
                    chosen[cid] = candidate_sets[cid][0]
                self._log("selection: disabled (first candidate per cluster)")

        # Negotiation-based routing of all LM edges (Algorithm 1).
        requests: List[RouteRequest] = []
        edge_owner: Dict[int, Tuple[int, Optional[int]]] = {}
        next_edge = 0
        for cid, tree in chosen.items():
            for edge_idx, edge in enumerate(tree.edges()):
                requests.append(
                    RouteRequest(next_edge, cid, (edge.child,), (edge.parent,))
                )
                edge_owner[next_edge] = (cid, edge_idx)
                next_edge += 1
        for net in [n for n in lm_nets if n.kind == "lm-pair" and not n.demoted]:
            a, b = net.valves[0].position, net.valves[1].position
            requests.append(RouteRequest(next_edge, net.net_id, (a,), (b,)))
            edge_owner[next_edge] = (net.net_id, None)
            next_edge += 1

        router = NegotiationRouter(
            self.grid,
            base_cost=self.config.history_base,
            alpha=self.config.history_alpha,
            gamma=self.config.gamma,
            max_expansions=self.config.max_astar_expansions,
        )
        with self.tracer.span(
            "negotiation", category="kernel", edges=len(requests)
        ) as neg_span:
            outcome = router.route(requests, self.occupancy, budget=self.budget)
            neg_span.set(
                iterations=outcome.iterations,
                failed=len(outcome.failed_edges),
                aborted=outcome.aborted,
            )
        self._log(
            f"negotiation: {len(requests)} edges, {outcome.iterations} iterations, "
            f"{len(outcome.failed_edges)} failed"
        )
        if outcome.aborted:
            self._incident(
                "lm-routing",
                "budget-exceeded",
                "negotiation aborted: compute budget exhausted; "
                "unrouted clusters demoted to MST routing",
            )

        failed_nets = {edge_owner[e][0] for e in outcome.failed_edges}
        for cid, tree in chosen.items():
            net = self.nets[cid]
            if cid in failed_nets:
                # The paper reconstructs the DME tree when negotiation
                # gives up: retry the cluster's remaining candidates
                # one at a time before demoting to MST routing (skipped
                # when the budget is already gone).
                if not outcome.aborted and self._retry_candidates(
                    net, candidate_sets.get(cid, []), tree
                ):
                    continue
                self._demote_lm(net, reason="negotiation failure")
                if outcome.aborted or self._budget_spent():
                    net.budget_demoted = True
                continue
            paths = {
                edge_idx: outcome.paths[eid]
                for eid, (owner, edge_idx) in edge_owner.items()
                if owner == cid and edge_idx is not None
            }
            net.tree = routed_tree_from_candidate(
                tree, paths, via_length=self.grid.via_length
            )
        for net in [n for n in lm_nets if n.kind == "lm-pair"]:
            if net.demoted:
                continue
            eids = [e for e, (owner, _) in edge_owner.items() if owner == net.net_id]
            if not eids or net.net_id in failed_nets:
                self._demote_lm(net, reason="negotiation failure")
                if outcome.aborted or self._budget_spent():
                    net.budget_demoted = True
                continue
            net.tree = routed_tree_from_pair(
                net.net_id,
                outcome.paths[eids[0]],
                via_length=self.grid.via_length,
            )
        if not outcome.aborted:
            # A budget that died inside candidate retries (or right at the
            # end of negotiation) never set ``aborted``; surface it here so
            # the run's resume cursor stays on this stage.
            try:
                self.budget.check("lm-routing")
            except BudgetExceeded as exc:
                self._incident("lm-routing", "budget-exceeded", str(exc))

    def _retry_candidates(
        self,
        net: _Net,
        candidates: Sequence[CandidateTree],
        failed_tree: CandidateTree,
    ) -> bool:
        """Try the cluster's alternative DME candidates after a failure.

        Releases the failed partial routing, then routes each remaining
        candidate's edges in isolation (short negotiation).  On success
        the net's routed tree is installed and True returned.
        """
        valve_cells = {v.position for v in net.valves}
        for candidate in candidates:
            if candidate is failed_tree:
                continue
            self.occupancy.release_cells(
                self.occupancy.cells_of(net.net_id) - valve_cells
            )
            requests = [
                RouteRequest(idx, net.net_id, (edge.child,), (edge.parent,))
                for idx, edge in enumerate(candidate.edges())
            ]
            router = NegotiationRouter(
                self.grid,
                base_cost=self.config.history_base,
                alpha=self.config.history_alpha,
                gamma=max(2, self.config.gamma // 3),
                max_expansions=self.config.max_astar_expansions,
            )
            outcome = router.route(requests, self.occupancy, budget=self.budget)
            if outcome.aborted:
                break
            if outcome.success:
                net.tree = routed_tree_from_candidate(
                    candidate, outcome.paths, via_length=self.grid.via_length
                )
                self._log(
                    f"cluster {net.net_id}: alternative DME candidate routed "
                    f"after negotiation failure"
                )
                return True
        self.occupancy.release_cells(
            self.occupancy.cells_of(net.net_id) - valve_cells
        )
        return False

    def _demote_lm(self, net: _Net, reason: str) -> None:
        """Demote an LM cluster to ordinary MST routing."""
        self._log(f"demote cluster {net.net_id}: {reason}")
        net.demoted = True
        net.tree = None
        net.paths = []
        net.kind = "ordinary" if len(net.valves) >= 2 else "singleton"
        # Free everything but the valve terminals.
        valve_cells = {v.position for v in net.valves}
        extra = self.occupancy.cells_of(net.net_id) - valve_cells
        self.occupancy.release_cells(extra)

    # -- stage 3: MST routing --------------------------------------------------

    def _stage_mst_routing(self, history: Optional[List[float]] = None) -> None:
        for net in list(self.nets.values()):
            # A net that already has internal channels was routed before
            # an interruption; a resumed run must not route it twice.
            # Dead and fault-damaged nets are the repair pass's problem.
            if net.dead or net.net_id in self._fault_damaged:
                continue
            if net.kind == "ordinary" and net.tree is None and not net.paths:
                # A spent budget fast-fails the whole stage (supervised);
                # any other per-net fault is contained to that net.
                self.budget.check("mst-routing")
                try:
                    self._route_ordinary(net, history)
                except BudgetExceeded:
                    raise
                except Exception as exc:  # noqa: BLE001 - net isolation
                    self._isolate_net_fault("mst-routing", net, exc)

    def _route_ordinary(self, net: _Net, history: Optional[List[float]]) -> None:
        terminals = [v.position for v in net.valves]
        spent_before = self.budget.expansion_counter.value
        with self.tracer.span(
            "mst-net", category="net", net_id=net.net_id, valves=len(terminals)
        ) as net_span:
            outcome = route_cluster_mst(
                self.grid,
                self.occupancy,
                net.net_id,
                terminals,
                history=history,
                max_expansions=self.config.max_astar_expansions,
                budget=self.budget,
            )
            net_span.set(
                astar_expansions=(
                    self.budget.expansion_counter.value - spent_before
                ),
                failed_valves=len(outcome.failed),
            )
        net.paths = list(outcome.paths)
        if outcome.failed:
            self._log(
                f"decluster net {net.net_id}: {len(outcome.failed)} valves split off"
            )
            for idx in outcome.failed:
                valve = net.valves[idx]
                self._spawn_singleton(net, valve)
            net.valves = [
                v for i, v in enumerate(net.valves) if i not in set(outcome.failed)
            ]
            if len(net.valves) == 1:
                net.kind = "singleton"

    def _spawn_singleton(self, parent: _Net, valve: Valve) -> None:
        """Split one valve off ``parent`` into its own net."""
        new_id = self._next_net_id
        self._next_net_id += 1
        self.occupancy.release_cells([valve.position])
        self.occupancy.occupy([valve.position], new_id)
        self.nets[new_id] = _Net(
            net_id=new_id,
            origin_cluster=parent.origin_cluster,
            valves=[valve],
            length_matching=parent.length_matching,
            kind="singleton",
            demoted=parent.length_matching,
        )
        if self._escape_pending is not None:
            self._escape_pending.add(new_id)

    # -- stage 4: escape routing -----------------------------------------------

    def _escape_taps(self, net: _Net) -> Tuple[Point, ...]:
        """Tap cells per Section 5 by net kind.

        Escape routing is a layer-0 subproblem, so only planar cells
        (2-tuples under the mixed-arity rule) can tap it; a demoted
        net's upper-layer channel cells are skipped.  Valve terminals
        are always planar, so the tap set is never emptied by this.
        """
        if net.tree is not None:
            return (net.tree.root,)
        cells = self.occupancy.cells_of(net.net_id)
        return tuple(sorted(c for c in cells if len(c) == 2))

    def _stage_escape(self) -> None:
        """Escape routing with incremental commit and rip-up (Section 3/5).

        Each round solves one global min-cost flow for the still-pending
        sources and *commits* every routed path immediately; failed
        sources then trigger blocking-net rip-up.  Ripping may uncommit a
        previously committed escape path (when only that path blocks) or
        rip a net's internal channels (demoting LM clusters).  Per-net
        rip counters stop oscillation.

        The stage is budget-supervised: an exhausted compute budget stops
        the rounds, and whatever is still pending is reported unrouted
        with a per-net failure reason instead of hanging the flow.
        """
        pins = list(self.design.control_pins)
        # A multi-valve net that never got internal channels (its routing
        # stage was cut short by the budget or a fault) must not escape as
        # one net: the pin would reach a single valve while the report
        # claimed the whole net routed.  Split it so each valve escapes
        # on its own.
        for net in list(self.nets.values()):
            if net.dead or net.net_id in self._fault_damaged:
                continue
            if len(net.valves) >= 2 and net.tree is None and not net.paths:
                self._log(
                    f"decluster net {net.net_id}: no internal channels "
                    f"before escape"
                )
                for valve in net.valves[1:]:
                    self._spawn_singleton(net, valve)
                net.valves = net.valves[:1]
                net.kind = "singleton"
        # Fresh runs start with every net pending; a resumed run keeps
        # the escapes committed before the interruption and re-queues
        # only what is still unrouted.
        pending: Set[int] = {
            net_id
            for net_id, net in self.nets.items()
            if not net.routed
            and not net.dead
            and net_id not in self._fault_damaged
        }
        self._escape_pending = pending
        self._last_escape_pending = None
        try:
            self._escape_rounds(pending, pins)
            if pending:
                self._force_completion(pending, pins)
        except BudgetExceeded as exc:
            self._last_escape_pending = sorted(pending)
            self._incident("escape", "budget-exceeded", str(exc))
        finally:
            self._escape_pending = None
            for net_id in pending:
                self.nets[net_id].routed = False
                self._failure_reasons.setdefault(
                    net_id, "escape routing gave up before reaching a control pin"
                )

    def _escape_rounds(self, pending: Set[int], pins: Sequence[Point]) -> None:
        """The min-cost-flow escape rounds with rip-up in between."""
        rip_counts: Dict[int, int] = {}
        fail_counts: Dict[int, int] = {}
        rounds = self.config.max_ripup_rounds
        for round_idx in range(rounds + 1):
            if not pending:
                break
            self.budget.charge_rip_round("escape")
            obs.counter("escape.rounds").inc()
            obs.counter("escape.rip_rounds").inc()
            with self.tracer.span(
                "escape-round",
                category="round",
                round=round_idx,
                pending=len(pending),
            ) as round_span:
                sources = [
                    EscapeSource(nid, self._escape_taps(self.nets[nid]))
                    for nid in sorted(pending)
                ]
                used_pins = {
                    n.pin
                    for n in self.nets.values()
                    if n.routed and n.pin is not None
                }
                available_pins = [p for p in pins if p not in used_pins]
                blocked: Set[Point] = set()
                for nid in self.occupancy.nets():
                    blocked |= self.occupancy.cells_of(nid)
                try:
                    result = solve_escape(
                        self.grid, sources, available_pins, blocked
                    )
                except Exception as exc:  # noqa: BLE001 - solver isolation
                    self._incident(
                        "escape",
                        "solver-fallback",
                        f"min-cost-flow solver failed "
                        f"({type(exc).__name__}: {exc}); "
                        f"falling back to sequential escape routing",
                    )
                    result = solve_escape_sequential(
                        self.grid, sources, available_pins, blocked
                    )
                self._log(
                    f"escape round {round_idx}: {result.flow_value}/"
                    f"{len(sources)} routed, cost {result.total_cost:.0f}"
                )
                round_span.set(
                    routed=result.flow_value, unrouted=len(result.unrouted)
                )
                for net_id, path in result.paths.items():
                    self._commit_escape(
                        self.nets[net_id], path, result.pin_of[net_id]
                    )
                    pending.discard(net_id)
                if not result.unrouted or round_idx == rounds:
                    break
                # A cluster whose single tap (tree root / pair midpoint)
                # sits in a hopeless corridor will fail round after round
                # while its blockers shuffle; after three failures demote
                # it so any of its path cells can tap (completion beats
                # matching).
                self_ripped = False
                for net_id in result.unrouted:
                    fail_counts[net_id] = fail_counts.get(net_id, 0) + 1
                    net = self.nets[net_id]
                    if fail_counts[net_id] >= 3 and net.tree is not None:
                        self._rip_and_reroute(net, pending)
                        self_ripped = True
                blockers_ripped = self._ripup_round(
                    result.unrouted, round_idx, pins, pending, rip_counts
                )
                if not (self_ripped or blockers_ripped):
                    self._log(
                        "escape: nothing left to rip up; "
                        "accepting partial result"
                    )
                    break

    def _force_completion(self, pending: Set[int], pins: Sequence[Point]) -> None:
        """Last-resort sequential escape for nets the flow rounds starved.

        The paper iterates rip-up/reroute "until all the valves are
        successfully routed"; this pass realises that guarantee: each
        stubborn net is routed point-to-pin by A*, ripping *any* blocking
        net (matched LM clusters included, at their higher cost).  Nets
        routed here become protected, so progress is monotone and the
        pass terminates.
        """
        # Nets routed by this pass become *soft*-protected: the probe may
        # still cross them, but only at a prohibitive cost, so they are
        # ripped only when literally nothing else unwalls the victim.
        # Completion outranks matching, as in the paper.
        protected: Set[int] = set()
        hopeless: Set[int] = set()
        # Two nets contending for a single-channel corridor would rip each
        # other forever; after three force-routes a net becomes permanent
        # (never rippable again) so the contest resolves one way.
        force_counts: Dict[int, int] = {}
        permanent_nets: Set[int] = set()
        valve_cells = {v.position for v in self.design.valves}
        guard = 0
        guard_limit = 10 * max(1, len(self.nets))
        while pending - hopeless:
            guard += 1
            if guard > guard_limit:
                stuck = sorted(pending - hopeless)
                error = RouterStuck(
                    f"no convergence after {guard_limit} force-route attempts",
                    stage="force-completion",
                    pending=stuck,
                )
                self._incident("force-completion", "router-stuck", str(error))
                for nid in stuck:
                    self._failure_reasons.setdefault(
                        nid, "force-completion rip-up loop stopped converging"
                    )
                break
            self.budget.charge_rip_round("force-completion")
            obs.counter("escape.rip_rounds").inc()
            net_id = min(pending - hopeless)
            net = self.nets[net_id]
            taps = self._escape_taps(net)
            used_pins = {
                n.pin for n in self.nets.values() if n.routed and n.pin is not None
            }
            available = [p for p in pins if p not in used_pins]
            rippable = set(self.nets) - protected - permanent_nets - {net_id}
            rip_cost = {
                nid: self.config.lm_rip_cost
                for nid in rippable
                if self.nets[nid].tree is not None
            }
            probe = find_blocking_nets(
                self.grid,
                self.occupancy,
                list(taps),
                available,
                rippable=rippable,
                rip_cost=rip_cost,
                permanent=valve_cells,
            )
            if probe is None and protected - permanent_nets:
                # Last resort: the victim is walled in by channels this
                # pass already committed — allow crossing them, at a
                # prohibitive cost so only the unavoidable one is ripped.
                rip_cost = dict(rip_cost)
                for nid in protected:
                    rip_cost[nid] = self.config.protected_rip_cost
                probe = find_blocking_nets(
                    self.grid,
                    self.occupancy,
                    list(taps),
                    available,
                    rippable=(set(self.nets) - permanent_nets - {net_id}),
                    rip_cost=rip_cost,
                    permanent=valve_cells,
                )
            blocker_ids: Sequence[int] = ()
            if probe is None:
                if net.tree is not None:
                    self._rip_and_reroute(net, pending)
                    continue
                if self.grid.layers == 1:
                    self._incident(
                        "force-completion",
                        "net-failure",
                        "walled in by unrippable channels; giving up",
                        net_id=net_id,
                    )
                    self._failure_reasons[net_id] = (
                        "walled in by unrippable channels"
                    )
                    hopeless.add(net_id)
                    continue
                # The probe is planar and cannot see over-the-wall via
                # paths on a layered grid; attempt the full-grid A*
                # (rip-free) before giving up.
            else:
                blocker_ids = sorted(probe.nets)
            # Release the blockers but re-route them only after the victim
            # has escaped, so they cannot reclaim the freed corridor.
            ripped: List[Tuple[_Net, Set[Point]]] = []
            for blocker_id in blocker_ids:
                blocker = self.nets[blocker_id]
                protected.discard(blocker_id)
                before = self.occupancy.cells_of(blocker_id)
                self._rip_and_reroute(blocker, pending, reroute=False)
                ripped.append((blocker, before - self.occupancy.cells_of(blocker_id)))
            free_pins = [
                p
                for p in available
                if self.occupancy.is_routable(p, net_id)
            ]
            # The escape channel must leave the tap directly; riding along
            # the net's own tree channels would splice the network and
            # silently change the matched lengths.
            own_non_tap = self.occupancy.cells_of(net_id) - set(taps)
            path, reason = astar_route_detailed(
                self.grid,
                taps,
                free_pins,
                net=net_id,
                occupancy=self.occupancy,
                extra_obstacles=own_non_tap or None,
                budget=self.budget,
            )
            if path is not None:
                self._commit_escape(net, path, path.target)
                self._log(f"escape: force-routed net {net_id} to {path.target}")
                pending.discard(net_id)
                protected.add(net_id)
                force_counts[net_id] = force_counts.get(net_id, 0) + 1
                if force_counts[net_id] >= 3:
                    permanent_nets.add(net_id)
            else:
                if reason == ALL_SOURCES_BLOCKED:
                    self._failure_reasons[net_id] = (
                        "every escape tap cell is blocked"
                    )
                hopeless.add(net_id)
            for blocker, freed in ripped:
                self._reroute_internal(blocker, freed)
        pending &= hopeless

    def _commit_escape(self, net: _Net, path: Path, pin: Point) -> None:
        new_cells = [c for c in path.cells if self.occupancy.owner(c) != net.net_id]
        self.occupancy.occupy(new_cells, net.net_id)
        net.escape_path = path
        net.pin = pin
        net.routed = True
        if net.tree is not None:
            net.tree.escape_path = path

    def _uncommit_escape(self, net: _Net, pending: Set[int]) -> None:
        """Release a committed escape path; the net re-enters the queue."""
        assert net.escape_path is not None
        internal: Set[Point] = set()
        if net.tree is not None:
            for p in net.tree.edge_paths.values():
                internal |= set(p.cells)
        for p in net.paths:
            internal |= set(p.cells)
        internal |= {v.position for v in net.valves}
        self.occupancy.release_cells(set(net.escape_path.cells) - internal)
        net.escape_path = None
        net.pin = None
        net.routed = False
        if net.tree is not None:
            net.tree.escape_path = None
        pending.add(net.net_id)

    def _ripup_round(
        self,
        unrouted: Sequence[int],
        round_idx: int,
        pins: Sequence[Point],
        pending: Set[int],
        rip_counts: Dict[int, int],
    ) -> bool:
        """Rip up the nets blocking failed escape sources.

        A blocker whose probe crossing lies entirely on its *escape* path
        only loses that path (re-queued for the next round); otherwise
        its internal channels are ripped and re-routed, demoting LM
        clusters.  Nets ripped three times become protected.
        """
        allow_lm = round_idx >= self.config.lm_rippable_after
        rippable: Set[int] = set()
        rip_cost: Dict[int, float] = {}
        for net in self.nets.values():
            if rip_counts.get(net.net_id, 0) >= 3:
                continue
            if net.tree is not None:
                if allow_lm or net.routed:
                    # A routed LM net's escape path may always be ripped;
                    # its tree only in later rounds.
                    rippable.add(net.net_id)
                    rip_cost[net.net_id] = self.config.lm_rip_cost
            elif net.kind == "ordinary" or net.routed:
                rippable.add(net.net_id)
        ripped_any = False
        for net_id in unrouted:
            failed = self.nets[net_id]
            probe = find_blocking_nets(
                self.grid,
                self.occupancy,
                list(self._escape_taps(failed)),
                pins,
                rippable=rippable - {net_id},
                rip_cost=rip_cost,
            )
            if probe is None:
                # Not even a probe path exists.  A common cause is a DME
                # root walled in by its own tree edges; ripping the net
                # itself (demotion to MST, where any path cell can tap)
                # restores routability at the cost of the match.
                if failed.tree is not None:
                    self._rip_and_reroute(failed, pending)
                    ripped_any = True
                continue
            for blocker_id in sorted(probe.nets):
                blocker = self.nets[blocker_id]
                rip_counts[blocker_id] = rip_counts.get(blocker_id, 0) + 1
                crossed = probe.crossed_cells.get(blocker_id, set())
                escape_cells = (
                    set(blocker.escape_path.cells)
                    if blocker.escape_path is not None
                    else set()
                )
                if crossed and crossed <= escape_cells:
                    self._log(f"rip escape path of net {blocker_id}")
                    self._uncommit_escape(blocker, pending)
                else:
                    if blocker.escape_path is not None:
                        self._uncommit_escape(blocker, pending)
                    self._rip_and_reroute(blocker, pending)
                rippable.discard(blocker_id)
                ripped_any = True
        return ripped_any

    def _rip_and_reroute(
        self, net: _Net, pending: Set[int], *, reroute: bool = True
    ) -> None:
        """Rip a net's internal channels and (optionally) re-route them.

        With ``reroute=False`` the cells are only released; the caller
        re-routes later via :meth:`_reroute_internal` — the force pass
        uses this so the victim escapes *before* the blocker reclaims
        space.
        """
        self._log(f"rip up net {net.net_id} ({net.kind})")
        if net.escape_path is not None:
            self._uncommit_escape(net, pending)
        if net.tree is not None:
            self._demote_lm(net, reason="ripped during escape routing")
        valve_cells = {v.position for v in net.valves}
        old_cells = self.occupancy.cells_of(net.net_id) - valve_cells
        self.occupancy.release_cells(old_cells)
        net.paths = []
        # Dead and fault-damaged nets never re-enter the escape queue;
        # the post-flow repair pass owns them.
        if not net.dead and net.net_id not in self._fault_damaged:
            pending.add(net.net_id)
        if reroute:
            self._reroute_internal(net, old_cells)

    def _reroute_internal(self, net: _Net, avoid: Set[Point]) -> None:
        """Re-route a ripped net's internal channels, avoiding ``avoid``."""
        if net.kind != "ordinary":
            return  # singletons have no internal channel to re-route
        history = [0.0] * self.grid.size
        for cell in avoid:
            history[self.grid.index(cell)] = _RIP_HISTORY_PENALTY
        self._route_ordinary(net, history)

    # -- stage 5: detouring -----------------------------------------------------

    def _stage_detour(self) -> None:
        for net in sorted(self.nets.values(), key=lambda n: n.net_id):
            if net.tree is None:
                continue
            self.budget.check_wall_clock("detour")
            with self.tracer.span(
                "detour-net", category="net", net_id=net.net_id
            ) as net_span:
                try:
                    outcome = detour_cluster(
                        self.grid,
                        self.occupancy,
                        net.tree,
                        self.delta,
                        theta=self.config.theta,
                    )
                except Exception as exc:  # noqa: BLE001 - per-net isolation
                    # The tree stays routed (possibly unmatched);
                    # detouring is an improvement pass, so the fault costs
                    # matching quality only, never completion.
                    net_span.set(error=f"{type(exc).__name__}: {exc}")
                    self._incident(
                        "detour",
                        "net-failure",
                        f"{type(exc).__name__}: {exc}",
                        net_id=net.net_id,
                    )
                    continue
                net_span.set(
                    matched=outcome.matched,
                    rounds=outcome.iterations,
                    detoured_edges=outcome.detoured_edges,
                )
            if outcome.detoured_edges:
                self._log(
                    f"detour cluster {net.net_id}: {outcome.detoured_edges} edges "
                    f"in {outcome.iterations} rounds, matched={outcome.matched}"
                )

    # -- result -------------------------------------------------------------------

    def _collect(self, runtime: float) -> PacorResult:
        unrouted = sum(1 for n in self.nets.values() if not n.routed)
        if self.metrics.enabled:
            self.metrics.gauge("nets.total").set(len(self.nets))
            self.metrics.gauge("nets.unrouted").set(unrouted)
            self.metrics.gauge("incidents.total").set(len(self.incidents))
            self.metrics.gauge("runtime_s").set(runtime)
        result = PacorResult(
            design_name=self.design.name,
            method=self._method_name,
            delta=self.delta,
            n_valves=len(self.design.valves),
            n_lm_clusters=self._n_multi_clusters,
            runtime_s=runtime,
            events=list(self.events),
            incidents=list(self.incidents),
            degraded=(
                unrouted > 0
                or any(i.severity is not Severity.INFO for i in self.incidents)
            ),
            checkpoint=(
                self.interrupt_checkpoint.to_json()
                if self.interrupt_checkpoint is not None
                else None
            ),
        )
        via_segments = 0
        via_nets = 0
        for net in sorted(self.nets.values(), key=lambda n: n.net_id):
            if net.repaired_report is not None:
                # The repair pass already produced the honest report
                # (cells, segments and matching of the re-route).
                result.nets.append(net.repaired_report)
                continue
            cells = frozenset(self.occupancy.cells_of(net.net_id))
            segments = frozenset(
                seg
                for path in net.drawn_paths()
                for seg in segments_of_path(path.cells)
            )
            net_vias = sum(1 for seg in segments if is_via_segment(seg))
            if net_vias and net.routed:
                via_segments += net_vias
                via_nets += 1
            matched: Optional[bool] = None
            mismatch: Optional[int] = None
            sink_lengths: Dict[int, int] = {}
            if net.length_matching:
                if net.tree is not None and net.routed and not net.demoted:
                    equal, _, _ = check_equal(net.tree, self.delta)
                    matched = equal
                    mismatch = net.tree.mismatch()
                    lengths = net.tree.full_lengths()
                    sink_lengths = {
                        net.valves[i].id: lengths[i] for i in lengths
                    }
                else:
                    matched = False
            result.nets.append(
                NetReport(
                    net_id=net.net_id,
                    origin_cluster=net.origin_cluster,
                    valve_ids=[v.id for v in net.valves],
                    length_matching=net.length_matching,
                    routed=net.routed,
                    pin=net.pin,
                    cells=cells,
                    segments=segments,
                    channel_length=(
                        len(segments)
                        + net_vias * (self.grid.via_length - 1)
                        if net.routed
                        else 0
                    ),
                    matched=matched,
                    mismatch=mismatch,
                    sink_lengths=sink_lengths,
                    failure_reason=(
                        None
                        if net.routed
                        else self._failure_reasons.get(
                            net.net_id,
                            "escape routing did not reach a control pin",
                        )
                    ),
                )
            )
        # Via usage counters, incremented only when a via was actually
        # drawn — single-layer runs keep their counter set byte-identical
        # to the planar flow.
        if via_segments:
            obs.counter("via.segments").inc(via_segments)
            obs.counter("via.nets").inc(via_nets)
        return result

    # -- misc ------------------------------------------------------------------

    def _log(self, message: str) -> None:
        self.events.append(message)
