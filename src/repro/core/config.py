"""Configuration of the PACOR flow.

Defaults follow the paper's implementation notes: λ = 0.1 (Eq. 2/3
weighting, routability above mismatch), history base cost 1.0 and
α = 0.1 (Eq. 5), negotiation threshold γ = 10, detour threshold θ = 10,
and length-matching threshold δ = 1 in all experiments.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.robustness.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.robustness.budget import Budget


class SelectionSolver(str, enum.Enum):
    """Which MWCP solver selects the candidate trees (Section 4.2)."""

    EXACT = "exact"  # branch-and-bound (the paper's ILP stand-in)
    GREEDY = "greedy"  # the graph-based construction
    LOCAL = "local"  # swap descent (the UQP stand-in)


class DetourStage(str, enum.Enum):
    """Where in the flow path detouring runs."""

    FINAL = "final"  # PACOR: after escape routing (Section 3)
    AFTER_NEGOTIATION = "after_negotiation"  # the "Detour First" baseline
    NONE = "none"  # no detouring at all (diagnostics)


@dataclass
class PacorConfig:
    """All tunables of the flow; defaults reproduce the paper's setup.

    Attributes:
        delta: length-matching threshold δ (grid units); None uses the
            design's own δ.
        lam: λ of Eqs. (2)-(3).
        history_base: base history cost ``b`` of Eq. (5).
        history_alpha: α of Eq. (5).
        gamma: negotiation iteration threshold γ (Algorithm 1).
        theta: detour iteration threshold θ (Algorithm 2).
        k_candidates: DME candidate trees generated per cluster.
        bounded_skew_dme: build candidate trees with a bounded-skew
            budget of δ instead of zero skew (Ablation E) — saves
            balancing wire by spending the threshold during construction.
        match_all_clusters: treat every multi-valve cluster the
            clustering stage computes as length-matching (the paper
            "aims to route as many clusters as possible under the
            length-matching constraint"); False matches only the
            design's declared LM groups.
        enable_selection: False reproduces the "w/o Sel" baseline (each
            cluster keeps its first candidate, no global view).
        selection_solver: which MWCP solver picks candidates.
        detour_stage: when detouring runs ("Detour First" vs PACOR).
        max_ripup_rounds: escape-routing rip-up/reroute iterations.
        lm_rippable_after: rip-up round from which length-matching
            clusters may be ripped too (the paper's "higher rip-up cost").
        lm_rip_cost: probe penalty multiplier for LM clusters.
        protected_rip_cost: probe penalty for crossing a net the
            force-completion pass already routed; prohibitive so only the
            literally unavoidable blocker is ripped.
        max_astar_expansions: safety cap per A* query (None = unbounded).
        wall_clock_budget_s: wall-clock budget for one whole run; when it
            runs out the flow stops spending and returns a partial result
            flagged ``degraded`` (None = unbounded).
        astar_expansion_budget: total A* cells settled across the whole
            run (None = unbounded).
        rip_round_budget: total escape rip-up / force-completion
            iterations across the whole run (None = unbounded).
    """

    delta: Optional[int] = None
    lam: float = 0.1
    history_base: float = 1.0
    history_alpha: float = 0.1
    gamma: int = 10
    theta: int = 10
    k_candidates: int = 4
    bounded_skew_dme: bool = False
    match_all_clusters: bool = True
    enable_selection: bool = True
    selection_solver: SelectionSolver = SelectionSolver.EXACT
    detour_stage: DetourStage = DetourStage.FINAL
    max_ripup_rounds: int = 8
    lm_rippable_after: int = 4
    lm_rip_cost: float = 25.0
    protected_rip_cost: float = 50.0
    max_astar_expansions: Optional[int] = None
    wall_clock_budget_s: Optional[float] = None
    astar_expansion_budget: Optional[int] = None
    rip_round_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delta is not None and self.delta < 0:
            raise ConfigError("delta must be non-negative", field="delta")
        if not 0.0 <= self.lam <= 1.0:
            raise ConfigError("lam must lie in [0, 1]", field="lam")
        if self.gamma < 1 or self.theta < 1:
            raise ConfigError("gamma and theta must be at least 1", field="gamma")
        if self.k_candidates < 1:
            raise ConfigError("k_candidates must be at least 1", field="k_candidates")
        if self.max_ripup_rounds < 0:
            raise ConfigError("max_ripup_rounds must be non-negative", field="max_ripup_rounds")
        if self.protected_rip_cost <= 0:
            raise ConfigError("protected_rip_cost must be positive", field="protected_rip_cost")
        if self.wall_clock_budget_s is not None and self.wall_clock_budget_s <= 0:
            raise ConfigError("wall_clock_budget_s must be positive", field="wall_clock_budget_s")
        if (
            self.astar_expansion_budget is not None
            and self.astar_expansion_budget < 0
        ):
            raise ConfigError("astar_expansion_budget must be non-negative", field="astar_expansion_budget")
        if self.rip_round_budget is not None and self.rip_round_budget < 0:
            raise ConfigError("rip_round_budget must be non-negative", field="rip_round_budget")
        self.selection_solver = SelectionSolver(self.selection_solver)
        self.detour_stage = DetourStage(self.detour_stage)

    def to_json(self) -> dict:
        """Return a JSON-serialisable document of every tunable."""
        doc = dataclasses.asdict(self)
        doc["selection_solver"] = self.selection_solver.value
        doc["detour_stage"] = self.detour_stage.value
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "PacorConfig":
        """Rebuild a config from :meth:`to_json` output (validated).

        Unknown keys raise :class:`~repro.robustness.errors.ConfigError` so a checkpoint written
        by a newer format version fails loudly instead of silently
        dropping a tunable.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigError(f"unknown config fields: {unknown}")
        return cls(**doc)

    def make_budget(self, **overrides: object) -> "Budget":
        """Build the per-run :class:`~repro.robustness.budget.Budget`."""
        from repro.robustness.budget import Budget

        kwargs = {
            "wall_clock_s": self.wall_clock_budget_s,
            "astar_expansions": self.astar_expansion_budget,
            "rip_rounds": self.rip_round_budget,
        }
        kwargs.update(overrides)
        return Budget(**kwargs)  # type: ignore[arg-type]

    def resolved_delta(self, design_delta: int) -> int:
        """Return the δ to use for a given design."""
        return design_delta if self.delta is None else self.delta
