"""The PACOR flow: orchestration of every stage (Fig. 2).

* :class:`PacorConfig` — every knob of the flow, defaulted to the
  paper's published parameter values (δ = 1, λ = 0.1, α = 0.1, γ = 10,
  θ = 10).
* :class:`PacorRouter` — runs valve clustering, length-matching cluster
  routing (DME candidates → MWCP selection → negotiation), MST routing,
  min-cost-flow escape routing with de-clustering/rip-up, and final path
  detouring.
* :mod:`repro.core.pipeline` — the three Table-2 methods: full PACOR,
  "w/o Sel" and "Detour First".
"""

from repro.core.config import DetourStage, PacorConfig, SelectionSolver
from repro.core.pacor import PacorRouter
from repro.core.pipeline import (
    METHODS,
    run_detour_first,
    run_method,
    run_pacor,
    run_without_selection,
)
from repro.core.result import NetReport, PacorResult

__all__ = [
    "PacorConfig",
    "SelectionSolver",
    "DetourStage",
    "PacorRouter",
    "PacorResult",
    "NetReport",
    "run_pacor",
    "run_without_selection",
    "run_detour_first",
    "run_method",
    "METHODS",
]
