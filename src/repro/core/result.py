"""Result model: per-net reports and the Table-2 aggregate metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.geometry.point import Point
from repro.robustness.incidents import Incident

Segment = Tuple[Point, Point]
"""One drawn channel step between two adjacent cells (endpoint-sorted)."""


def segments_of_path(cells: Iterable[Point]) -> List[Segment]:
    """Return the normalised drawn segments of a path's cell sequence."""
    cells = list(cells)
    return [
        (a, b) if a <= b else (b, a) for a, b in zip(cells, cells[1:])
    ]


def is_via_segment(segment: Segment) -> bool:
    """Return True when ``segment`` is a vertical (via) step.

    A via step joins the same planar column on two adjacent layers; its
    endpoints differ in z (absent z reads as layer 0 under the
    mixed-arity cell rule).
    """
    a, b = segment
    az = a[2] if len(a) == 3 else 0
    bz = b[2] if len(b) == 3 else 0
    return az != bz


@dataclass
class NetReport:
    """Outcome for one routed net (a control pin's channel network).

    De-clustering can split one original cluster into several nets; the
    ``origin_cluster`` ties them back together for cluster-level metrics.

    Attributes:
        net_id: the net's occupancy id.
        origin_cluster: id of the cluster the net descends from.
        valve_ids: valves driven through this net's pin.
        length_matching: True when the *origin* cluster carried the LM
            constraint.
        routed: True when the net reached a control pin.
        pin: assigned control pin (None when unrouted).
        cells: every grid cell of the net's channels.
        segments: the drawn channel steps.  Two same-net cells that are
            merely *adjacent* are separate channels (the grid pitch
            already includes the spacing rule); physical connectivity
            and pressure-propagation length follow the drawn segments.
        channel_length: total drawn channel length — ``len(segments)``
            on planar grids; on layered grids each via segment counts
            ``via_length`` channel units instead of one.
        matched: for multi-valve LM nets, whether the final channel
            lengths satisfy δ; None otherwise.
        mismatch: final max-min spread of valve-to-pin lengths (LM nets).
        sink_lengths: valve id -> routed channel length to the pin
            (LM nets only).
        failure_reason: why the net ended unrouted (None when routed).
    """

    net_id: int
    origin_cluster: int
    valve_ids: List[int]
    length_matching: bool
    routed: bool
    pin: Optional[Point] = None
    cells: FrozenSet[Point] = frozenset()
    segments: FrozenSet[Segment] = frozenset()
    channel_length: int = 0
    matched: Optional[bool] = None
    mismatch: Optional[int] = None
    sink_lengths: Dict[int, int] = field(default_factory=dict)
    failure_reason: Optional[str] = None


@dataclass
class PacorResult:
    """Everything one flow run produced, plus the Table-2 aggregates.

    Attributes:
        design_name: benchmark name.
        method: "PACOR", "w/o Sel" or "Detour First".
        delta: the length-matching threshold used.
        n_valves: total valves of the design.
        n_lm_clusters: planned multi-valve clusters ("#Clusters").
        nets: per-net reports.
        runtime_s: wall-clock seconds of the run.
        events: human-readable stage log.
        degraded: True when the run gave something up — a stage failed,
            a budget ran out, or a net could not be completed; the
            routed subset is still verified-consistent.
        incidents: structured records of everything that degraded.
        checkpoint: snapshot document of the first budget interruption
            (``Checkpoint.to_json`` format), or None when no budget
            tripped.  Deliberately excluded from :meth:`to_json` — the
            snapshot embeds wall-clock counters, and the result export
            must stay bit-stable for identical routing work.
    """

    design_name: str
    method: str
    delta: int
    n_valves: int
    n_lm_clusters: int
    nets: List[NetReport] = field(default_factory=list)
    runtime_s: float = 0.0
    events: List[str] = field(default_factory=list)
    degraded: bool = False
    incidents: List[Incident] = field(default_factory=list)
    checkpoint: Optional[Dict[str, object]] = None

    # -- Table 2 metrics ----------------------------------------------------

    @property
    def matched_clusters(self) -> int:
        """Return "#Matched Clusters": LM clusters routed within δ."""
        count = 0
        for origin in self._lm_origins():
            nets = [n for n in self.nets if n.origin_cluster == origin]
            if (
                len(nets) == 1
                and nets[0].routed
                and nets[0].matched is True
            ):
                count += 1
        return count

    @property
    def total_matched_length(self) -> int:
        """Return the summed channel length of matched clusters."""
        total = 0
        for origin in self._lm_origins():
            nets = [n for n in self.nets if n.origin_cluster == origin]
            if len(nets) == 1 and nets[0].routed and nets[0].matched is True:
                total += nets[0].channel_length
        return total

    @property
    def total_length(self) -> int:
        """Return the total channel length over every routed net."""
        return sum(n.channel_length for n in self.nets if n.routed)

    @property
    def routed_valves(self) -> int:
        """Return the number of valves connected to a control pin."""
        return sum(len(n.valve_ids) for n in self.nets if n.routed)

    @property
    def completion_rate(self) -> float:
        """Return routed valves / total valves (1.0 = 100 %)."""
        if self.n_valves == 0:
            return 1.0
        return self.routed_valves / self.n_valves

    @property
    def pins_used(self) -> int:
        """Return the number of control pins consumed."""
        return sum(1 for n in self.nets if n.routed)

    def _lm_origins(self) -> List[int]:
        return sorted(
            {n.origin_cluster for n in self.nets if n.length_matching}
        )

    def lm_cluster_count(self) -> int:
        """Return the number of planned LM clusters seen in the nets."""
        return len(self._lm_origins())

    def summary_row(self) -> Dict[str, object]:
        """Return this run's Table-2 row."""
        return {
            "design": self.design_name,
            "method": self.method,
            "n_clusters": self.n_lm_clusters,
            "matched_clusters": self.matched_clusters,
            "total_matched_length": self.total_matched_length,
            "total_length": self.total_length,
            "completion": self.completion_rate,
            "runtime_s": self.runtime_s,
        }

    def to_json(self) -> Dict[str, object]:
        """Return a JSON-serialisable document of the full result.

        Includes the summary, the stage log and every net's routing
        (cells, drawn segments, pin, matching) — enough to re-verify or
        re-render the solution without re-running the flow.
        """
        return {
            "summary": self.summary_row(),
            "delta": self.delta,
            "events": list(self.events),
            "degraded": self.degraded,
            "incidents": [i.to_json() for i in self.incidents],
            "nets": [
                {
                    "net_id": n.net_id,
                    "origin_cluster": n.origin_cluster,
                    "valve_ids": list(n.valve_ids),
                    "length_matching": n.length_matching,
                    "routed": n.routed,
                    "pin": [n.pin.x, n.pin.y] if n.pin else None,
                    "matched": n.matched,
                    "mismatch": n.mismatch,
                    "channel_length": n.channel_length,
                    "failure_reason": n.failure_reason,
                    "sink_lengths": {
                        str(k): v for k, v in n.sink_lengths.items()
                    },
                    # Layer-0 cells stay [x, y]; upper-layer cells carry
                    # their z as [x, y, z] — single-layer documents are
                    # byte-identical to the planar schema.
                    "cells": sorted(list(c) for c in n.cells),
                    "segments": sorted(
                        [list(a), list(b)] for a, b in n.segments
                    ),
                }
                for n in self.nets
            ],
        }
