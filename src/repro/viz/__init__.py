"""Visualisation of designs and routed solutions.

* :func:`render_ascii` — terminal rendering of a design or routed result
  (valves, pins, obstacles, channels).
* :func:`render_svg` — standalone SVG string (no external dependencies)
  with channels drawn as polylines per net.
"""

from repro.viz.ascii_art import render_ascii
from repro.viz.svg import render_svg

__all__ = ["render_ascii", "render_svg"]
