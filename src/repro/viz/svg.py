"""Standalone SVG rendering of routed solutions (no dependencies)."""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import PacorResult, is_via_segment
from repro.designs.design import Design

_PALETTE = [
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
]


def _z(cell) -> int:
    return cell[2] if len(cell) == 3 else 0


def render_svg(
    design: Design,
    result: Optional[PacorResult] = None,
    *,
    cell: int = 6,
    flow=None,
) -> str:
    """Return an SVG document showing obstacles, valves, pins and channels.

    Channels are drawn as one polyline per drawn segment chain; each net
    gets a palette colour (cycled).  ``cell`` is the pixel size per grid
    cell.  Pass a :class:`~repro.flowlayer.channels.FlowLayer` as
    ``flow`` to draw the flow channels underneath in light blue (the
    two-layer view of Fig. 1).

    Multi-layer designs render one panel per routing layer, left to
    right; a via is marked as a colour-ringed dot on *both* panels of
    the column it passes through.  Single-layer documents are
    byte-identical to the planar renderer's output.
    """
    grid = design.grid
    panel_w = grid.width * cell
    gap = cell if grid.layers > 1 else 0
    width = panel_w * grid.layers + gap * (grid.layers - 1)
    height = grid.height * cell

    def xoff(z: int) -> int:
        return z * (panel_w + gap)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    if grid.layers > 1:
        for z in range(grid.layers):
            parts.append(
                f'<rect x="{xoff(z)}" y="0" width="{panel_w}" '
                f'height="{height}" fill="none" stroke="#dddddd"/>'
            )
    if flow is not None:
        for channel in flow.channels:
            for p in channel.cells:
                parts.append(
                    f'<rect x="{p.x * cell}" y="{p.y * cell}" width="{cell}" '
                    f'height="{cell}" fill="#bcd9f2"/>'
                )
    for p in grid.obstacle_cells():
        if flow is not None and any(
            p in c.cell_set() for c in flow.channels
        ):
            continue  # drawn as a flow cell already
        parts.append(
            f'<rect x="{xoff(_z(p)) + p[0] * cell}" y="{p[1] * cell}" '
            f'width="{cell}" height="{cell}" fill="#333333"/>'
        )
    if result is not None:
        for net in result.nets:
            colour = _PALETTE[net.net_id % len(_PALETTE)]
            for a, b in sorted(net.segments):
                if is_via_segment((a, b)):
                    # One ringed dot per panel the via connects.
                    for endpoint in (a, b):
                        parts.append(
                            f'<circle cx="{xoff(_z(endpoint)) + endpoint[0] * cell + cell / 2:.1f}" '
                            f'cy="{endpoint[1] * cell + cell / 2:.1f}" '
                            f'r="{cell / 3:.1f}" fill="#ffffff" '
                            f'stroke="{colour}" stroke-width="1.5"/>'
                        )
                    continue
                parts.append(
                    f'<line x1="{xoff(_z(a)) + a[0] * cell + cell / 2:.1f}" '
                    f'y1="{a[1] * cell + cell / 2:.1f}" '
                    f'x2="{xoff(_z(b)) + b[0] * cell + cell / 2:.1f}" '
                    f'y2="{b[1] * cell + cell / 2:.1f}" '
                    f'stroke="{colour}" stroke-width="{max(cell / 3, 1):.1f}" '
                    f'stroke-linecap="round"/>'
                )
            if net.pin is not None:
                parts.append(
                    f'<circle cx="{net.pin.x * cell + cell / 2:.1f}" '
                    f'cy="{net.pin.y * cell + cell / 2:.1f}" r="{cell / 2:.1f}" '
                    f'fill="none" stroke="{colour}" stroke-width="1.5"/>'
                )
    for pin in design.control_pins:
        parts.append(
            f'<rect x="{pin.x * cell + cell / 4:.1f}" '
            f'y="{pin.y * cell + cell / 4:.1f}" '
            f'width="{cell / 2:.1f}" height="{cell / 2:.1f}" fill="#cccccc"/>'
        )
    for valve in design.valves:
        p = valve.position
        parts.append(
            f'<circle cx="{p.x * cell + cell / 2:.1f}" '
            f'cy="{p.y * cell + cell / 2:.1f}" r="{cell / 2.5:.1f}" '
            f'fill="#d62728"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
