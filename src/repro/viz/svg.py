"""Standalone SVG rendering of routed solutions (no dependencies)."""

from __future__ import annotations

from typing import List, Optional

from repro.core.result import PacorResult
from repro.designs.design import Design

_PALETTE = [
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
]


def render_svg(
    design: Design,
    result: Optional[PacorResult] = None,
    *,
    cell: int = 6,
    flow=None,
) -> str:
    """Return an SVG document showing obstacles, valves, pins and channels.

    Channels are drawn as one polyline per drawn segment chain; each net
    gets a palette colour (cycled).  ``cell`` is the pixel size per grid
    cell.  Pass a :class:`~repro.flowlayer.channels.FlowLayer` as
    ``flow`` to draw the flow channels underneath in light blue (the
    two-layer view of Fig. 1).
    """
    grid = design.grid
    width = grid.width * cell
    height = grid.height * cell

    def centre(p) -> str:
        return f"{p.x * cell + cell / 2:.1f},{p.y * cell + cell / 2:.1f}"

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    if flow is not None:
        for channel in flow.channels:
            for p in channel.cells:
                parts.append(
                    f'<rect x="{p.x * cell}" y="{p.y * cell}" width="{cell}" '
                    f'height="{cell}" fill="#bcd9f2"/>'
                )
    for p in grid.obstacle_cells():
        if flow is not None and any(
            p in c.cell_set() for c in flow.channels
        ):
            continue  # drawn as a flow cell already
        parts.append(
            f'<rect x="{p.x * cell}" y="{p.y * cell}" width="{cell}" '
            f'height="{cell}" fill="#333333"/>'
        )
    if result is not None:
        for net in result.nets:
            colour = _PALETTE[net.net_id % len(_PALETTE)]
            for a, b in sorted(net.segments):
                parts.append(
                    f'<line x1="{a.x * cell + cell / 2:.1f}" '
                    f'y1="{a.y * cell + cell / 2:.1f}" '
                    f'x2="{b.x * cell + cell / 2:.1f}" '
                    f'y2="{b.y * cell + cell / 2:.1f}" '
                    f'stroke="{colour}" stroke-width="{max(cell / 3, 1):.1f}" '
                    f'stroke-linecap="round"/>'
                )
            if net.pin is not None:
                parts.append(
                    f'<circle cx="{net.pin.x * cell + cell / 2:.1f}" '
                    f'cy="{net.pin.y * cell + cell / 2:.1f}" r="{cell / 2:.1f}" '
                    f'fill="none" stroke="{colour}" stroke-width="1.5"/>'
                )
    for pin in design.control_pins:
        parts.append(
            f'<rect x="{pin.x * cell + cell / 4:.1f}" '
            f'y="{pin.y * cell + cell / 4:.1f}" '
            f'width="{cell / 2:.1f}" height="{cell / 2:.1f}" fill="#cccccc"/>'
        )
    for valve in design.valves:
        p = valve.position
        parts.append(
            f'<circle cx="{p.x * cell + cell / 2:.1f}" '
            f'cy="{p.y * cell + cell / 2:.1f}" r="{cell / 2.5:.1f}" '
            f'fill="#d62728"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
