"""ASCII rendering of designs and routed solutions.

Legend: ``.`` free, ``#`` obstacle, ``V`` valve, ``P`` candidate pin,
``@`` assigned pin, digits/letters = channel cells of a net (net id
modulo 36).  Intended for small designs and debugging; rows are rendered
with y growing downward.
"""

from __future__ import annotations

import string
from typing import Optional

from repro.core.result import PacorResult
from repro.designs.design import Design

_NET_GLYPHS = string.digits + string.ascii_lowercase


def render_ascii(design: Design, result: Optional[PacorResult] = None) -> str:
    """Render ``design`` (and optionally a routed ``result``) as text."""
    grid = design.grid
    rows = [["."] * grid.width for _ in range(grid.height)]
    for p in grid.obstacle_cells():
        rows[p.y][p.x] = "#"
    for pin in design.control_pins:
        rows[pin.y][pin.x] = "P"
    if result is not None:
        for net in result.nets:
            glyph = _NET_GLYPHS[net.net_id % len(_NET_GLYPHS)]
            for cell in net.cells:
                rows[cell.y][cell.x] = glyph
        for net in result.nets:
            if net.pin is not None:
                rows[net.pin.y][net.pin.x] = "@"
    for valve in design.valves:
        rows[valve.position.y][valve.position.x] = "V"
    return "\n".join("".join(row) for row in rows)
