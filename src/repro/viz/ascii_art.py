"""ASCII rendering of designs and routed solutions.

Legend: ``.`` free, ``#`` obstacle, ``V`` valve, ``P`` candidate pin,
``@`` assigned pin, digits/letters = channel cells of a net (net id
modulo 36), ``+`` = via (a channel changing layers in that column).
Multi-layer designs render one panel per layer, top to bottom, each
introduced by a ``-- layer z --`` header; single-layer output carries no
headers and is unchanged from the planar renderer.  Intended for small
designs and debugging; rows are rendered with y growing downward.
"""

from __future__ import annotations

import string
from typing import List, Optional

from repro.core.result import PacorResult, is_via_segment
from repro.designs.design import Design

_NET_GLYPHS = string.digits + string.ascii_lowercase


def _z(cell) -> int:
    return cell[2] if len(cell) == 3 else 0


def render_ascii(design: Design, result: Optional[PacorResult] = None) -> str:
    """Render ``design`` (and optionally a routed ``result``) as text."""
    grid = design.grid
    panels = [
        [["."] * grid.width for _ in range(grid.height)]
        for _ in range(grid.layers)
    ]
    for p in grid.obstacle_cells():
        panels[_z(p)][p[1]][p[0]] = "#"
    for pin in design.control_pins:
        panels[0][pin.y][pin.x] = "P"
    if result is not None:
        for net in result.nets:
            glyph = _NET_GLYPHS[net.net_id % len(_NET_GLYPHS)]
            for cell in net.cells:
                panels[_z(cell)][cell[1]][cell[0]] = glyph
        for net in result.nets:
            for a, b in net.segments:
                if is_via_segment((a, b)):
                    panels[_z(a)][a[1]][a[0]] = "+"
                    panels[_z(b)][b[1]][b[0]] = "+"
        for net in result.nets:
            if net.pin is not None:
                panels[0][net.pin.y][net.pin.x] = "@"
    for valve in design.valves:
        panels[0][valve.position.y][valve.position.x] = "V"
    if grid.layers == 1:
        return "\n".join("".join(row) for row in panels[0])
    blocks: List[str] = []
    for z, panel in enumerate(panels):
        blocks.append(f"-- layer {z} --")
        blocks.extend("".join(row) for row in panel)
    return "\n".join(blocks)
