"""The in-memory dispatch queue of the service: priority, then FIFO.

A tiny heap on ``(priority, seq)`` — lower priority number first, then
submission order.  The queue holds job *ids* only; the on-disk
:class:`~repro.service.jobs.JobStore` is the durable state, and a
restarted daemon rebuilds this queue from the records it finds (which is
why there is no persistence here).

Cancellation of a queued job is lazy: :meth:`JobQueue.remove` marks the
id and :meth:`JobQueue.pop` discards marked entries, so cancel is O(1)
without re-heapifying.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple


class JobQueue:
    """Priority + FIFO queue of pending job ids (not thread-safe).

    The daemon serialises all access under its own lock; keeping the
    lock out of the queue keeps the invariants testable in isolation.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._queued: Set[str] = set()
        self._removed: Set[str] = set()

    def push(self, priority: int, seq: int, job_id: str) -> None:
        """Enqueue ``job_id``; re-pushing a queued id is a no-op."""
        if job_id in self._queued:
            return
        self._removed.discard(job_id)
        self._queued.add(job_id)
        heapq.heappush(self._heap, (priority, seq, job_id))

    def pop(self) -> Optional[str]:
        """Dequeue the runnable job id with the best (priority, seq)."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._removed:
                self._removed.discard(job_id)
                continue
            self._queued.discard(job_id)
            return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Drop a queued id (lazily); return True when it was queued."""
        if job_id not in self._queued:
            return False
        self._queued.discard(job_id)
        self._removed.add(job_id)
        return True

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._queued

    def __len__(self) -> int:
        return len(self._queued)

    def job_ids(self) -> List[str]:
        """Return the queued ids in dispatch order (for /stats)."""
        return [
            job_id
            for _, _, job_id in sorted(self._heap)
            if job_id in self._queued
        ]
