"""Persistent job records for the PACOR routing service.

One submitted routing problem becomes one :class:`JobRecord` — a
versioned JSON document in its own directory under the service root —
plus a small constellation of sibling files the worker writes as the
job progresses::

    <root>/jobs/j000042/
        job.json         the JobRecord (the daemon owns this file)
        design.json      the submitted design document
        faults.json      optional FaultMap document
        events.jsonl     append-only progress stream (worker-owned
                         while running, daemon-owned otherwise)
        result.json      PacorResult document (on success / preemption)
        metrics.json     Metrics registry export of the run
        trace.jsonl      Tracer JSONL export of the run
        checkpoint.json  parked interrupt checkpoint (preempted jobs)
        outcome.json     the worker's exit report — written last,
                         atomically, so its existence is the completion
                         signal the daemon reaps

Everything is plain JSON written with tmp-file + ``os.replace``, so a
killed daemon or worker never leaves a half-written record and a
restarted daemon recovers the queue by re-reading the directory tree
(see :meth:`~repro.service.daemon.PacorService` recovery).

Job identifiers are deterministic sequence numbers (``j000042``), not
random tokens: the service must stay reproducible under pacorlint's
DET001 rule, and monotonic ids double as the FIFO tiebreaker of the
priority queue.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.robustness.errors import JobFormatError

JOB_RECORD_VERSION = 1
"""Current job-record format version; bumped on incompatible change."""


class JobState:
    """The job lifecycle states (plain strings, stored in the record).

    ::

        queued ──> running ──> succeeded
           │          │  └───> failed
           │          └──────> preempted ──(resume)──> queued
           └────(cancel)─────> cancelled

    A cache hit short-circuits ``queued -> succeeded`` without a worker.
    ``preempted`` is settled but *resumable*: the parked checkpoint
    re-enters the queue via the resume API.  ``succeeded``, ``failed``
    and ``cancelled`` are terminal.
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    PREEMPTED = "preempted"
    CANCELLED = "cancelled"


ALL_STATES = frozenset(
    {
        JobState.QUEUED,
        JobState.RUNNING,
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.PREEMPTED,
        JobState.CANCELLED,
    }
)

TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
)
"""States a job never leaves (``preempted`` is resumable, so not here)."""


@dataclass(frozen=True)
class QosTier:
    """One quality-of-service tier: a queue priority plus run budgets.

    Tiers map straight onto :class:`~repro.robustness.budget.Budget`
    limits: an ``interactive`` job that blows its small budget degrades
    (or parks a checkpoint) quickly instead of starving the queue, while
    ``batch`` jobs run unbounded at the lowest priority.

    Attributes:
        name: tier name, the ``qos`` field of submissions.
        priority: queue priority (lower runs first).
        wall_clock_s: wall-clock budget, None = unbounded.
        astar_expansions: total A* expansion budget, None = unbounded.
        rip_rounds: total rip-up round budget, None = unbounded.
    """

    name: str
    priority: int
    wall_clock_s: Optional[float]
    astar_expansions: Optional[int]
    rip_rounds: Optional[int] = None

    def budget_doc(self) -> Dict[str, Any]:
        """Return the budget-limit document stored on job records."""
        return {
            "wall_clock_s": self.wall_clock_s,
            "astar_expansions": self.astar_expansions,
            "rip_rounds": self.rip_rounds,
        }


QOS_TIERS: Dict[str, QosTier] = {
    "interactive": QosTier("interactive", 0, 30.0, 5_000_000),
    "standard": QosTier("standard", 1, 300.0, 100_000_000),
    "batch": QosTier("batch", 2, None, None),
}
"""The built-in tiers; explicit budget overrides win over the tier."""

DEFAULT_QOS = "standard"


@dataclass
class JobRecord:
    """The persistent state of one submitted routing job.

    The daemon is the only writer of ``job.json`` — workers report back
    through ``outcome.json`` — so record updates never race.

    Attributes:
        job_id: deterministic id (``j%06d`` of ``seq``).
        seq: monotonic submission sequence number (FIFO tiebreaker).
        state: one of the :class:`JobState` values.
        design_name: the design document's ``name`` (display only).
        design_hash: :meth:`~repro.designs.design.Design.canonical_hash`
            of the submitted design.
        method: Table-2 method name to run.
        qos: tier name (a :data:`QOS_TIERS` key).
        priority: queue priority, copied from the tier at submit time.
        config: normalised full
            :meth:`~repro.core.config.PacorConfig.to_json` document.
        budget: resolved run-budget limits (tier merged with overrides).
        cache_key: :func:`~repro.service.cache.result_cache_key` of the
            submission.
        cached: True when the result came from the cache (no worker ran).
        attempts: worker launches so far (resumes increment it).
        submitted_at / started_at / finished_at: epoch timestamps.
        degraded: the result's degraded flag, copied up on completion.
        preempt_kind: why the job was preempted (``sigterm``,
            ``wall-clock``, ``astar-expansions``, ``rip-rounds``,
            ``daemon-restart``); None otherwise.
        cancel_requested: a cancel arrived while the job was running —
            the preemption that follows reaps as ``cancelled``.
        error: failure message for ``failed`` jobs.
        summary: the result's Table-2 ``summary_row`` for quick listings.
    """

    job_id: str
    seq: int
    state: str
    design_name: str
    design_hash: str
    method: str
    qos: str
    priority: int
    config: Dict[str, Any]
    budget: Dict[str, Any]
    cache_key: str
    cached: bool = False
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    degraded: Optional[bool] = None
    preempt_kind: Optional[str] = None
    cancel_requested: bool = False
    error: Optional[str] = None
    summary: Optional[Dict[str, Any]] = field(default=None)
    version: int = JOB_RECORD_VERSION

    def to_json(self) -> Dict[str, Any]:
        """Return the versioned JSON document of the record."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(
        cls, doc: Dict[str, Any], *, source: Optional[str] = None
    ) -> "JobRecord":
        """Rebuild a record from :meth:`to_json` output (validated).

        Raises:
            JobFormatError: the document is not a job record, its
                version is unsupported, a required field is missing or
                it carries unknown fields — the error names the field
                (and ``source``, when given).
        """
        if not isinstance(doc, dict):
            raise JobFormatError(
                f"job record must be a JSON object, got {type(doc).__name__}",
                path=source,
            )
        if "version" not in doc:
            raise JobFormatError(
                "missing required field", field="version", path=source
            )
        version = doc["version"]
        if version != JOB_RECORD_VERSION:
            raise JobFormatError(
                f"unsupported job record version {version!r} "
                f"(this build reads version {JOB_RECORD_VERSION})",
                field="version",
                path=source,
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(doc) - names)
        if unknown:
            raise JobFormatError(
                f"unknown job record fields: {unknown}", path=source
            )
        required = {
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        }
        for name in sorted(required):
            if name not in doc:
                raise JobFormatError(
                    "missing required field", field=name, path=source
                )
        if doc["state"] not in ALL_STATES:
            raise JobFormatError(
                f"unknown job state {doc['state']!r}",
                field="state",
                path=source,
            )
        return cls(**doc)


def write_json_atomic(path: FilePath, doc: Dict[str, Any]) -> None:
    """Write ``doc`` to ``path`` via tmp-file + ``os.replace``.

    ``os.replace`` is atomic on POSIX, so concurrent readers see either
    the old complete document or the new one — never a torn write.  The
    temp file lives next to the target (same filesystem), named after it,
    which is safe because every service file has exactly one writer at a
    time (daemon for ``job.json``, the owning worker for the rest).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_json(path: FilePath) -> Dict[str, Any]:
    """Read one JSON object from ``path``.

    Raises:
        JobFormatError: the file is missing, unreadable or not a JSON
            object.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise JobFormatError("file does not exist", path=str(path)) from None
    except json.JSONDecodeError as exc:
        raise JobFormatError(
            f"not valid JSON ({exc})", path=str(path)
        ) from exc
    if not isinstance(doc, dict):
        raise JobFormatError(
            f"expected a JSON object, got {type(doc).__name__}",
            path=str(path),
        )
    return doc


class JobStore:
    """The on-disk job database: one directory per job under ``root``.

    The store is deliberately dumb — no index file, no database.  The
    directory tree *is* the source of truth: a restarted daemon rebuilds
    its queue and sequence counter by listing it, which is what makes
    the queue survive crashes for free.
    """

    def __init__(self, root: Union[str, FilePath]) -> None:
        self.root = FilePath(root)
        self.jobs_dir = self.root / "jobs"
        self.cache_dir = self.root / "cache"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------

    def job_dir(self, job_id: str) -> FilePath:
        """Return the directory of ``job_id`` (not necessarily existing)."""
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "job.json"

    def design_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "design.json"

    def faults_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "faults.json"

    def result_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "result.json"

    def metrics_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "metrics.json"

    def trace_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "trace.jsonl"

    def events_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "events.jsonl"

    def checkpoint_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "checkpoint.json"

    def outcome_path(self, job_id: str) -> FilePath:
        return self.job_dir(job_id) / "outcome.json"

    # -- allocation ---------------------------------------------------------

    def next_seq(self) -> int:
        """Return the next unused sequence number (directory scan)."""
        highest = 0
        for entry in self.jobs_dir.iterdir():
            name = entry.name
            if name.startswith("j") and name[1:].isdigit():
                highest = max(highest, int(name[1:]))
        return highest + 1

    def allocate(
        self,
        *,
        design_doc: Dict[str, Any],
        design_name: str,
        design_hash: str,
        method: str,
        qos: str,
        priority: int,
        config: Dict[str, Any],
        budget: Dict[str, Any],
        cache_key: str,
        fault_doc: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Create the next job: directory, design/faults files, record."""
        seq = self.next_seq()
        job_id = f"j{seq:06d}"
        self.job_dir(job_id).mkdir(parents=True)
        write_json_atomic(self.design_path(job_id), design_doc)
        if fault_doc is not None:
            write_json_atomic(self.faults_path(job_id), fault_doc)
        record = JobRecord(
            job_id=job_id,
            seq=seq,
            state=JobState.QUEUED,
            design_name=design_name,
            design_hash=design_hash,
            method=method,
            qos=qos,
            priority=priority,
            config=config,
            budget=budget,
            cache_key=cache_key,
            submitted_at=time.time(),
        )
        self.save(record)
        return record

    # -- record io ----------------------------------------------------------

    def save(self, record: JobRecord) -> None:
        """Persist ``record`` atomically."""
        write_json_atomic(self.record_path(record.job_id), record.to_json())

    def exists(self, job_id: str) -> bool:
        """Return True when ``job_id`` has a record on disk."""
        return self.record_path(job_id).is_file()

    def load(self, job_id: str) -> JobRecord:
        """Read the record of ``job_id`` back (validated).

        Raises:
            JobFormatError: no such job, or its record is malformed.
        """
        path = self.record_path(job_id)
        if not path.is_file():
            raise JobFormatError(
                f"no such job {job_id!r}", field="job_id", path=str(path)
            )
        return JobRecord.from_json(read_json(path), source=str(path))

    def list_ids(self) -> List[str]:
        """Return every job id, in submission (sequence) order."""
        ids = [
            entry.name
            for entry in self.jobs_dir.iterdir()
            if entry.is_dir() and (entry / "job.json").is_file()
        ]
        return sorted(ids)

    def records(self) -> List[JobRecord]:
        """Load every job record, in submission order."""
        return [self.load(job_id) for job_id in self.list_ids()]

    # -- event stream -------------------------------------------------------

    def append_event(self, job_id: str, doc: Dict[str, Any]) -> None:
        """Append one event document to the job's progress stream.

        Only the daemon calls this, and only while no worker owns the
        job — the running worker appends to the same file directly (see
        :mod:`repro.service.workers`), keeping one writer at a time.
        """
        with open(self.events_path(job_id), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
            handle.flush()

    def read_events(
        self, job_id: str, after: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Return ``(events, cursor)`` for events past line ``after``.

        ``cursor`` is the total line count so far; pass it back as
        ``after`` to poll incrementally.  Torn trailing lines (a worker
        mid-write) are ignored until complete.
        """
        path = self.events_path(job_id)
        if not path.is_file():
            return [], after
        events: List[Dict[str, Any]] = []
        lineno = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail; picked up next poll
                lineno += 1
                if lineno <= after:
                    continue
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events, max(after, lineno)
