"""The PACOR routing service: ``pacor serve`` and its building blocks.

A persistent job queue plus worker pool plus HTTP/JSON API that turns
the one-shot ``pacor route`` flow into a long-running daemon:

* :mod:`repro.service.jobs` — versioned on-disk job records and the
  directory-tree job store (crash-safe atomic writes).
* :mod:`repro.service.queue` — the priority+FIFO dispatch queue.
* :mod:`repro.service.cache` — the content-addressed result cache keyed
  on :meth:`~repro.designs.design.Design.canonical_hash`.
* :mod:`repro.service.workers` — the spawn-safe per-job worker process
  (SIGTERM parks a resume checkpoint; progress spans stream to the
  job's events file).
* :mod:`repro.service.daemon` — :class:`PacorService`, the orchestrator
  (dispatch, reap, preempt, recover).
* :mod:`repro.service.api` — the stdlib HTTP server and urllib client.

See ``docs/service.md`` for the API schema, the job lifecycle state
machine, QoS tiers and cache semantics.
"""

from repro.service.api import ServiceAPIServer, ServiceClient
from repro.service.cache import ResultCache, result_cache_key
from repro.service.daemon import PacorService
from repro.service.jobs import (
    DEFAULT_QOS,
    JOB_RECORD_VERSION,
    QOS_TIERS,
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
    QosTier,
)
from repro.service.queue import JobQueue
from repro.service.workers import run_job

__all__ = [
    "PacorService",
    "ServiceAPIServer",
    "ServiceClient",
    "JobStore",
    "JobRecord",
    "JobState",
    "JobQueue",
    "QosTier",
    "QOS_TIERS",
    "DEFAULT_QOS",
    "TERMINAL_STATES",
    "JOB_RECORD_VERSION",
    "ResultCache",
    "result_cache_key",
    "run_job",
]
