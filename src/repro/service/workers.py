"""Worker-side job execution: one child process per running job.

:func:`run_job` is the ``multiprocessing.Process`` target the daemon
spawns.  It is deliberately a **module-level function taking one plain
string** (the job directory), so it survives both ``fork`` and ``spawn``
start methods — under spawn the child pickles only the function
reference and the path, re-imports this module, and reads everything
else (design, config, fault map, checkpoint) from the job's JSON files.

Lifecycle inside the child:

1. Install a SIGTERM handler that calls
   :meth:`~repro.robustness.budget.Budget.preempt` — flag-only, so it is
   async-signal-safe.  The next budget charge inside the routing kernels
   raises ``BudgetExceeded(kind="preempted")``, the stage supervisor
   captures the interrupt checkpoint, and ``run()`` returns a degraded
   partial result instead of the process dying mid-write.
2. Attach a :meth:`~repro.observability.tracing.Tracer.add_listener`
   bridge that appends every closed ``flow``/``stage``/``round`` span to
   ``events.jsonl`` — the live progress stream the API serves.  ``net``
   and ``kernel`` spans stay out (thousands per run); they land in the
   full ``trace.jsonl`` export instead.
3. Run the flow — fresh, or resumed from a parked ``checkpoint.json``.
4. Write ``result.json`` / ``trace.jsonl`` / ``metrics.json``, park the
   interrupt checkpoint if one was captured, and **last** write
   ``outcome.json`` atomically — the daemon treats its existence as the
   completion signal, so a crash at any earlier point is detected as a
   missing outcome, never as a half-reported job.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from dataclasses import replace
from pathlib import Path as FilePath
from types import FrameType
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.core.config import DetourStage, PacorConfig
from repro.core.pacor import PacorRouter
from repro.core.pipeline import METHODS
from repro.core.result import PacorResult
from repro.designs.io import design_from_json
from repro.observability.metrics import Metrics
from repro.observability.tracing import Span, Tracer
from repro.robustness.budget import Budget
from repro.robustness.checkpoint import Checkpoint
from repro.robustness.errors import BudgetExceeded, PacorError
from repro.robustness.faultmap import FaultMap
from repro.service.jobs import JobRecord, read_json, write_json_atomic

EVENT_SPAN_CATEGORIES = frozenset({"flow", "stage", "round"})
"""Span categories bridged into the live event stream."""

OUTCOME_VERSION = 1


def _emit(handle: TextIO, doc: Dict[str, Any]) -> None:
    handle.write(json.dumps(doc, sort_keys=True, default=str) + "\n")
    handle.flush()


def _span_event(span: Span) -> Dict[str, Any]:
    return {
        "kind": "span",
        "category": span.category,
        "name": span.name,
        "span_id": span.span_id,
        "dur_s": span.duration_s,
        "attrs": dict(span.attrs),
    }


def _classify_preemption(budget: Budget) -> str:
    """Name why a parked checkpoint exists: sigterm or which limit."""
    if budget.preempted:
        return "sigterm"
    try:
        budget.check()
    except BudgetExceeded as exc:
        return str(exc.kind)
    return "budget"


def _checkpoint_to_park(
    router: PacorRouter, budget: Budget
) -> Optional[Checkpoint]:
    """Pick which snapshot survives as the job's resume token.

    * **SIGTERM preemption** parks the last *stage-boundary* snapshot —
      the one whose cursor is the interrupted stage, captured before
      that stage ran.  Boundary resumes are bit-identical to an
      uninterrupted run (the PR-2 guarantee the service's "same final
      result" contract rides on); the partial work of the cut-short
      stage is the price.  Preempted in the attempt's first stage there
      is no boundary snapshot: return None, which keeps an existing
      parked checkpoint (re-preempted resume) or none at all (fresh
      restart — trivially identical).
    * **Budget exhaustion** parks the mid-stage *interrupt* snapshot
      instead: the budget will trip at the same spot again on a
      same-budget retry, so preserving partial progress (and resuming
      with a raised budget) is what converges.
    """
    interrupt = router.interrupt_checkpoint
    if interrupt is None:
        return None
    if not budget.preempted:
        return interrupt
    for checkpoint in router.checkpoints.values():
        if checkpoint is not interrupt and checkpoint.stage == interrupt.stage:
            return checkpoint
    return None


def run_job(job_dir: str) -> int:
    """Execute the job rooted at ``job_dir``; always report an outcome.

    Returns the process exit code (0 — even failures are *reported*
    outcomes, not crashes; a non-zero exit means the reporting itself
    broke and the daemon falls back to crash accounting).
    """
    # Latch SIGTERM before doing anything else: a cancel arriving while
    # the child is still reading its job files must preempt the run, not
    # kill the process with the inherited default disposition.
    early_sigterm = threading.Event()
    signal.signal(
        signal.SIGTERM, lambda signum, frame: early_sigterm.set()
    )
    # Spawn-start children re-import everything, so the parent's
    # sanitizer shims do not reach them; the environment variable does.
    from repro.analysis.sanitize import install_from_env

    install_from_env()
    root = FilePath(job_dir)
    record = JobRecord.from_json(
        read_json(root / "job.json"), source=str(root / "job.json")
    )
    limits = record.budget or {}
    budget = Budget(
        wall_clock_s=limits.get("wall_clock_s"),
        astar_expansions=limits.get("astar_expansions"),
        rip_rounds=limits.get("rip_rounds"),
    )

    def _on_sigterm(signum: int, frame: Optional[FrameType]) -> None:
        budget.preempt("preempted by SIGTERM")

    signal.signal(signal.SIGTERM, _on_sigterm)
    if early_sigterm.is_set():
        budget.preempt("preempted by SIGTERM")

    events = open(root / "events.jsonl", "a", encoding="utf-8")
    tracer = Tracer()
    metrics = Metrics()
    tracer.add_listener(
        lambda span: _emit(events, _span_event(span))
        if span.category in EVENT_SPAN_CATEGORIES
        else None
    )

    resumed = (root / "checkpoint.json").is_file()
    _emit(
        events,
        {
            "kind": "status",
            "status": "started",
            "job_id": record.job_id,
            "attempt": record.attempts,
            "resumed": resumed,
        },
    )

    outcome: Dict[str, Any] = {
        "version": OUTCOME_VERSION,
        "job_id": record.job_id,
        "state": "failed",
        "degraded": None,
        "preempt_kind": None,
        "error": None,
        "summary": None,
    }
    try:
        design = design_from_json(
            read_json(root / "design.json"), source=str(root / "design.json")
        )
        router, result = _route(
            root, record, design, budget, tracer, metrics, resumed
        )
        tracer.export_jsonl(root / "trace.jsonl")
        metrics.export_json(root / "metrics.json")
        result_doc = result.to_json()
        write_json_atomic(root / "result.json", result_doc)
        if result.checkpoint is not None:
            # Budget ran out or SIGTERM arrived: park the resume token
            # and report "preempted".
            parked = _checkpoint_to_park(router, budget)
            if parked is not None:
                parked.save(root / "checkpoint.json")
            outcome["state"] = "preempted"
            outcome["preempt_kind"] = _classify_preemption(budget)
        else:
            outcome["state"] = "succeeded"
            # A stale parked checkpoint from the interrupted attempt has
            # nothing left to resume once the flow completed.
            if resumed:
                (root / "checkpoint.json").unlink(missing_ok=True)
        outcome["degraded"] = result.degraded
        outcome["summary"] = result.summary_row()
    except PacorError as exc:
        outcome["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - the process boundary
        outcome["error"] = f"unexpected {type(exc).__name__}: {exc}"
    finally:
        _emit(
            events,
            {
                "kind": "status",
                "status": "finished",
                "job_id": record.job_id,
                "state": outcome["state"],
                "preempt_kind": outcome["preempt_kind"],
                "error": outcome["error"],
            },
        )
        events.close()
        write_json_atomic(root / "outcome.json", outcome)
    return 0


def _route(
    root: FilePath,
    record: JobRecord,
    design: Any,
    budget: Budget,
    tracer: Tracer,
    metrics: Metrics,
    resumed: bool,
) -> Tuple[PacorRouter, PacorResult]:
    """Run the flow for one job — fresh or from the parked checkpoint."""
    if resumed:
        checkpoint = Checkpoint.load(root / "checkpoint.json")
        router = PacorRouter.from_checkpoint(
            design,
            checkpoint,
            budget=budget,
            tracer=tracer,
            metrics=metrics,
        )
        return router, router.run()
    config = PacorConfig.from_json(dict(record.config))
    fault_map: Optional[FaultMap] = None
    faults_path = root / "faults.json"
    if faults_path.is_file():
        fault_map = FaultMap.from_json(read_json(faults_path))
    # The pipeline runners build their own router (no budget parameter),
    # so mirror their method -> config pinning here and construct the
    # router directly around the preemptable budget.
    assert record.method in METHODS
    if record.method == "w/o Sel":
        config = replace(
            config, enable_selection=False, detour_stage=DetourStage.FINAL
        )
    elif record.method == "Detour First":
        config = replace(
            config,
            enable_selection=True,
            detour_stage=DetourStage.AFTER_NEGOTIATION,
        )
    else:
        config = replace(
            config, enable_selection=True, detour_stage=DetourStage.FINAL
        )
    router = PacorRouter(
        design,
        config,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        fault_map=fault_map,
    )
    router._method_name = record.method
    return router, router.run()


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - exec aid
    """``python -m repro.service.workers <job_dir>`` — manual debugging."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.service.workers <job_dir>")
        return 2
    return run_job(args[0])


if __name__ == "__main__":  # pragma: no cover - exec aid
    sys.exit(main())
