"""The service result cache: content-addressed, bit-identical replays.

A cache entry maps *what was asked* to *what the flow produced*.  The
key hashes the canonical design hash
(:meth:`~repro.designs.design.Design.canonical_hash`), the method name,
the full config document **minus the run-budget limits**, and the fault
map.  Budgets are excluded deliberately: a budget that never trips
cannot change the routing (it only bounds it), and a budget that *does*
trip produces a ``degraded`` result — which is never cached (see
:meth:`ResultCache.cacheable`).  Under that rule a hit is always
bit-identical to re-running the flow, whatever QoS tier asks.

Entries are one JSON file per key under ``<root>/cache/``, written
atomically, so the cache survives daemon restarts with the job store.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path as FilePath
from typing import Any, Dict, Optional, Union

from repro.observability.metrics import Metrics
from repro.service.jobs import read_json, write_json_atomic

CACHE_ENTRY_VERSION = 1

_BUDGET_CONFIG_FIELDS = (
    "wall_clock_budget_s",
    "astar_expansion_budget",
    "rip_round_budget",
)
"""Config fields stripped from the key: they bound work, never change it."""


def result_cache_key(
    design_hash: str,
    method: str,
    config_doc: Dict[str, Any],
    fault_doc: Optional[Dict[str, Any]] = None,
) -> str:
    """Return the sha256 cache key of one (design, method, config, faults).

    ``config_doc`` must be the *normalised* full
    :meth:`~repro.core.config.PacorConfig.to_json` document (defaults
    materialised), so a submission that spells out a default and one
    that omits it key identically.
    """
    config = {
        k: v for k, v in config_doc.items() if k not in _BUDGET_CONFIG_FIELDS
    }
    payload = {
        "design": design_hash,
        "method": method,
        "config": config,
        "faults": fault_doc,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of finished, non-degraded result documents.

    Hit/miss/store tallies go to the shared
    :class:`~repro.observability.metrics.Metrics` registry
    (``service.cache_hits`` / ``service.cache_misses`` /
    ``service.cache_stores``) so they surface in the daemon's ``/stats``
    endpoint alongside the routing counters.
    """

    def __init__(
        self,
        directory: Union[str, FilePath],
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.directory = FilePath(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        metrics = metrics if metrics is not None else Metrics()
        self._hits = metrics.counter("service.cache_hits")
        self._misses = metrics.counter("service.cache_misses")
        self._stores = metrics.counter("service.cache_stores")

    def entry_path(self, key: str) -> FilePath:
        return self.directory / f"{key}.json"

    @staticmethod
    def cacheable(result_doc: Dict[str, Any]) -> bool:
        """Return True when a result document may be cached.

        Degraded results (tripped budget, incidents, unrouted nets)
        depend on *where* the run was cut short, which the key does not
        capture — caching them would let one tier's truncation answer
        another tier's query.  Only clean, complete results enter.
        """
        return not result_doc.get("degraded", False)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached result document for ``key``, counting."""
        path = self.entry_path(key)
        if not path.is_file():
            self._misses.inc()
            return None
        entry = read_json(path)
        self._hits.inc()
        result = entry["result"]
        assert isinstance(result, dict)
        return result

    def put(
        self,
        key: str,
        result_doc: Dict[str, Any],
        *,
        job_id: str,
        design_hash: str,
        method: str,
    ) -> bool:
        """Store ``result_doc`` under ``key``; return False if rejected."""
        if not self.cacheable(result_doc):
            return False
        entry = {
            "version": CACHE_ENTRY_VERSION,
            "key": key,
            "design_hash": design_hash,
            "method": method,
            "source_job": job_id,
            "result": result_doc,
        }
        write_json_atomic(self.entry_path(key), entry)
        self._stores.inc()
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
