"""The HTTP/JSON face of the routing service (stdlib-only).

A thin, dependency-free layer over
:class:`~repro.service.daemon.PacorService`: a
:class:`http.server.ThreadingHTTPServer` subclassed handler translating
routes to service calls, and a :class:`ServiceClient` on
``urllib.request`` for the CLI, tests and benchmarks.

Routes (all under ``/api/v1``)::

    GET  /health                      liveness probe
    GET  /stats                       counters, queue depth, cache size
    GET  /jobs                        every job record
    POST /jobs                        submit {design, method?, qos?,
                                      config?, faults?, budget?} -> 201
    GET  /jobs/<id>                   one job record (the poll target)
    GET  /jobs/<id>/result            the PacorResult document
    GET  /jobs/<id>/trace             span JSONL of the run
    GET  /jobs/<id>/checkpoint        parked resume token (checkpoint)
    GET  /jobs/<id>/events?after=N    progress events past cursor N;
         [&follow=1&timeout=S]        follow streams until settled
    POST /jobs/<id>/resume            re-queue a preempted job
    POST /jobs/<id>/cancel            cancel queued / preempt running

Error mapping: malformed payloads (design/config/fault/job format
errors) are 400, unknown jobs 404, illegal state transitions
(:class:`~repro.robustness.errors.ServiceError`) 409, anything else 500
— always as a JSON ``{"error": {"type", "message"}}`` body.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.robustness.errors import (
    ConfigError,
    DesignFormatError,
    FaultFormatError,
    JobFormatError,
    PacorError,
    ServiceError,
)
from repro.service.daemon import PacorService
from repro.service.jobs import TERMINAL_STATES, JobState

API_VERSION = "v1"
_PREFIX = f"/api/{API_VERSION}"

_JOB_ROUTE = re.compile(
    rf"^{_PREFIX}/jobs/(?P<job_id>[A-Za-z0-9_.-]+)"
    r"(?:/(?P<verb>result|trace|checkpoint|events|resume|cancel))?$"
)

_SETTLED_STATES = TERMINAL_STATES | {JobState.PREEMPTED}
"""States after which an event follower stops waiting for more."""


class _HTTPFailure(ServiceError):
    """Internal: carries an HTTP status + JSON error body to the edge."""

    def __init__(self, status: int, err_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.err_type = err_type


def _failure_of(exc: Exception) -> _HTTPFailure:
    name = type(exc).__name__
    if isinstance(exc, JobFormatError) and "no such job" in str(exc):
        return _HTTPFailure(404, name, str(exc))
    if isinstance(
        exc, (DesignFormatError, ConfigError, FaultFormatError, JobFormatError)
    ):
        return _HTTPFailure(400, name, str(exc))
    if isinstance(exc, ServiceError):
        return _HTTPFailure(409, name, str(exc))
    if isinstance(exc, PacorError):
        return _HTTPFailure(400, name, str(exc))
    return _HTTPFailure(500, name, f"{name}: {exc}")


class _Handler(BaseHTTPRequestHandler):
    """Routes one request into the service (instantiated per request)."""

    # Set by make_handler():
    service: PacorService

    # HTTP/1.0 keeps the close-delimited streaming of /events?follow=1
    # trivial; clients reconnect per request, which urllib does anyway.
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # requests are traced by the service, not stderr

    # -- plumbing -----------------------------------------------------------

    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, failure: _HTTPFailure) -> None:
        self._send_json(
            failure.status,
            {"error": {"type": failure.err_type, "message": str(failure)}},
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPFailure(400, "BadRequest", f"body is not JSON ({exc})")
        if not isinstance(doc, dict):
            raise _HTTPFailure(
                400, "BadRequest", "body must be a JSON object"
            )
        return doc

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        query: Dict[str, str] = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                query[key] = value
        return query

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        path = self.path.split("?", 1)[0].rstrip("/")
        match = _JOB_ROUTE.match(path)
        if match:
            return path, match.group("job_id"), match.group("verb")
        return path, None, None

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            path, job_id, verb = self._route()
            if path == f"{_PREFIX}/health":
                self._send_json(
                    200, {"status": "ok", "api_version": API_VERSION}
                )
            elif path == f"{_PREFIX}/stats":
                self._send_json(200, self.service.stats())
            elif path == f"{_PREFIX}/jobs":
                self._send_json(
                    200,
                    {"jobs": [r.to_json() for r in self.service.jobs()]},
                )
            elif job_id is not None and verb is None:
                self._send_json(200, self.service.job(job_id).to_json())
            elif job_id is not None and verb == "result":
                self._send_json(200, self.service.result_doc(job_id))
            elif job_id is not None and verb == "checkpoint":
                self._send_json(200, self.service.checkpoint_doc(job_id))
            elif job_id is not None and verb == "trace":
                body = "\n".join(self.service.trace_lines(job_id))
                data = (body + "\n").encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            elif job_id is not None and verb == "events":
                self._events(job_id)
            else:
                raise _HTTPFailure(404, "NotFound", f"no route {path!r}")
        except _HTTPFailure as failure:
            self._send_error_json(failure)
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            self._send_error_json(_failure_of(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            path, job_id, verb = self._route()
            if path == f"{_PREFIX}/jobs":
                body = self._read_body()
                design = body.get("design")
                if not isinstance(design, dict):
                    raise _HTTPFailure(
                        400, "BadRequest", "submission needs a 'design' object"
                    )
                record = self.service.submit(
                    design,
                    method=str(body.get("method", "PACOR")),
                    qos=str(body.get("qos", "standard")),
                    config=body.get("config"),
                    faults=body.get("faults"),
                    budget=body.get("budget"),
                )
                self._send_json(201, record.to_json())
            elif job_id is not None and verb == "resume":
                body = self._read_body()
                qos = body.get("qos")
                record = self.service.resume(
                    job_id,
                    qos=str(qos) if qos is not None else None,
                    budget=body.get("budget"),
                )
                self._send_json(200, record.to_json())
            elif job_id is not None and verb == "cancel":
                self._send_json(200, self.service.cancel(job_id).to_json())
            else:
                raise _HTTPFailure(404, "NotFound", f"no route {path!r}")
        except _HTTPFailure as failure:
            self._send_error_json(failure)
        except Exception as exc:  # noqa: BLE001 - HTTP boundary
            self._send_error_json(_failure_of(exc))

    # -- event streaming ----------------------------------------------------

    def _events(self, job_id: str) -> None:
        query = self._query()
        after = int(query.get("after", "0"))
        follow = query.get("follow", "0") not in ("0", "", "false")
        timeout = float(query.get("timeout", "60"))
        if not follow:
            self._send_json(200, self.service.events(job_id, after))
            return
        # Follow mode: close-delimited ndjson stream of event documents,
        # ending once the job settles and the stream is drained.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        deadline = time.perf_counter() + timeout
        cursor = after
        while True:
            batch = self.service.events(job_id, cursor)
            for doc in batch["events"]:
                self.wfile.write(
                    (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
                )
            self.wfile.flush()
            cursor = int(batch["cursor"])
            if not batch["events"] and batch["state"] in _SETTLED_STATES:
                return
            if time.perf_counter() > deadline:
                return
            time.sleep(0.05)


def make_handler(service: PacorService) -> type:
    """Build the request-handler class bound to ``service``."""
    return type("PacorAPIHandler", (_Handler,), {"service": service})


class ServiceAPIServer:
    """The threaded HTTP server wrapping one :class:`PacorService`.

    ``port=0`` binds an ephemeral port; read the resolved one from
    :attr:`port` / :attr:`url` after construction.
    """

    def __init__(
        self,
        service: PacorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), make_handler(service))
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[Any] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve requests on a background thread (idempotent)."""
        if self._thread is not None:
            return
        import threading

        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="pacor-api",
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting requests and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread = None


class ServiceClient:
    """Minimal urllib client for the API (CLI / tests / benchmarks)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(
            f"{self.url}{_PREFIX}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                err = json.loads(detail)["error"]
                message = f"{err['type']}: {err['message']}"
            except (json.JSONDecodeError, KeyError, TypeError):
                message = detail or str(exc)
            raise ServiceError(f"HTTP {exc.code} — {message}") from exc
        assert isinstance(doc, dict)
        return doc

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        jobs = self._request("GET", "/jobs")["jobs"]
        assert isinstance(jobs, list)
        return jobs

    def submit(
        self,
        design_doc: Dict[str, Any],
        *,
        method: str = "PACOR",
        qos: str = "standard",
        config: Optional[Dict[str, Any]] = None,
        faults: Optional[Dict[str, Any]] = None,
        budget: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "design": design_doc,
            "method": method,
            "qos": qos,
        }
        if config is not None:
            body["config"] = config
        if faults is not None:
            body["faults"] = faults
        if budget is not None:
            body["budget"] = budget
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def checkpoint(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/checkpoint")

    def trace(self, job_id: str) -> List[Dict[str, Any]]:
        req = urllib.request.Request(
            f"{self.url}{_PREFIX}/jobs/{job_id}/trace"
        )
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            text = resp.read().decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line]

    def events(self, job_id: str, after: int = 0) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/events?after={after}")

    def follow_events(
        self, job_id: str, after: int = 0, timeout: float = 60.0
    ) -> Iterator[Dict[str, Any]]:
        """Yield event documents live until the job settles."""
        req = urllib.request.Request(
            f"{self.url}{_PREFIX}/jobs/{job_id}/events"
            f"?after={after}&follow=1&timeout={timeout}"
        )
        with urllib.request.urlopen(req, timeout=timeout + 10) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)

    def resume(
        self,
        job_id: str,
        *,
        qos: Optional[str] = None,
        budget: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if qos is not None:
            body["qos"] = qos
        if budget is not None:
            body["budget"] = budget
        return self._request("POST", f"/jobs/{job_id}/resume", body)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.1,
        until: Callable[[Dict[str, Any]], bool] = (
            lambda record: record["state"] in _SETTLED_STATES
        ),
    ) -> Dict[str, Any]:
        """Poll until the job settles; return its final record.

        Raises:
            ServiceError: the job did not settle within ``timeout``.
        """
        deadline = time.perf_counter() + timeout
        while True:
            record = self.job(job_id)
            if until(record):
                return record
            if time.perf_counter() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)
