"""The routing service daemon: queue, worker pool, cache, recovery.

:class:`PacorService` owns the whole server-side state machine:

* **submit** — validate the design/method/config, compute the canonical
  cache key, and either answer straight from the
  :class:`~repro.service.cache.ResultCache` (``service.cache_hits``) or
  persist a queued :class:`~repro.service.jobs.JobRecord`.
* **dispatch** — a background thread pops ``(priority, seq)``-ordered
  jobs off the :class:`~repro.service.queue.JobQueue` into a
  ``multiprocessing`` worker pool running
  :func:`~repro.service.workers.run_job`, and reaps finished workers by
  reading their atomically-written ``outcome.json``.
* **preempt/park** — stopping the daemon (or cancelling a running job)
  SIGTERMs the worker; the worker parks an interrupt checkpoint and the
  job is reaped as ``preempted``, resumable later.
* **recover** — a fresh daemon over an existing root re-queues ``queued``
  jobs and converts orphaned ``running`` jobs (a previous daemon died)
  to ``preempted`` (checkpoint parked) or back to ``queued``.

Thread-safety: one re-entrant lock guards queue + worker table + record
writes; the HTTP layer (:mod:`repro.service.api`) calls into this class
from request threads while the dispatcher loop runs.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import Any, Dict, List, Optional, Union

from repro.core.pipeline import METHODS
from repro.core.config import PacorConfig
from repro.designs.io import design_from_json
from repro.observability.metrics import Metrics
from repro.robustness.errors import ServiceError
from repro.robustness.faultmap import FaultMap
from repro.service.cache import ResultCache, result_cache_key
from repro.service.jobs import (
    DEFAULT_QOS,
    QOS_TIERS,
    JobRecord,
    JobState,
    JobStore,
    read_json,
    write_json_atomic,
)
from repro.service.queue import JobQueue
from repro.service.workers import run_job

_BUDGET_KEYS = ("wall_clock_s", "astar_expansions", "rip_rounds")


@dataclass
class _WorkerHandle:
    """One live worker process and the job it owns."""

    job_id: str
    process: Any  # multiprocessing.process.BaseProcess


class PacorService:
    """The routing service: persistent queue, worker pool, result cache.

    Args:
        root: service state directory (job store + cache live under it).
        workers: maximum concurrently running worker processes.
        start_method: ``multiprocessing`` start method (None = platform
            default; the service is spawn-safe either way).
        poll_interval: dispatcher loop sleep between reap/dispatch steps.
        metrics: shared metrics registry (``service.*`` counters).
    """

    def __init__(
        self,
        root: Union[str, FilePath],
        *,
        workers: int = 2,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be at least 1")
        self.store = JobStore(root)
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache = ResultCache(self.store.cache_dir, self.metrics)
        self.queue = JobQueue()
        self.max_workers = workers
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: Dict[str, _WorkerHandle] = {}
        self._lock = threading.RLock()
        # Under the determinism sanitizer, holding this lock is what
        # legitimises cross-thread occupancy access (no-op when off).
        from repro.analysis.sanitize import enabled, register_lock

        if enabled():
            register_lock(self._lock)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._submitted = self.metrics.counter("service.jobs_submitted")
        self._completed = self.metrics.counter("service.jobs_completed")
        self._failed = self.metrics.counter("service.jobs_failed")
        self._preempted = self.metrics.counter("service.preemptions")
        self._resumed = self.metrics.counter("service.resumes")
        self._cancelled = self.metrics.counter("service.cancellations")
        self._recovered = self.metrics.counter("service.recovered_jobs")
        self._recover()

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the queue from disk; settle orphans of a dead daemon."""
        for record in self.store.records():
            if record.state == JobState.RUNNING:
                # This daemon just started, so no live worker owns the
                # job — its previous daemon died. A parked (or
                # mid-write-complete) checkpoint makes it resumable.
                self._recovered.inc()
                if self.store.checkpoint_path(record.job_id).is_file():
                    record.state = JobState.PREEMPTED
                    record.preempt_kind = "daemon-restart"
                    self.store.save(record)
                    self.store.append_event(
                        record.job_id,
                        {
                            "kind": "status",
                            "status": "recovered",
                            "state": record.state,
                        },
                    )
                else:
                    record.state = JobState.QUEUED
                    self.store.save(record)
                    self.queue.push(record.priority, record.seq, record.job_id)
                    self.store.append_event(
                        record.job_id,
                        {
                            "kind": "status",
                            "status": "recovered",
                            "state": record.state,
                        },
                    )
            elif record.state == JobState.QUEUED:
                self.queue.push(record.priority, record.seq, record.job_id)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        design_doc: Dict[str, Any],
        *,
        method: str = "PACOR",
        qos: str = DEFAULT_QOS,
        config: Optional[Dict[str, Any]] = None,
        faults: Optional[Dict[str, Any]] = None,
        budget: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Validate and enqueue one routing job; answer from cache if hit.

        Args:
            design_doc: the design JSON document (validated by
                :func:`~repro.designs.io.design_from_json`).
            method: Table-2 method name.
            qos: tier name — priority plus default run budgets.
            config: partial :class:`~repro.core.config.PacorConfig`
                overrides (normalised into a full document).
            faults: optional FaultMap document.
            budget: explicit run-budget overrides
                (``wall_clock_s``/``astar_expansions``/``rip_rounds``),
                winning over the tier's defaults.

        Raises:
            DesignFormatError / ConfigError / FaultFormatError: the
                submission payload is malformed.
            ServiceError: unknown method/qos, bad budget override, or
                the daemon is stopping.
        """
        design = design_from_json(design_doc)
        if method not in METHODS:
            raise ServiceError(
                f"unknown method {method!r}; choose from {list(METHODS)}"
            )
        tier = QOS_TIERS.get(qos)
        if tier is None:
            raise ServiceError(
                f"unknown qos tier {qos!r}; choose from {list(QOS_TIERS)}"
            )
        config_doc = PacorConfig.from_json(dict(config or {})).to_json()
        limits = tier.budget_doc()
        for key, value in (budget or {}).items():
            if key not in _BUDGET_KEYS:
                raise ServiceError(
                    f"unknown budget field {key!r}; "
                    f"choose from {list(_BUDGET_KEYS)}"
                )
            limits[key] = value
        if faults is not None:
            faults = FaultMap.from_json(faults).to_json()
        design_hash = design.canonical_hash()
        key = result_cache_key(design_hash, method, config_doc, faults)
        with self._lock:
            if self._stop.is_set():
                raise ServiceError("service is shutting down")
            self._submitted.inc()
            record = self.store.allocate(
                design_doc=design_doc,
                design_name=design.name,
                design_hash=design_hash,
                method=method,
                qos=qos,
                priority=tier.priority,
                config=config_doc,
                budget=limits,
                cache_key=key,
                fault_doc=faults,
            )
            cached = self.cache.get(key)
            if cached is not None:
                write_json_atomic(self.store.result_path(record.job_id), cached)
                record.state = JobState.SUCCEEDED
                record.cached = True
                record.degraded = bool(cached.get("degraded", False))
                record.summary = cached.get("summary")
                record.finished_at = time.time()
                self.store.save(record)
                self._completed.inc()
                self.store.append_event(
                    record.job_id,
                    {"kind": "status", "status": "cache-hit", "state": record.state},
                )
            else:
                self.queue.push(record.priority, record.seq, record.job_id)
                self.store.append_event(
                    record.job_id,
                    {"kind": "status", "status": "queued", "qos": qos},
                )
            return record

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="pacor-dispatcher", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.step()
            self._stop.wait(self.poll_interval)

    def step(self) -> None:
        """One dispatcher iteration: reap finished workers, fill slots.

        Public so tests (and a thread-less embedding) can drive the
        service synchronously.
        """
        with self._lock:
            self._reap()
            while len(self._workers) < self.max_workers:
                job_id = self.queue.pop()
                if job_id is None:
                    break
                self._launch(job_id)

    def _launch(self, job_id: str) -> None:
        record = self.store.load(job_id)
        record.state = JobState.RUNNING
        record.attempts += 1
        record.started_at = time.time()
        self.store.save(record)
        # The event goes in *before* the worker starts: the daemon only
        # appends while no worker owns the stream.
        self.store.append_event(
            job_id,
            {"kind": "status", "status": "dispatched", "attempt": record.attempts},
        )
        process = self._ctx.Process(
            target=run_job,
            args=(str(self.store.job_dir(job_id)),),
            name=f"pacor-worker-{job_id}",
            daemon=True,
        )
        process.start()
        self._workers[job_id] = _WorkerHandle(job_id=job_id, process=process)

    def _reap(self) -> None:
        for job_id in list(self._workers):
            handle = self._workers[job_id]
            if handle.process.is_alive():
                continue
            del self._workers[job_id]
            handle.process.join()
            self._settle(job_id, handle.process.exitcode)

    def _settle(self, job_id: str, exitcode: Optional[int]) -> None:
        """Fold a finished worker's outcome back into the job record."""
        record = self.store.load(job_id)
        record.finished_at = time.time()
        outcome_path = self.store.outcome_path(job_id)
        if outcome_path.is_file():
            outcome = read_json(outcome_path)
            record.state = str(outcome.get("state", JobState.FAILED))
            record.degraded = outcome.get("degraded")
            record.preempt_kind = outcome.get("preempt_kind")
            record.error = outcome.get("error")
            record.summary = outcome.get("summary")
            # The outcome is consumed: a future attempt (resume) must
            # not be mistaken for this one.
            outcome_path.unlink()
        elif self.store.checkpoint_path(job_id).is_file():
            # Crashed after parking a checkpoint but before reporting —
            # the parked work is still resumable.
            record.state = JobState.PREEMPTED
            record.preempt_kind = "worker-crash"
        elif record.cancel_requested and exitcode == -signal.SIGTERM:
            # The cancel SIGTERM landed in the child's startup window,
            # before run_job installed its preemption handler: nothing
            # was routed and nothing needs resuming.  That is a
            # completed cancellation, not a crash.
            record.state = JobState.PREEMPTED
            record.preempt_kind = "sigterm"
        else:
            record.state = JobState.FAILED
            record.error = f"worker crashed (exit code {exitcode})"
        if (
            record.state == JobState.PREEMPTED
            and record.cancel_requested
        ):
            record.state = JobState.CANCELLED
            self._cancelled.inc()
        elif record.state == JobState.SUCCEEDED:
            self._completed.inc()
            result_path = self.store.result_path(job_id)
            if not record.cached and result_path.is_file():
                self.cache.put(
                    record.cache_key,
                    read_json(result_path),
                    job_id=job_id,
                    design_hash=record.design_hash,
                    method=record.method,
                )
        elif record.state == JobState.PREEMPTED:
            self._preempted.inc()
        else:
            self._failed.inc()
        self.store.save(record)
        self.store.append_event(
            job_id,
            {
                "kind": "status",
                "status": "settled",
                "state": record.state,
                "preempt_kind": record.preempt_kind,
                "error": record.error,
            },
        )

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatching and shut the worker pool down.

        Graceful stop SIGTERMs live workers
        (:meth:`multiprocessing.Process.terminate` sends SIGTERM on
        POSIX); each worker parks its checkpoint and reports
        ``preempted``, so a later daemon over the same root can resume
        the interrupted jobs.  Workers that outlive ``timeout`` are
        killed and settled by crash accounting.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        with self._lock:
            live = list(self._workers.values())
        for handle in live:
            if handle.process.is_alive():
                if graceful:
                    handle.process.terminate()  # SIGTERM: park, don't kill
                else:
                    handle.process.kill()
        deadline_budget = timeout
        for handle in live:
            step_start = time.perf_counter()
            handle.process.join(timeout=max(0.1, deadline_budget))
            deadline_budget -= time.perf_counter() - step_start
            if handle.process.is_alive():
                # Parking took too long; escalate.
                handle.process.kill()
                handle.process.join()
        with self._lock:
            self._reap()

    # -- job control --------------------------------------------------------

    def resume(
        self,
        job_id: str,
        *,
        qos: Optional[str] = None,
        budget: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Re-queue a ``preempted`` job; its worker resumes the parked
        checkpoint (or restarts cleanly when none was captured).

        A budget-exceeded job would trip the same limit at the same spot
        again, so the resume may move the job to another ``qos`` tier or
        apply explicit ``budget`` overrides for the retry.

        Raises:
            JobFormatError: unknown job.
            ServiceError: the job is not in a resumable state, or an
                override names an unknown tier/budget field.
        """
        with self._lock:
            record = self.store.load(job_id)
            if record.state != JobState.PREEMPTED:
                raise ServiceError(
                    f"job {job_id} is {record.state}, not preempted; "
                    "only preempted jobs can be resumed"
                )
            if qos is not None:
                tier = QOS_TIERS.get(qos)
                if tier is None:
                    raise ServiceError(
                        f"unknown qos tier {qos!r}; "
                        f"choose from {list(QOS_TIERS)}"
                    )
                record.qos = qos
                record.priority = tier.priority
                record.budget = tier.budget_doc()
            for key, value in (budget or {}).items():
                if key not in _BUDGET_KEYS:
                    raise ServiceError(
                        f"unknown budget field {key!r}; "
                        f"choose from {list(_BUDGET_KEYS)}"
                    )
                record.budget[key] = value
            record.state = JobState.QUEUED
            record.preempt_kind = None
            record.cancel_requested = False
            self.store.save(record)
            self.queue.push(record.priority, record.seq, record.job_id)
            self._resumed.inc()
            self.store.append_event(
                job_id, {"kind": "status", "status": "resubmitted"}
            )
            return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job, or preempt-and-cancel a running one.

        Raises:
            JobFormatError: unknown job.
            ServiceError: the job already settled.
        """
        with self._lock:
            record = self.store.load(job_id)
            if record.state == JobState.QUEUED:
                self.queue.remove(job_id)
                record.state = JobState.CANCELLED
                self.store.save(record)
                self._cancelled.inc()
                self.store.append_event(
                    job_id, {"kind": "status", "status": "cancelled"}
                )
                return record
            if record.state == JobState.RUNNING:
                record.cancel_requested = True
                self.store.save(record)
                handle = self._workers.get(job_id)
                if handle is not None and handle.process.is_alive():
                    handle.process.terminate()  # SIGTERM -> park -> reap
                return record
            raise ServiceError(
                f"job {job_id} is {record.state} and cannot be cancelled"
            )

    # -- queries ------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        """Return the current record of ``job_id``."""
        with self._lock:
            return self.store.load(job_id)

    def jobs(self) -> List[JobRecord]:
        """Return every job record in submission order."""
        with self._lock:
            return self.store.records()

    def result_doc(self, job_id: str) -> Dict[str, Any]:
        """Return the stored result document of a finished job.

        Raises:
            ServiceError: the job has no result (yet).
        """
        record = self.job(job_id)
        path = self.store.result_path(job_id)
        if not path.is_file():
            raise ServiceError(
                f"job {job_id} is {record.state} and has no result"
            )
        return read_json(path)

    def checkpoint_doc(self, job_id: str) -> Dict[str, Any]:
        """Return the parked resume checkpoint of a preempted job.

        Raises:
            ServiceError: no checkpoint is parked for the job.
        """
        record = self.job(job_id)
        path = self.store.checkpoint_path(job_id)
        if not path.is_file():
            raise ServiceError(
                f"job {job_id} is {record.state} and has no parked checkpoint"
            )
        return read_json(path)

    def trace_lines(self, job_id: str) -> List[str]:
        """Return the raw JSONL trace lines of a finished job."""
        path = self.store.trace_path(job_id)
        if not path.is_file():
            raise ServiceError(f"job {job_id} has no trace (yet)")
        with open(path, "r", encoding="utf-8") as handle:
            return [line.rstrip("\n") for line in handle if line.strip()]

    def events(self, job_id: str, after: int = 0) -> Dict[str, Any]:
        """Return ``{"events", "cursor", "state"}`` past cursor ``after``."""
        record = self.job(job_id)  # raises JobFormatError on unknown id
        docs, cursor = self.store.read_events(job_id, after)
        return {"events": docs, "cursor": cursor, "state": record.state}

    def stats(self) -> Dict[str, Any]:
        """Return the daemon's live statistics document."""
        with self._lock:
            states: Dict[str, int] = {}
            for record in self.store.records():
                states[record.state] = states.get(record.state, 0) + 1
            return {
                "counters": self.metrics.counter_values(),
                "queue_depth": len(self.queue),
                "queued_jobs": self.queue.job_ids(),
                "active_workers": len(self._workers),
                "max_workers": self.max_workers,
                "jobs_by_state": states,
                "cache_entries": len(self.cache),
            }

    def drain(self, timeout: float = 300.0) -> bool:
        """Block until queue and workers are empty; True on success.

        Testing/CLI helper — the dispatcher thread must be running.
        """
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                idle = not self._workers and len(self.queue) == 0
            if idle:
                return True
            time.sleep(min(self.poll_interval, 0.05))
        return False
