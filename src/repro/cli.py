"""Command-line front-end: ``pacor <command> ...`` or ``python -m repro``.

Commands:

* ``pacor route S3`` — run a method on a suite design (or a JSON design
  file), print the Table-2 row and optionally export SVG/ASCII art.
  With ``--checkpoint ckpt.json``, a budget-interrupted run writes its
  resumable snapshot there instead of throwing the work away.
* ``pacor resume ckpt.json`` — continue an interrupted run from its
  checkpoint with a fresh budget.
* ``pacor route S3 --faults faults.json`` — route under a physical
  fault map (blocked cells, stuck valves, timed mid-flow events); the
  flow rips and repairs the damaged nets.
* ``pacor repair result.json --faults faults.json`` — heal a finished
  routing against a fault map, re-routing only the affected nets
  through the escalation ladder.  Also accepts a mid-repair checkpoint
  (written on budget exhaustion) to resume the remaining nets.
* ``pacor route S3 --trace t.jsonl --metrics m.json`` — additionally
  record a nested span trace and the kernel effort counters; ``pacor
  profile t.jsonl`` then prints the per-stage time table and the top
  nets by A* expansions.
* ``pacor serve --root DIR`` — run the routing service daemon: a
  persistent job queue + worker pool + HTTP/JSON API (see
  ``docs/service.md``).  ``pacor submit S3 --url URL --wait`` submits a
  design and polls it to completion; ``pacor jobs --url URL`` lists the
  queue; ``pacor hash S3`` prints the canonical design hash the service
  result cache is keyed on.
* ``pacor table1`` — print the benchmark-parameter table.
* ``pacor table2 --designs S1 S2`` — run the three-method comparison.
* ``pacor generate out.json --width 40 ...`` — synthesize a new design.
* ``pacor lint [paths...]`` — run pacorlint, the AST-based invariant
  checker (exit 1 on violations, 2 on internal error; see
  ``docs/static_analysis.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    DelayModel,
    cluster_skews,
    format_table,
    quality_ratio,
    table1_rows,
    verify_result,
)
from repro.analysis.report import table2_headers, table2_rows
from repro.core import METHODS, PacorConfig, run_method
from repro.designs import (
    ClusterPlan,
    design_by_name,
    generate_design,
    generate_fpva,
    load_design,
    save_design,
    table1_suite,
)
from repro.observability import Metrics, Tracer
from repro.robustness.checkpoint import Checkpoint
from repro.robustness.errors import (
    CheckpointFormatError,
    DesignFormatError,
    FaultFormatError,
    JobFormatError,
    ServiceError,
)
from repro.viz import render_ascii, render_svg


def _resolve_design(token: str):
    """Resolve a design token (suite name or .json path), diagnosably.

    Every subcommand resolves its design through here; any malformed or
    unknown input surfaces as :class:`DesignFormatError`, which
    :func:`main` turns into a one-line exit-2 diagnosis instead of a
    traceback.
    """
    try:
        if token.endswith(".json"):
            return load_design(token)
        return design_by_name(token)
    except DesignFormatError:
        raise
    except ValueError as exc:
        raise DesignFormatError(str(exc)) from None


def _report_result(
    design,
    result,
    args: argparse.Namespace,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> int:
    """Print a run's summary/diagnostics and honour the export flags."""
    row = result.summary_row()
    print(
        f"{row['design']}: method={row['method']} "
        f"matched={row['matched_clusters']}/{row['n_clusters']} "
        f"matched_len={row['total_matched_length']} "
        f"total_len={row['total_length']} "
        f"completion={row['completion']:.1%} "
        f"runtime={row['runtime_s']:.2f}s"
    )
    if result.incidents:
        counts = [
            (severity, sum(1 for i in result.incidents if i.severity.value == severity))
            for severity in ("info", "degraded", "fatal")
        ]
        summary = ", ".join(f"{n} {sev}" for sev, n in counts if n)
        print(f"incidents: {summary}")
    if result.degraded:
        print("warning: degraded result", file=sys.stderr)
        for incident in result.incidents:
            print(
                f"  [{incident.stage}] {incident.kind}: {incident.message}",
                file=sys.stderr,
            )
        for net in result.nets:
            if not net.routed and net.failure_reason:
                print(
                    f"  net {net.net_id} unrouted: {net.failure_reason}",
                    file=sys.stderr,
                )
    if args.checkpoint:
        if result.checkpoint is not None:
            Checkpoint.from_json(result.checkpoint).save(args.checkpoint)
            print(
                f"wrote {args.checkpoint} (resume with: "
                f"pacor resume {args.checkpoint})"
            )
        else:
            print(
                "note: no budget interruption, no checkpoint written",
                file=sys.stderr,
            )
    if args.verify:
        notes = verify_result(design, result)
        print(f"verification OK ({len(notes)} notes)")
        for note in notes:
            print(f"  note: {note}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(render_svg(design, result))
        print(f"wrote {args.svg}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=1)
        print(f"wrote {args.json}")
    # Observability exports exist only on route/resume; getattr keeps
    # this helper reusable by subcommands without the flags.
    if getattr(args, "trace", None) and tracer is not None:
        n_spans = tracer.export_jsonl(args.trace)
        print(f"wrote {args.trace} ({n_spans} spans)")
    if getattr(args, "chrome_trace", None) and tracer is not None:
        n_events = tracer.export_chrome(args.chrome_trace)
        print(f"wrote {args.chrome_trace} ({n_events} trace events)")
    if getattr(args, "metrics", None) and metrics is not None:
        metrics.export_json(args.metrics)
        doc = metrics.to_json()
        print(
            f"wrote {args.metrics} ({len(doc['counters'])} counters, "
            f"{len(doc['gauges'])} gauges)"
        )
    if args.ascii:
        print(render_ascii(design, result))
    if args.events:
        for event in result.events:
            print(f"  {event}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    design = _resolve_design(args.design)
    if args.layers is not None or args.via_cost is not None:
        try:
            design = design.with_layers(
                args.layers
                if args.layers is not None
                else design.grid.layers,
                via_cost=(
                    args.via_cost
                    if args.via_cost is not None
                    else design.grid.via_cost
                ),
                via_length=design.grid.via_length,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        config = PacorConfig(
            k_candidates=args.candidates,
            wall_clock_budget_s=args.budget_s,
            astar_expansion_budget=args.expansion_budget,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fault_map = None
    if args.faults:
        from repro.robustness.faultmap import FaultMap

        fault_map = FaultMap.load(args.faults)
    tracer = Tracer() if (args.trace or args.chrome_trace) else None
    metrics = Metrics() if args.metrics else None
    result = run_method(
        design,
        args.method,
        config,
        tracer=tracer,
        metrics=metrics,
        fault_map=fault_map,
    )
    return _report_result(design, result, args, tracer=tracer, metrics=metrics)


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.core.pacor import PacorRouter
    from repro.designs import design_from_json
    from repro.robustness.budget import Budget

    checkpoint = Checkpoint.load(args.checkpoint_file)
    design = design_from_json(checkpoint.design)
    # No budget flags means "finish the run": an unlimited fresh budget,
    # not the small one that interrupted the original run (which the
    # checkpointed config would otherwise recreate).
    try:
        budget = Budget(
            wall_clock_s=args.budget_s,
            astar_expansions=args.expansion_budget,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"resuming {checkpoint.design_name} at stage "
        f"{checkpoint.stage!r} (completed: "
        f"{', '.join(checkpoint.completed_stages) or 'none'})"
    )
    tracer = Tracer() if (args.trace or args.chrome_trace) else None
    metrics = Metrics() if args.metrics else None
    router = PacorRouter.from_checkpoint(
        design,
        checkpoint,
        budget=budget,
        carry_counters=args.carry_counters,
        tracer=tracer,
        metrics=metrics,
    )
    if router.carried_spans or router.carried_counters:
        print(
            f"carried over from the interrupted run: "
            f"{router.carried_spans} trace spans stitched, "
            f"{router.carried_counters} counters restored"
        )
    result = router.run()
    return _report_result(design, result, args, tracer=tracer, metrics=metrics)


def _cmd_repair(args: argparse.Namespace) -> int:
    """Heal a finished routing (or resume a mid-repair checkpoint)."""
    import json

    from repro.designs import design_from_json
    from repro.robustness.budget import Budget
    from repro.robustness.faultmap import FaultMap
    from repro.robustness.repair import (
        REPAIR_CHECKPOINT_KIND,
        RepairCheckpoint,
        repair_result,
        repair_resume,
    )

    with open(args.result, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            print(
                f"error: {args.result}: not valid JSON ({exc})",
                file=sys.stderr,
            )
            return 2
    try:
        budget = Budget(
            wall_clock_s=args.budget_s,
            astar_expansions=args.expansion_budget,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if isinstance(doc, dict) and doc.get("kind") == REPAIR_CHECKPOINT_KIND:
        snapshot = RepairCheckpoint.from_json(doc, source=args.result)
        design = design_from_json(snapshot.design)
        print(
            f"resuming repair of {design.name}: "
            f"{len(snapshot.pending)} nets pending"
        )
        outcome = repair_resume(snapshot, budget=budget)
    else:
        if not args.faults:
            print(
                "error: --faults FILE is required when repairing a result "
                "document (only repair checkpoints embed their fault map)",
                file=sys.stderr,
            )
            return 2
        if args.design:
            design = _resolve_design(args.design)
        else:
            name = ""
            if isinstance(doc, dict):
                name = str((doc.get("summary") or {}).get("design", ""))
            if not name:
                print(
                    "error: the result document names no design; "
                    "pass --design NAME_OR_FILE",
                    file=sys.stderr,
                )
                return 2
            design = _resolve_design(name)
        fault_map = FaultMap.load(args.faults)
        outcome = repair_result(design, doc, fault_map, budget=budget)
    result = outcome.result
    print(
        f"{design.name}: {len(outcome.affected)} nets affected, "
        f"{len(outcome.repaired)} repaired, "
        f"{len(outcome.degraded_nets)} degraded, "
        f"{len(outcome.dropped_valves)} valves lost"
    )
    for net_id in sorted(outcome.repaired):
        print(f"  net {net_id}: repaired via {outcome.repaired[net_id]} rung")
    for net_id in outcome.degraded_nets:
        print(f"  net {net_id}: degraded", file=sys.stderr)
    if outcome.checkpoint is not None:
        if args.checkpoint:
            with open(args.checkpoint, "w", encoding="utf-8") as handle:
                json.dump(outcome.checkpoint.to_json(), handle, indent=1)
            print(
                f"wrote {args.checkpoint} (resume with: "
                f"pacor repair {args.checkpoint})"
            )
        else:
            print(
                "note: budget exhausted mid-repair; rerun with "
                "--checkpoint FILE to save the remaining work",
                file=sys.stderr,
            )
    # The route/resume checkpoint branch of _report_result expects a
    # *flow* checkpoint document; the repair snapshot was handled above.
    args.checkpoint = None
    return _report_result(design, result, args)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Analyse a JSONL trace written by ``route --trace``."""
    from repro.observability import format_profile, profile_trace_file

    try:
        profile = profile_trace_file(args.trace_file, top_k=args.top)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_profile(profile))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run pacorlint (see docs/static_analysis.md)."""
    from repro.analysis.lint.runner import main as lint_main

    argv: List[str] = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.list_rules:
        argv.append("--list-rules")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    return lint_main(argv)


def _cmd_table1(args: argparse.Namespace) -> int:
    designs = table1_suite(include_chips=args.chips)
    headers = ["Design", "Size", "#Valves", "#Control pin", "#Obs"]
    print(format_table(headers, table1_rows(designs)))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    results = {name: [] for name in METHODS}
    for token in args.designs:
        design = _resolve_design(token)
        for name in METHODS:
            results[name].append(run_method(design, name))
    print(format_table(table2_headers(), table2_rows(results)))
    return 0


def _cmd_skew(args: argparse.Namespace) -> int:
    design = _resolve_design(args.design)
    result = run_method(design, args.method)
    model = DelayModel(tau0=args.tau0, alpha=args.alpha)
    skews = cluster_skews(design, result, model)
    rows = [
        [
            s.net_id,
            len(s.arrival),
            "yes" if s.matched else ("-" if s.matched is None else "no"),
            f"{s.skew:.4g}",
        ]
        for s in sorted(skews, key=lambda s: -s.skew)
    ]
    print(
        f"{design.name}: modelled switching skew "
        f"(tau0={args.tau0:g}, alpha={args.alpha:g})"
    )
    print(format_table(["net", "#valves", "matched", "skew [s]"], rows))
    print(f"quality ratio (length / lower bound): {quality_ratio(design, result):.2f}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    """Pretty-print rows saved by ``reproduce_table2.py --json``."""
    import json

    with open(args.results, "r", encoding="utf-8") as handle:
        rows = json.load(handle)
    headers = [
        "Design",
        "Method",
        "#Clusters",
        "#Matched",
        "MatchedLen",
        "TotalLen",
        "Completion",
        "Runtime[s]",
    ]
    table = [
        [
            r["design"],
            r["method"],
            r["n_clusters"],
            r["matched_clusters"],
            r["total_matched_length"],
            r["total_length"],
            f"{r['completion']:.0%}",
            f"{r['runtime_s']:.2f}",
        ]
        for r in rows
    ]
    print(format_table(headers, table))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.fpva is not None:
        try:
            rows_s, _, cols_s = args.fpva.lower().partition("x")
            rows, cols = int(rows_s), int(cols_s)
        except ValueError:
            print(
                f"error: --fpva wants ROWSxCOLS (e.g. 4x4), got {args.fpva!r}",
                file=sys.stderr,
            )
            return 2
        design = generate_fpva(
            rows,
            cols,
            n_pins=args.pins if args.pins != 20 else None,
            layers=args.layers,
            via_cost=args.via_cost,
            name=None if args.name == "custom" else args.name,
        )
    else:
        if args.width is None or args.height is None:
            print(
                "error: --width and --height are required without --fpva",
                file=sys.stderr,
            )
            return 2
        design = generate_design(
            args.name,
            args.width,
            args.height,
            clusters=[ClusterPlan(s) for s in args.cluster_sizes],
            n_singletons=args.singletons,
            n_pins=args.pins,
            n_obstacles=args.obstacles,
            seed=args.seed,
            layers=args.layers,
            via_cost=args.via_cost,
        )
    save_design(design, args.output)
    print(f"wrote {args.output}: {design!r}")
    return 0


def _service_url(args: argparse.Namespace) -> str:
    """Locate a running service: explicit --url, or --root/service.json."""
    if getattr(args, "url", None):
        return str(args.url)
    root = getattr(args, "root", None)
    if root:
        import json
        import os

        path = os.path.join(root, "service.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                info = json.load(handle)
        except FileNotFoundError:
            raise ServiceError(
                f"{path}: not found — is `pacor serve --root {root}` running?"
            ) from None
        except json.JSONDecodeError as exc:
            raise ServiceError(f"{path}: not valid JSON ({exc})") from None
        url = info.get("url") if isinstance(info, dict) else None
        if not isinstance(url, str) or not url:
            raise ServiceError(f"{path}: no 'url' field")
        return url
    raise ServiceError("pass --url URL or --root DIR to locate the service")


def _print_job_record(record: dict) -> None:
    """One-line outcome summary for a settled (or still-running) job."""
    line = f"{record['job_id']}: {record['state']}"
    if record.get("cached"):
        line += " (cache hit)"
    if record.get("preempt_kind"):
        line += (
            f" ({record['preempt_kind']}; resume with: "
            f"pacor jobs --resume {record['job_id']})"
        )
    if record.get("error"):
        line += f" — {record['error']}"
    print(line)
    summary = record.get("summary")
    if summary:
        print(
            f"  matched={summary['matched_clusters']}/{summary['n_clusters']} "
            f"matched_len={summary['total_matched_length']} "
            f"total_len={summary['total_length']} "
            f"completion={summary['completion']:.1%}"
        )


def _cmd_hash(args: argparse.Namespace) -> int:
    """Print the canonical design hash the service result cache keys on."""
    design = _resolve_design(args.design)
    digest = design.canonical_hash()
    if args.with_name:
        print(f"{digest}  {design.name}")
    else:
        print(digest)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the routing service daemon until SIGINT/SIGTERM."""
    import os
    import signal
    import threading
    from pathlib import Path

    from repro.service import PacorService, ServiceAPIServer
    from repro.service.jobs import write_json_atomic

    service = PacorService(
        args.root, workers=args.workers, start_method=args.start_method
    )
    server = ServiceAPIServer(service, host=args.host, port=args.port)
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    service.start()
    server.start()
    write_json_atomic(
        Path(args.root) / "service.json",
        {"url": server.url, "pid": os.getpid(), "workers": args.workers},
    )
    print(
        f"pacor service listening on {server.url} "
        f"(root: {args.root}, workers: {args.workers})"
    )
    recovered = service.metrics.counter_values().get(
        "service.recovered_jobs", 0
    )
    if recovered:
        print(f"recovered {recovered} job(s) from a previous daemon run")
    print("submit with: pacor submit S3 --url " + server.url)
    try:
        stop.wait()
    finally:
        print("stopping: draining workers ...")
        server.stop()
        service.stop(graceful=True)
        print("stopped (preempted jobs parked their checkpoints)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a design to a running service; optionally wait/follow."""
    import json

    from repro.designs import design_to_json
    from repro.service import ServiceClient

    design = _resolve_design(args.design)
    client = ServiceClient(_service_url(args), timeout=args.timeout)
    budget = {}
    if args.budget_s is not None:
        budget["wall_clock_s"] = args.budget_s
    if args.expansion_budget is not None:
        budget["astar_expansions"] = args.expansion_budget
    record = client.submit(
        design_to_json(design),
        method=args.method,
        qos=args.qos,
        budget=budget or None,
    )
    job_id = record["job_id"]
    print(f"submitted {design.name} as {job_id} (qos: {record['qos']})")
    if args.follow:
        for event in client.follow_events(job_id, timeout=args.timeout):
            print(f"  {json.dumps(event, sort_keys=True)}")
        record = client.job(job_id)
    elif args.wait:
        record = client.wait(job_id, timeout=args.timeout)
    if args.wait or args.follow:
        _print_job_record(record)
        if args.json and record["state"] == "succeeded":
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(client.result(job_id), handle, indent=1)
            print(f"wrote {args.json}")
        if record["state"] in ("failed", "cancelled"):
            return 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List, inspect, resume or cancel jobs on a running service."""
    import json

    from repro.service import ServiceClient

    client = ServiceClient(_service_url(args), timeout=args.timeout)
    if args.cancel:
        _print_job_record(client.cancel(args.cancel))
        return 0
    if args.resume:
        budget = {}
        if args.budget_s is not None:
            budget["wall_clock_s"] = args.budget_s
        if args.expansion_budget is not None:
            budget["astar_expansions"] = args.expansion_budget
        record = client.resume(
            args.resume, qos=args.qos, budget=budget or None
        )
        print(f"{record['job_id']}: requeued (qos: {record['qos']})")
        return 0
    if args.job:
        print(json.dumps(client.job(args.job), indent=1, sort_keys=True))
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=1, sort_keys=True))
        return 0
    records = client.jobs()
    if not records:
        print("no jobs")
        return 0
    rows = []
    for record in records:
        note = ""
        if record.get("cached"):
            note = "cache hit"
        elif record.get("preempt_kind"):
            note = record["preempt_kind"]
        elif record.get("error"):
            note = record["error"][:40]
        rows.append(
            [
                record["job_id"],
                record["design_name"],
                record["method"],
                record["qos"],
                record["state"],
                record["attempts"],
                note,
            ]
        )
    print(
        format_table(
            ["Job", "Design", "Method", "QoS", "State", "Attempts", "Note"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="pacor",
        description="PACOR control-layer routing (DAC 2015 reproduction)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="install the runtime determinism sanitizer before the "
        "command runs (also honoured via REPRO_SANITIZE=1; see "
        "docs/static_analysis.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route one design")
    route.add_argument("design", help="suite name (S1..S5, Chip1, Chip2) or .json file")
    route.add_argument("--method", choices=list(METHODS), default="PACOR")
    route.add_argument("--candidates", type=int, default=4, help="DME candidates per cluster")
    route.add_argument(
        "--layers",
        type=int,
        default=None,
        metavar="N",
        help="lift the design onto N routing layers before routing "
        "(valves/pins stay on layer 0; vias connect layers)",
    )
    route.add_argument(
        "--via-cost",
        dest="via_cost",
        type=int,
        default=None,
        metavar="N",
        help="search cost of one vertical (via) step (default: the "
        "design's own, 1)",
    )
    route.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on exhaustion a partial result is returned",
    )
    route.add_argument(
        "--expansion-budget",
        type=int,
        default=None,
        metavar="N",
        help="total A* expansion budget for the whole run",
    )
    route.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a resumable snapshot here when a budget interrupts the run",
    )
    route.add_argument(
        "--faults",
        metavar="FILE",
        help="route under this physical fault map (JSON: blocked cells, "
        "stuck valves, timed mid-flow events)",
    )
    route.add_argument("--verify", action="store_true", help="verify the solution")
    route.add_argument("--svg", metavar="FILE", help="write an SVG rendering")
    route.add_argument("--json", metavar="FILE", help="write the full result as JSON")
    route.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL span trace (analyse with: pacor profile FILE)",
    )
    route.add_argument(
        "--chrome-trace",
        metavar="FILE",
        help="write the trace in Chrome trace-event format (chrome://tracing)",
    )
    route.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the kernel effort counters/gauges as JSON",
    )
    route.add_argument("--ascii", action="store_true", help="print ASCII art")
    route.add_argument("--events", action="store_true", help="print the stage log")
    route.set_defaults(func=_cmd_route)

    resume = sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint"
    )
    resume.add_argument(
        "checkpoint_file", help="checkpoint written by route --checkpoint"
    )
    resume.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fresh wall-clock budget for the continuation",
    )
    resume.add_argument(
        "--expansion-budget",
        type=int,
        default=None,
        metavar="N",
        help="fresh A* expansion budget for the continuation",
    )
    resume.add_argument(
        "--carry-counters",
        action="store_true",
        help="count the interrupted run's spend against the new budget "
        "(limits bound the total across attempts)",
    )
    resume.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a new snapshot here if the continuation is interrupted too",
    )
    resume.add_argument("--verify", action="store_true", help="verify the solution")
    resume.add_argument("--svg", metavar="FILE", help="write an SVG rendering")
    resume.add_argument("--json", metavar="FILE", help="write the full result as JSON")
    resume.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL span trace; stitches onto the interrupted "
        "run's trace when the checkpoint carries one",
    )
    resume.add_argument(
        "--chrome-trace",
        metavar="FILE",
        help="write the trace in Chrome trace-event format",
    )
    resume.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the kernel effort counters/gauges as JSON",
    )
    resume.add_argument("--ascii", action="store_true", help="print ASCII art")
    resume.add_argument("--events", action="store_true", help="print the stage log")
    resume.set_defaults(func=_cmd_resume)

    repair = sub.add_parser(
        "repair",
        help="re-route the nets of a finished result hit by physical faults",
    )
    repair.add_argument(
        "result",
        help="result JSON written by route --json, or a mid-repair "
        "checkpoint written by repair --checkpoint",
    )
    repair.add_argument(
        "--faults",
        metavar="FILE",
        help="fault map JSON (required unless resuming a repair checkpoint)",
    )
    repair.add_argument(
        "--design",
        metavar="NAME_OR_FILE",
        help="design the result was routed on (default: the suite design "
        "named in the result document)",
    )
    repair.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the repair pass",
    )
    repair.add_argument(
        "--expansion-budget",
        type=int,
        default=None,
        metavar="N",
        help="A* expansion budget for the repair pass",
    )
    repair.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write a mid-repair snapshot here when the budget trips",
    )
    repair.add_argument("--verify", action="store_true", help="verify the healed solution")
    repair.add_argument("--svg", metavar="FILE", help="write an SVG rendering")
    repair.add_argument("--json", metavar="FILE", help="write the healed result as JSON")
    repair.add_argument("--ascii", action="store_true", help="print ASCII art")
    repair.add_argument("--events", action="store_true", help="print the stage log")
    repair.set_defaults(func=_cmd_repair)

    profile = sub.add_parser(
        "profile", help="analyse a trace written by route --trace"
    )
    profile.add_argument("trace_file", help="JSONL trace file")
    profile.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many top nets by A* expansions to show",
    )
    profile.set_defaults(func=_cmd_profile)

    lint = sub.add_parser(
        "lint",
        help="run pacorlint, the AST-based invariant checker",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    lint.add_argument("--json", action="store_true", help="JSON report")
    lint.add_argument(
        "--rules", metavar="ID[,ID...]", help="subset of rule ids to run"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted violations "
        "(default: <root>/.pacorlint-baseline.json when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current violations",
    )
    lint.set_defaults(func=_cmd_lint)

    table1 = sub.add_parser("table1", help="print the benchmark parameters")
    table1.add_argument("--no-chips", dest="chips", action="store_false")
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="run the three-method comparison")
    table2.add_argument(
        "--designs", nargs="+", default=["S1", "S2", "S3", "S4", "S5"]
    )
    table2.set_defaults(func=_cmd_table2)

    skew = sub.add_parser("skew", help="report modelled switching skew per net")
    skew.add_argument("design")
    skew.add_argument("--method", choices=list(METHODS), default="PACOR")
    skew.add_argument("--tau0", type=float, default=1e-4)
    skew.add_argument("--alpha", type=float, default=2.0)
    skew.set_defaults(func=_cmd_skew)

    show = sub.add_parser("show", help="print a saved results_table2.json")
    show.add_argument("results")
    show.set_defaults(func=_cmd_show)

    gen = sub.add_parser("generate", help="synthesize a design to JSON")
    gen.add_argument("output")
    gen.add_argument("--name", default="custom")
    gen.add_argument("--width", type=int, default=None)
    gen.add_argument("--height", type=int, default=None)
    gen.add_argument(
        "--cluster-sizes", type=int, nargs="*", default=[2, 2], metavar="N"
    )
    gen.add_argument("--singletons", type=int, default=2)
    gen.add_argument("--pins", type=int, default=20)
    gen.add_argument("--obstacles", type=int, default=10)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--layers",
        type=int,
        default=1,
        metavar="N",
        help="routing layers (valves/pins stay on layer 0; upper-layer "
        "obstacles are correlated with layer 0)",
    )
    gen.add_argument(
        "--via-cost",
        dest="via_cost",
        type=int,
        default=1,
        metavar="N",
        help="search cost of one vertical (via) step",
    )
    gen.add_argument(
        "--fpva",
        metavar="RxC",
        default=None,
        help="generate an R x C fully programmable valve array instead "
        "(ignores --width/--height/--cluster-sizes/--singletons/"
        "--obstacles)",
    )
    gen.set_defaults(func=_cmd_generate)

    # Service commands (see docs/service.md).  QoS tier names come from
    # the service's own catalogue so the CLI can't drift from it; the
    # jobs module import is lightweight (dataclasses only).
    from repro.service.jobs import DEFAULT_QOS, QOS_TIERS

    serve = sub.add_parser(
        "serve",
        help="run the routing service daemon (job queue + worker pool + HTTP API)",
    )
    serve.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="service state directory (job records, result cache, service.json)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: ephemeral, printed on start)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent routing worker processes",
    )
    serve.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: platform default)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a design to a running service"
    )
    submit.add_argument(
        "design", help="suite name (S1..S5, Chip1, Chip2) or .json file"
    )
    submit.add_argument(
        "--url", metavar="URL", help="service URL (printed by pacor serve)"
    )
    submit.add_argument(
        "--root",
        metavar="DIR",
        help="service root; reads DIR/service.json for the URL",
    )
    submit.add_argument("--method", choices=list(METHODS), default="PACOR")
    submit.add_argument(
        "--qos",
        choices=sorted(QOS_TIERS),
        default=DEFAULT_QOS,
        help="QoS tier: priority + budget envelope (see docs/service.md)",
    )
    submit.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the tier's wall-clock budget",
    )
    submit.add_argument(
        "--expansion-budget",
        type=int,
        default=None,
        metavar="N",
        help="override the tier's A* expansion budget",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job settles"
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream progress events (ndjson) until the job settles",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="client-side wait/follow timeout",
    )
    submit.add_argument(
        "--json",
        metavar="FILE",
        help="with --wait/--follow: save the result document here",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list, inspect, resume or cancel service jobs"
    )
    jobs.add_argument("--url", metavar="URL", help="service URL")
    jobs.add_argument(
        "--root",
        metavar="DIR",
        help="service root; reads DIR/service.json for the URL",
    )
    jobs.add_argument(
        "--job", metavar="ID", help="print one job record as JSON"
    )
    jobs.add_argument(
        "--resume", metavar="ID", help="requeue a preempted job"
    )
    jobs.add_argument("--cancel", metavar="ID", help="cancel a job")
    jobs.add_argument(
        "--qos",
        choices=sorted(QOS_TIERS),
        default=None,
        help="with --resume: switch the job to this QoS tier",
    )
    jobs.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --resume: override the wall-clock budget",
    )
    jobs.add_argument(
        "--expansion-budget",
        type=int,
        default=None,
        metavar="N",
        help="with --resume: override the A* expansion budget",
    )
    jobs.add_argument(
        "--stats", action="store_true", help="print service statistics"
    )
    jobs.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS"
    )
    jobs.set_defaults(func=_cmd_jobs)

    hash_cmd = sub.add_parser(
        "hash",
        help="print the canonical design hash (the service cache key input)",
    )
    hash_cmd.add_argument(
        "design", help="suite name (S1..S5, Chip1, Chip2) or .json file"
    )
    hash_cmd.add_argument(
        "--with-name",
        action="store_true",
        help="append the design name, sha256sum-style",
    )
    hash_cmd.set_defaults(func=_cmd_hash)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Malformed inputs exit with code 2 and a one-line diagnosis naming
    the file and field instead of a raw traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.analysis import sanitize

    if args.sanitize:
        sanitize.install()
    else:
        sanitize.install_from_env()
    try:
        return args.func(args)
    except (
        CheckpointFormatError,
        DesignFormatError,
        FaultFormatError,
        JobFormatError,
        ServiceError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc.filename or exc}: file not found", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
