"""Control synthesis front-end: from bioassay schedules to valve tables.

PACOR's input — "the valve switching time table" — comes from resource
binding and scheduling on the flow layer (the paper builds on Minhass et
al.'s control synthesis).  This package provides that substrate:

* :mod:`repro.synthesis.components` — flow-layer component models
  (rotary peristaltic mixer, binary multiplexer, input selector …),
  each knowing which of its valves must be open/closed/don't-care in
  each of its operation phases;
* :mod:`repro.synthesis.schedule` — an assay schedule (which component
  runs which operation at which time step) compiled into per-valve
  activation sequences (Defs 1–4 of the paper);
* :func:`repro.synthesis.assay_to_design` — end-to-end: place a small
  chip's components, compile the schedule, and emit a routable
  :class:`~repro.designs.design.Design`.
"""

from repro.synthesis.components import (
    Component,
    GuardBank,
    InputSelector,
    Multiplexer,
    RotaryMixer,
)
from repro.synthesis.schedule import AssaySchedule, Operation, compile_sequences
from repro.synthesis.chip import assay_to_design
from repro.synthesis.flowchip import mixer_chip_design

__all__ = [
    "Component",
    "RotaryMixer",
    "Multiplexer",
    "InputSelector",
    "GuardBank",
    "Operation",
    "AssaySchedule",
    "compile_sequences",
    "assay_to_design",
    "mixer_chip_design",
]
