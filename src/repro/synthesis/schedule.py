"""Assay schedules and their compilation into valve activation tables.

An :class:`AssaySchedule` places component operations on a discrete time
axis; :func:`compile_sequences` writes every operation's actuation
phases into a global "0-1-X" table — exactly the *valve switching time
table* the PACOR problem statement takes as given.  Steps a valve's
component is idle stay ``"X"`` (either state is acceptable), which is
what gives the compatibility graph its structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.synthesis.components import Component
from repro.valves.activation import ActivationSequence


@dataclass(frozen=True)
class Operation:
    """One scheduled operation.

    Attributes:
        component: name of the component that executes.
        operation: the component operation (e.g. ``"mix"``).
        start: first time step of the operation.
        repeats: how many times the operation's phase block repeats
            back-to-back (e.g. several peristaltic rotations).
    """

    component: str
    operation: str
    start: int
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("operations cannot start before step 0")
        if self.repeats < 1:
            raise ValueError("repeats must be positive")


@dataclass
class AssaySchedule:
    """A set of components plus the operations scheduled on them."""

    components: List[Component]
    operations: List[Operation]

    def component_by_name(self) -> Dict[str, Component]:
        table = {c.name: c for c in self.components}
        if len(table) != len(self.components):
            raise ValueError("component names must be unique")
        return table


def compile_sequences(schedule: AssaySchedule) -> Dict[Tuple[str, str], ActivationSequence]:
    """Compile a schedule into per-valve activation sequences.

    Returns a mapping ``(component name, local valve name) -> sequence``.
    All sequences share the schedule's total length (last operation end).
    Overlapping operations on one component raise :class:`ValueError`,
    as do conflicting concrete statuses (which cannot happen without
    overlap, but is checked anyway).
    """
    by_name = schedule.component_by_name()
    if not schedule.operations:
        raise ValueError("a schedule needs at least one operation")

    # Total horizon.
    horizon = 0
    spans: Dict[str, List[Tuple[int, int]]] = {}
    op_steps: List[Tuple[Operation, List[Dict[str, str]]]] = []
    for op in schedule.operations:
        if op.component not in by_name:
            raise ValueError(f"operation references unknown component {op.component!r}")
        component = by_name[op.component]
        phases = component.phases(op.operation) * op.repeats
        end = op.start + len(phases)
        for lo, hi in spans.get(op.component, []):
            if op.start < hi and lo < end:
                raise ValueError(
                    f"overlapping operations on component {op.component!r}"
                )
        spans.setdefault(op.component, []).append((op.start, end))
        op_steps.append((op, phases))
        horizon = max(horizon, end)

    table: Dict[Tuple[str, str], List[str]] = {}
    for component in schedule.components:
        for valve in component.valve_names():
            table[(component.name, valve)] = ["X"] * horizon

    for op, phases in op_steps:
        for offset, pattern in enumerate(phases):
            step = op.start + offset
            for valve, status in pattern.items():
                key = (op.component, valve)
                if key not in table:
                    raise ValueError(
                        f"operation {op.operation!r} writes unknown valve {valve!r}"
                    )
                current = table[key][step]
                if current != "X" and current != status:
                    raise ValueError(
                        f"conflicting statuses for {key} at step {step}"
                    )
                table[key][step] = status

    return {
        key: ActivationSequence("".join(steps)) for key, steps in table.items()
    }
