"""A flow-layer-aware demo chip: geometry-derived control obstacles.

Builds a complete two-layer demo design the way a real layout would be
assembled: the flow layer (a rotary mixing ring, a reagent distribution
comb and supply channels) is drawn first; valve sites are placed *on*
the flow channels; the flow geometry projects obstacles onto the control
layer (every flow cell except the valve sites); and the activation
sequences come from a compiled assay schedule.  The result is a
:class:`~repro.designs.design.Design` whose obstacle pattern has the
structure real chips have — sparse, snake-like, with valves embedded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.designs.design import Design
from repro.flowlayer import (
    FlowLayer,
    control_obstacles,
    multiplexer_tree,
    rotary_ring,
    straight_channel,
)
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.synthesis.components import GuardBank, Multiplexer, RotaryMixer
from repro.synthesis.schedule import AssaySchedule, Operation, compile_sequences
from repro.valves.valve import Valve


def mixer_chip_design(
    *,
    name: str = "flow-chip",
    grid_side: int = 36,
    delta: int = 1,
) -> Tuple[Design, FlowLayer]:
    """Build the two-layer demo chip; returns ``(design, flow layer)``.

    Layout: a 8x8 rotary ring centre-left, a 4-leaf distribution comb on
    the right feeding the ring, and a supply channel guarded by a valve
    bank at the bottom.
    """
    if grid_side < 32:
        raise ValueError("the demo chip needs at least a 32-cell grid side")
    grid = RoutingGrid(grid_side, grid_side)
    flow = FlowLayer()

    # Flow geometry.
    ring = flow.add(rotary_ring("mixer.ring", Point(6, 12), 8))
    comb = multiplexer_tree("mux", Point(20, 14), 4, pitch=3)
    for channel in comb:
        flow.add(channel)
    supply = flow.add(
        straight_channel("supply", Point(6, 26), Point(28, 26))
    )
    # The feed attaches to the ring's right edge away from valve sites.
    flow.add(straight_channel("feed", Point(14, 17), Point(19, 15)))

    # Valve sites.
    mixer = RotaryMixer("mixer")
    mux = Multiplexer("mux", 4)
    guard = GuardBank("guard", 3)

    ring_cells = ring.cells
    mixer_sites: Dict[str, Point] = {
        "in_a": ring_cells[1],
        "in_b": ring_cells[3],
        "out": ring_cells[5],
        # Peristalsis valves along the bottom edge, clear of the feed.
        "ring0": ring_cells[16],
        "ring1": ring_cells[18],
        "ring2": ring_cells[20],
    }
    mux_sites: Dict[str, Point] = {}
    for bit in range(mux.n_bits):
        for v in (0, 1):
            leaf = comb[1 + 2 * bit + v]
            mux_sites[f"bit{bit}_{v}"] = leaf.cells[1]
    guard_sites: Dict[str, Point] = {
        f"g{i}": supply.cells[4 + 7 * i] for i in range(3)
    }
    for sites in (mixer_sites, mux_sites, guard_sites):
        for cell in sites.values():
            flow.add_valve_site(cell)
    flow.validate(grid)
    grid.add_obstacles(control_obstacles(flow))

    # Activation sequences from a representative assay.
    schedule = AssaySchedule(
        components=[mixer, mux, guard],
        operations=[
            Operation("guard", "release", start=0),
            Operation("mux", "select:1", start=0),
            Operation("mixer", "load", start=1),
            Operation("mixer", "mix", start=3, repeats=2),
            # A concurrent reagent selection during flushing keeps the
            # mux lines incompatible with the mixer's outlet, so the
            # clustering stage does not fuse valves across components.
            Operation("mux", "select:1", start=15),
            Operation("mixer", "flush", start=15),
            Operation("guard", "seal", start=17),
        ],
    )
    sequences = compile_sequences(schedule)

    valves: List[Valve] = []
    lm_groups: List[List[int]] = []
    vid = 0
    id_of: Dict[Tuple[str, str], int] = {}
    for component, sites in (
        (mixer, mixer_sites),
        (mux, mux_sites),
        (guard, guard_sites),
    ):
        for local in component.valve_names():
            valves.append(Valve(vid, sites[local], sequences[(component.name, local)]))
            id_of[(component.name, local)] = vid
            vid += 1
        for group in component.lm_groups():
            lm_groups.append([id_of[(component.name, local)] for local in group])

    boundary = [p for p in grid.boundary_cells() if grid.is_free(p)]
    pins = boundary[:: max(1, len(boundary) // (3 * len(valves)))]

    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=delta,
    )
    design.validate()
    return design, flow
