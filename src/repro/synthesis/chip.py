"""From an assay to a routable control-layer design.

Places each component's valves as a compact block on the chip (as the
flow-layer layout would), compiles the schedule into activation
sequences, collects the components' length-matching groups, and spreads
candidate control pins along the boundary — producing a
:class:`~repro.designs.design.Design` ready for :class:`PacorRouter`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.designs.design import Design
from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid
from repro.synthesis.schedule import AssaySchedule, compile_sequences
from repro.valves.valve import Valve


def _block_positions(origin: Point, count: int, spacing: int) -> List[Point]:
    """Lay ``count`` valves out in a near-square block from ``origin``."""
    cols = max(1, math.ceil(math.sqrt(count)))
    return [
        Point(origin.x + (i % cols) * spacing, origin.y + (i // cols) * spacing)
        for i in range(count)
    ]


def assay_to_design(
    schedule: AssaySchedule,
    *,
    name: str = "assay-chip",
    grid_size: Optional[Tuple[int, int]] = None,
    component_origins: Optional[Dict[str, Tuple[int, int]]] = None,
    valve_spacing: int = 3,
    n_pins: Optional[int] = None,
    delta: int = 1,
) -> Design:
    """Build a routable design from an assay schedule.

    Args:
        schedule: components plus scheduled operations.
        name: design name.
        grid_size: chip dimensions; sized automatically when omitted.
        component_origins: optional per-component block origin; defaults
            to a row of blocks with generous margins.
        valve_spacing: pitch between valves inside a component block.
        n_pins: candidate control pins (default: 3 pins per valve,
            capped by the free boundary).
        delta: length-matching threshold.

    Returns:
        A validated :class:`Design` whose LM groups are the components'
        declared length-matching valve groups.
    """
    sequences = compile_sequences(schedule)
    components = schedule.components

    # Default placement: component blocks side by side with margins.
    blocks: Dict[str, List[Point]] = {}
    if component_origins is None:
        x = 4
        y = 4
        for component in components:
            count = len(component.valve_names())
            cols = max(1, math.ceil(math.sqrt(count)))
            rows = math.ceil(count / cols)
            blocks[component.name] = _block_positions(Point(x, y), count, valve_spacing)
            x += cols * valve_spacing + 4
    else:
        for component in components:
            ox, oy = component_origins[component.name]
            blocks[component.name] = _block_positions(
                Point(ox, oy), len(component.valve_names()), valve_spacing
            )

    all_points = [p for pts in blocks.values() for p in pts]
    if grid_size is None:
        width = max(p.x for p in all_points) + 5
        height = max(p.y for p in all_points) + 5
        width = max(width, height)  # keep it squarish for boundary pins
        height = width
    else:
        width, height = grid_size

    grid = RoutingGrid(width, height)

    valves: List[Valve] = []
    lm_groups: List[List[int]] = []
    vid = 0
    id_of: Dict[Tuple[str, str], int] = {}
    for component in components:
        names = component.valve_names()
        points = blocks[component.name]
        for local, point in zip(names, points):
            if not grid.in_bounds(point):
                raise ValueError(
                    f"valve {component.name}.{local} at {point} falls off the "
                    f"{width}x{height} chip; enlarge grid_size"
                )
            valves.append(Valve(vid, point, sequences[(component.name, local)]))
            id_of[(component.name, local)] = vid
            vid += 1
        for group in component.lm_groups():
            lm_groups.append([id_of[(component.name, local)] for local in group])

    boundary = [p for p in grid.boundary_cells() if grid.is_free(p)]
    want = n_pins if n_pins is not None else min(len(boundary), 3 * len(valves))
    stride = max(1, len(boundary) // max(want, 1))
    pins = boundary[::stride][:want]

    design = Design(
        name=name,
        grid=grid,
        valves=valves,
        lm_groups=lm_groups,
        control_pins=pins,
        delta=delta,
    )
    design.validate()
    return design
