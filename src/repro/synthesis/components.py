"""Flow-layer component models and their valve actuation phases.

Each component owns a set of named valves and knows, per supported
operation, the step-by-step actuation pattern of those valves ("0" open,
"1" closed, "X" don't-care).  Components also declare which of their
valves must be *length matched*: valves driven by one shared control pin
whose actuation must reach them simultaneously (e.g. the paired inlet
valves of a mixer, or a containment bank sealing a chamber).

The models follow the classic Quake-style mVLSI building blocks
(monolithic membrane valves, rotary mixers, binary multiplexers).
"""

from __future__ import annotations

import math
from typing import Dict, List

Pattern = Dict[str, str]
"""One time step: local valve name -> activation status."""


class Component:
    """Base class: a named component with local valves and operations."""

    def __init__(self, name: str) -> None:
        self.name = name

    def valve_names(self) -> List[str]:
        """Return the component's local valve names."""
        raise NotImplementedError

    def operations(self) -> List[str]:
        """Return the operation names this component supports."""
        raise NotImplementedError

    def phases(self, operation: str) -> List[Pattern]:
        """Return the actuation pattern per time step of ``operation``."""
        raise NotImplementedError

    def lm_groups(self) -> List[List[str]]:
        """Return groups of local valves requiring length matching."""
        return []

    def _unknown(self, operation: str) -> ValueError:
        return ValueError(
            f"component {self.name!r} does not support operation {operation!r}; "
            f"choose from {self.operations()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class RotaryMixer(Component):
    """A rotary peristaltic mixer (Chou/Unger-style).

    Valves: paired inlets ``in_a``/``in_b`` (actuated together — a
    length-matching pair on one pin), an outlet ``out``, and three
    peristalsis valves ``ring0..ring2`` that cycle the classic 3-phase
    pattern during mixing (each on its own pin; their sequences are
    pairwise incompatible by construction).
    """

    _PERISTALSIS = ["100", "110", "010", "011", "001", "101"]

    def valve_names(self) -> List[str]:
        return ["in_a", "in_b", "out", "ring0", "ring1", "ring2"]

    def operations(self) -> List[str]:
        return ["load", "mix", "flush"]

    def lm_groups(self) -> List[List[str]]:
        return [["in_a", "in_b"]]

    def phases(self, operation: str) -> List[Pattern]:
        if operation == "load":
            # Inlets open, ring open for filling, outlet sealed.
            return [
                {
                    "in_a": "0",
                    "in_b": "0",
                    "out": "1",
                    "ring0": "0",
                    "ring1": "0",
                    "ring2": "0",
                }
            ] * 2
        if operation == "mix":
            # One full peristaltic rotation; chamber sealed.
            steps = []
            for pattern in self._PERISTALSIS:
                step = {"in_a": "1", "in_b": "1", "out": "1"}
                for i, bit in enumerate(pattern):
                    step[f"ring{i}"] = bit
                steps.append(step)
            return steps
        if operation == "flush":
            return [
                {
                    "in_a": "1",
                    "in_b": "1",
                    "out": "0",
                    "ring0": "0",
                    "ring1": "0",
                    "ring2": "0",
                }
            ] * 2
        raise self._unknown(operation)


class Multiplexer(Component):
    """A binary (combinatorial) multiplexer over ``n_inputs`` channels.

    Each address bit has two complementary control lines (``bit{i}_0``,
    ``bit{i}_1``); selecting input ``k`` opens, per bit, the line whose
    value matches ``k``'s bit and closes the complement — the classic
    2·log2(n) control-line scheme of microfluidic large-scale
    integration.  Complementary lines are never compatible, so each line
    needs its own pin; no length matching is required.
    """

    def __init__(self, name: str, n_inputs: int) -> None:
        super().__init__(name)
        if n_inputs < 2:
            raise ValueError("a multiplexer needs at least two inputs")
        self.n_inputs = n_inputs
        self.n_bits = max(1, math.ceil(math.log2(n_inputs)))

    def valve_names(self) -> List[str]:
        return [f"bit{i}_{v}" for i in range(self.n_bits) for v in (0, 1)]

    def operations(self) -> List[str]:
        return [f"select:{k}" for k in range(self.n_inputs)]

    def phases(self, operation: str) -> List[Pattern]:
        if not operation.startswith("select:"):
            raise self._unknown(operation)
        k = int(operation.split(":", 1)[1])
        if not 0 <= k < self.n_inputs:
            raise self._unknown(operation)
        step: Pattern = {}
        for i in range(self.n_bits):
            bit = (k >> i) & 1
            # The line matching the address bit is open (0), its
            # complement closed (1).
            step[f"bit{i}_{bit}"] = "0"
            step[f"bit{i}_{1 - bit}"] = "1"
        return [step]


class InputSelector(Component):
    """A bank of independent inlet valves (one reagent each)."""

    def __init__(self, name: str, n_inputs: int) -> None:
        super().__init__(name)
        if n_inputs < 1:
            raise ValueError("an input selector needs at least one inlet")
        self.n_inputs = n_inputs

    def valve_names(self) -> List[str]:
        return [f"in{i}" for i in range(self.n_inputs)]

    def operations(self) -> List[str]:
        return [f"open:{i}" for i in range(self.n_inputs)] + ["close_all"]

    def phases(self, operation: str) -> List[Pattern]:
        if operation == "close_all":
            return [{name: "1" for name in self.valve_names()}]
        if operation.startswith("open:"):
            i = int(operation.split(":", 1)[1])
            if not 0 <= i < self.n_inputs:
                raise self._unknown(operation)
            step = {name: "1" for name in self.valve_names()}
            step[f"in{i}"] = "0"
            return [step]
        raise self._unknown(operation)


class GuardBank(Component):
    """``n`` containment valves sealing a chamber simultaneously.

    All members always actuate together from one control pin; a skewed
    seal leaks, so the whole bank is one length-matching cluster — the
    archetypal PACOR use case.
    """

    def __init__(self, name: str, n_valves: int) -> None:
        super().__init__(name)
        if n_valves < 2:
            raise ValueError("a guard bank needs at least two valves")
        self.n_valves = n_valves

    def valve_names(self) -> List[str]:
        return [f"g{i}" for i in range(self.n_valves)]

    def operations(self) -> List[str]:
        return ["seal", "release"]

    def lm_groups(self) -> List[List[str]]:
        return [self.valve_names()]

    def phases(self, operation: str) -> List[Pattern]:
        if operation == "seal":
            return [{name: "1" for name in self.valve_names()}]
        if operation == "release":
            return [{name: "0" for name in self.valve_names()}]
        raise self._unknown(operation)
