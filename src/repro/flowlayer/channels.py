"""Flow channels and their projection onto the control layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.geometry.point import Point
from repro.grid.grid import RoutingGrid


@dataclass
class FlowChannel:
    """One flow channel: a named, connected cell path on the flow layer.

    Attributes:
        name: channel name (e.g. ``"mixer.ring"``).
        cells: the channel's cells; consecutive cells must be 4-adjacent
            unless ``closed`` loops validate first-to-last adjacency too.
        closed: True for ring channels (rotary mixers).
    """

    name: str
    cells: List[Point]
    closed: bool = False

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError(f"flow channel {self.name!r} has no cells")
        self.cells = [Point(c[0], c[1]) for c in self.cells]
        for a, b in zip(self.cells, self.cells[1:]):
            if a.manhattan(b) != 1:
                raise ValueError(
                    f"flow channel {self.name!r}: cells {a} and {b} not adjacent"
                )
        if self.closed and len(self.cells) > 1:
            if self.cells[0].manhattan(self.cells[-1]) != 1:
                raise ValueError(
                    f"closed flow channel {self.name!r} does not loop"
                )

    def cell_set(self) -> Set[Point]:
        """Return the channel's cells as a set."""
        return set(self.cells)


@dataclass
class FlowLayer:
    """The chip's flow layer: channels plus designated valve sites.

    Attributes:
        channels: all flow channels.
        valve_sites: cells where control channels are *allowed* to cross
            (the designed valves); each must lie on some channel.
    """

    channels: List[FlowChannel] = field(default_factory=list)
    valve_sites: Set[Point] = field(default_factory=set)

    def add(self, channel: FlowChannel) -> FlowChannel:
        """Add a channel (duplicate names rejected)."""
        if any(c.name == channel.name for c in self.channels):
            raise ValueError(f"duplicate flow channel name {channel.name!r}")
        self.channels.append(channel)
        return channel

    def add_valve_site(self, cell: Point) -> None:
        """Register a designed valve crossing at ``cell``."""
        cell = Point(cell[0], cell[1])
        if not any(cell in c.cell_set() for c in self.channels):
            raise ValueError(f"valve site {cell} is not on any flow channel")
        self.valve_sites.add(cell)

    def all_cells(self) -> Set[Point]:
        """Return every flow-channel cell."""
        out: Set[Point] = set()
        for channel in self.channels:
            out |= channel.cell_set()
        return out

    def validate(self, grid: RoutingGrid) -> None:
        """Check the flow geometry fits the chip."""
        for channel in self.channels:
            for cell in channel.cells:
                if not grid.in_bounds(cell):
                    raise ValueError(
                        f"flow channel {channel.name!r} leaves the chip at {cell}"
                    )
        for site in self.valve_sites:
            if not grid.in_bounds(site):
                raise ValueError(f"valve site {site} is off-chip")


def control_obstacles(flow: FlowLayer) -> Set[Point]:
    """Project the flow layer onto the control layer as obstacle cells.

    Every flow-channel cell blocks the control layer *except* the
    designated valve sites, where a control channel must terminate to
    actuate the membrane (a crossing anywhere else would form a
    parasitic valve).
    """
    return flow.all_cells() - flow.valve_sites
