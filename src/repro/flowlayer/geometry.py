"""Flow-geometry builders for the standard mVLSI components."""

from __future__ import annotations

from typing import List

from repro.flowlayer.channels import FlowChannel
from repro.geometry.point import Point


def straight_channel(
    name: str, start: Point, end: Point
) -> FlowChannel:
    """An L-shaped (or straight) channel from ``start`` to ``end``.

    Routes horizontally first, then vertically — the standard fabrication
    idiom for short interconnect channels.
    """
    start = Point(start[0], start[1])
    end = Point(end[0], end[1])
    cells: List[Point] = []
    step = 1 if end.x >= start.x else -1
    for x in range(start.x, end.x + step, step):
        cells.append(Point(x, start.y))
    step = 1 if end.y >= start.y else -1
    for y in range(start.y + step, end.y + step, step) if end.y != start.y else []:
        cells.append(Point(end.x, y))
    return FlowChannel(name, cells)


def rotary_ring(name: str, origin: Point, size: int) -> FlowChannel:
    """A closed rectangular mixing ring with corner at ``origin``.

    ``size`` is the outer edge length in cells (≥ 3).  The ring runs
    clockwise from the origin.
    """
    if size < 3:
        raise ValueError("a rotary ring needs size >= 3")
    ox, oy = origin[0], origin[1]
    cells: List[Point] = []
    cells.extend(Point(ox + i, oy) for i in range(size))
    cells.extend(Point(ox + size - 1, oy + i) for i in range(1, size))
    cells.extend(Point(ox + size - 1 - i, oy + size - 1) for i in range(1, size))
    cells.extend(Point(ox, oy + size - 1 - i) for i in range(1, size - 1))
    return FlowChannel(name, cells, closed=True)


def multiplexer_tree(
    name: str, root: Point, n_leaves: int, pitch: int = 2
) -> List[FlowChannel]:
    """A binary distribution tree feeding ``n_leaves`` parallel channels.

    Returns one trunk channel plus one branch channel per leaf; leaves
    fan out upward from the root with ``pitch`` cells of spacing.  The
    geometry is deliberately simple (comb-shaped), which is how planar
    flow multiplexers are usually drawn.
    """
    if n_leaves < 2:
        raise ValueError("a multiplexer tree needs at least two leaves")
    root = Point(root[0], root[1])
    width = (n_leaves - 1) * pitch
    trunk = FlowChannel(
        f"{name}.trunk",
        [Point(root.x + i, root.y) for i in range(width + 1)],
    )
    branches = []
    for leaf in range(n_leaves):
        x = root.x + leaf * pitch
        branches.append(
            FlowChannel(
                f"{name}.leaf{leaf}",
                [Point(x, root.y - j) for j in range(1, 4)],
            )
        )
    return [trunk] + branches
