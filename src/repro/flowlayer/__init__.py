"""Flow-layer model: where control-layer obstacles come from.

In a two-layer PDMS biochip (Fig. 1 of the paper) the control layer is
routed *over* the flow layer.  Wherever a control channel crosses a flow
channel, the membrane between them forms a valve — so any crossing that
is not a designed valve site is a parasitic valve that would pinch the
flow.  The flow layer therefore projects **obstacles** onto the control
layer: every flow-channel cell except the designated valve sites.

* :class:`FlowChannel` / :class:`FlowLayer` — flow geometry as cell
  paths with named ports and valve sites;
* :func:`control_obstacles` — the projection rule above;
* :mod:`repro.flowlayer.geometry` — component flow geometry builders
  (rotary mixer ring, multiplexer tree, straight channels) used by the
  synthesis front-end.
"""

from repro.flowlayer.channels import FlowChannel, FlowLayer, control_obstacles
from repro.flowlayer.geometry import (
    multiplexer_tree,
    rotary_ring,
    straight_channel,
)

__all__ = [
    "FlowChannel",
    "FlowLayer",
    "control_obstacles",
    "rotary_ring",
    "multiplexer_tree",
    "straight_channel",
]
