"""Observability for the PACOR flow: tracing, metrics, profiling.

The flow's runtime is dominated by a handful of kernels — negotiation
A* (Alg. 1), min-cost-flow escape rounds (§5), bounded-length detour
search (§6) — and this subsystem makes that spend visible:

* :mod:`repro.observability.tracing` — nested wall-clock spans (per
  stage, per net, per negotiation/escape round) exported as JSONL and
  as Chrome ``chrome://tracing`` trace events.
* :mod:`repro.observability.metrics` — named effort counters and gauges
  (A* expansions/heap pushes, negotiation rounds, rip-up rounds, MCF
  augmenting paths, detour rounds, checkpoint bytes; catalogue in
  ``docs/observability.md``).
* :mod:`repro.observability.context` — the process-wide active
  tracer/metrics pair kernels reach without explicit plumbing; no-op
  singletons by default, so disabled instrumentation costs ~nothing.
* :mod:`repro.observability.profile` — the analysis behind
  ``pacor profile``: per-stage time table and top-k nets by expansions.
* :mod:`repro.observability.validate` — JSONL/JSON schema validation
  for exported files (the CI gate).

Incidents and checkpoints carry the active span id, so degraded and
resumed runs stitch into one trace (``Tracer.link_resume``).
"""

from repro.observability.context import (
    clear,
    counter,
    gauge,
    install,
    metrics,
    span,
    tracer,
    use,
)
from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Metrics,
    NullMetrics,
)
from repro.observability.profile import (
    NetRow,
    StageRow,
    TraceProfile,
    format_profile,
    profile_spans,
    profile_trace_file,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_trace_jsonl,
)
from repro.observability.validate import (
    validate_metrics_doc,
    validate_metrics_file,
    validate_spans,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_trace_jsonl",
    "install",
    "clear",
    "use",
    "tracer",
    "metrics",
    "counter",
    "gauge",
    "span",
    "TraceProfile",
    "StageRow",
    "NetRow",
    "profile_spans",
    "profile_trace_file",
    "format_profile",
    "validate_spans",
    "validate_trace_file",
    "validate_metrics_doc",
    "validate_metrics_file",
]
